"""Unit tests for the execution-backend layer.

Covers the shared-memory SPSC ring transport, backend resolution and the
parallel-configuration guards, the process/thread backends' end-to-end
behaviour (conservation, telemetry merge, child failure propagation, clean
teardown under interruption), and the mailbox watermark edge-settlement
contract the backends rely on.  The simulated-vs-parallel equivalence
itself lives in ``test_backend_differential.py``.
"""

import multiprocessing
import os
import pickle
import time
from multiprocessing import shared_memory

import pytest

import repro.runtime.backend as backend_module
from repro.core.model.packet import Packet
from repro.core.queues import CircularFFSQueue
from repro.runtime import (
    Mailbox,
    ProcessBackend,
    ShardedRuntime,
    SimulatedBackend,
    ThreadBackend,
    free_threaded,
)
from repro.runtime.backend import resolve_backend
from repro.runtime.shm import RING_EMPTY, ShmFrameCorrupt, ShmRing
from repro.netsim.simulator import Simulator

RATE_BPS = 1e9
QUANTUM_NS = 10_000


def _packets(flow_ids, size_bytes=1500):
    return [Packet(flow_id=flow_id, size_bytes=size_bytes) for flow_id in flow_ids]


def _reap_children(deadline_s=5.0):
    """Wait for recently-terminated children to be reaped; return survivors."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()  # joins finished children
        if not children:
            return []
        time.sleep(0.05)
    return multiprocessing.active_children()


class TestShmRing:
    def test_round_trip_preserves_order_and_values(self):
        ring = ShmRing(capacity=4096)
        try:
            records = [(i, [Packet(flow_id=i, size_bytes=64)]) for i in range(5)]
            for record in records:
                assert ring.push(record)
            popped = [ring.pop() for _ in range(5)]
            assert [when for when, _pkts in popped] == [0, 1, 2, 3, 4]
            assert [pkts[0].flow_id for _when, pkts in popped] == [0, 1, 2, 3, 4]
        finally:
            ring.close()
            ring.unlink()

    def test_none_payload_is_distinct_from_empty(self):
        ring = ShmRing(capacity=256)
        try:
            assert ring.pop() is RING_EMPTY
            assert ring.push(None)
            assert ring.pop() is None  # a real record, not emptiness
            assert ring.pop() is RING_EMPTY
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_rejects_then_recovers(self):
        ring = ShmRing(capacity=64)
        try:
            payload = b"x" * 24  # 32 bytes framed; two fit, the third not
            assert ring.push_bytes(payload)
            assert ring.push_bytes(payload)
            assert not ring.push_bytes(payload)
            assert ring.pop_bytes() == payload
            assert ring.push_bytes(payload)  # space reclaimed by the pop
        finally:
            ring.close()
            ring.unlink()

    def test_wraparound_many_cycles(self):
        # A tiny ring forces every record to straddle the edge repeatedly;
        # cursors are monotone so offsets wrap only in the byte copies.
        ring = ShmRing(capacity=48)
        try:
            for i in range(500):
                payload = bytes([i % 251]) * (1 + i % 17)
                assert ring.push_bytes(payload)
                assert ring.pop_bytes() == payload
            assert len(ring) == 0
            assert ring.free_bytes == 48
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_record_raises(self):
        ring = ShmRing(capacity=32)
        try:
            with pytest.raises(ValueError, match="exceeds ring capacity"):
                ring.push_bytes(b"y" * 64)
        finally:
            ring.close()
            ring.unlink()

    def test_attach_by_name_shares_the_segment(self):
        owner = ShmRing(capacity=1024)
        attached = None
        try:
            attached = ShmRing(name=owner.name)
            assert attached.capacity == 1024
            assert owner.push({"hello": 7})
            assert attached.pop() == {"hello": 7}
            assert attached.pop() is RING_EMPTY
        finally:
            if attached is not None:
                attached.close()
            owner.close()
            owner.unlink()

    def test_unlink_destroys_the_segment(self):
        ring = ShmRing(capacity=128)
        name = ring.name
        ring.close()
        ring.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_capacity_must_exceed_frame_header(self):
        with pytest.raises(ValueError):
            ShmRing(capacity=4)

    def test_corrupted_payload_raises_and_sticks(self):
        ring = ShmRing(capacity=256)
        try:
            assert ring.push({"flow": 3})
            ring.corrupt_last_record()
            with pytest.raises(ShmFrameCorrupt, match="frame CRC mismatch"):
                ring.pop()
            # The head cursor did not advance past the poisoned frame: the
            # fault is sticky, never silently skipped.
            with pytest.raises(ShmFrameCorrupt, match="frame CRC mismatch"):
                ring.pop()
        finally:
            ring.close()
            ring.unlink()

    def test_push_corrupted_writes_a_bad_crc(self):
        ring = ShmRing(capacity=256)
        try:
            assert ring.push_corrupted({"flow": 9})
            with pytest.raises(ShmFrameCorrupt, match="frame CRC mismatch"):
                ring.pop()
        finally:
            ring.close()
            ring.unlink()

    def test_torn_length_header_raises(self):
        ring = ShmRing(capacity=256)
        try:
            assert ring.push_bytes(b"abc")
            ring._data[0] = 0xFF  # scribble over the low length byte
            with pytest.raises(ShmFrameCorrupt, match="torn frame header"):
                ring.pop_bytes()
        finally:
            ring.close()
            ring.unlink()


class TestBackendResolution:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ShardedRuntime(1, backend="gpu")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_backend(42, None)

    def test_instance_passes_through(self):
        backend = ThreadBackend()
        runtime = ShardedRuntime(1, backend=backend)
        assert runtime.backend is backend

    def test_simulator_composes_only_with_simulated(self):
        simulator = Simulator()
        runtime = ShardedRuntime(1, simulator=simulator, backend="simulated")
        assert runtime.simulator is simulator
        with pytest.raises(ValueError, match="simulated backend"):
            ShardedRuntime(1, simulator=Simulator(), backend="process")

    def test_default_backend_is_simulated(self):
        runtime = ShardedRuntime(1)
        assert isinstance(runtime.backend, SimulatedBackend)
        assert runtime.simulator is runtime.backend.simulator


class TestParallelConfigGuards:
    @pytest.mark.parametrize(
        "kwargs, conflict",
        [
            ({"steal_enabled": True}, "steal_enabled"),
            ({"rebalance_interval_ns": 100_000}, "rebalancing"),
            ({"ingress_cores": 1}, "ingress_cores"),
            ({"on_transmit": lambda packet, now: None}, "on_transmit"),
        ],
    )
    def test_non_decomposable_features_rejected(self, kwargs, conflict):
        with pytest.raises(ValueError, match=conflict):
            ShardedRuntime(2, backend="thread", **kwargs)

    def test_global_gc_auto_disabled(self):
        runtime = ShardedRuntime(2, backend="thread", gc_interval_packets=4096)
        assert runtime.gc_interval_packets is None
        # ...and stays configurable on the simulated backend.
        assert ShardedRuntime(2, gc_interval_packets=4096).gc_interval_packets == 4096

    def test_submit_at_rejects_negative_time(self):
        runtime = ShardedRuntime(1, backend="thread")
        with pytest.raises(ValueError, match="non-negative"):
            runtime.submit_at(-1, _packets([1]))

    def test_until_ns_rejected_on_parallel_run(self):
        runtime = ShardedRuntime(1, backend="thread", default_rate_bps=RATE_BPS)
        runtime.submit_batch(_packets([1]))
        with pytest.raises(ValueError, match="to completion"):
            runtime.run(until_ns=1_000_000)

    def test_one_schedule_per_runtime(self):
        runtime = ShardedRuntime(1, backend="thread", default_rate_bps=RATE_BPS)
        runtime.submit_batch(_packets([1, 2]))
        assert runtime.pending == 2
        first = runtime.run()
        assert first > 0
        assert runtime.run() == 0  # idempotent
        with pytest.raises(RuntimeError, match="fresh runtime"):
            runtime.submit_at(0, _packets([3]))


class _RingSpy(ShmRing):
    """ShmRing that records every created segment name on the class."""

    created: list = []

    def __init__(self, capacity=1 << 20, name=None):
        super().__init__(capacity=capacity, name=name)
        if name is None:
            type(self).created.append(self.name)


class TestProcessBackend:
    def _run(self, num_shards, flow_ids, **kwargs):
        runtime = ShardedRuntime(
            num_shards,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            backend="process",
            **kwargs,
        )
        runtime.submit_batch(_packets(flow_ids))
        runtime.run()
        return runtime

    def test_conservation_and_fifo(self):
        flow_ids = [flow % 13 for flow in range(260)]
        runtime = self._run(4, flow_ids)
        assert runtime.transmitted == 260
        assert runtime.pending == 0
        sequences = {}
        for _now, packet in runtime.transmit_log:
            sequences.setdefault(packet.flow_id, []).append(packet.packet_id)
        for flow_id, sequence in sequences.items():
            assert sequence == sorted(sequence), f"flow {flow_id} reordered"
        assert _reap_children() == []

    def test_telemetry_merged_across_processes(self):
        runtime = self._run(2, [flow % 8 for flow in range(96)])
        telemetry = runtime.telemetry()
        assert telemetry.transmitted == 96
        assert len(telemetry.shards) == 2
        assert sum(shard.ingested for shard in telemetry.shards) == 96
        assert telemetry.total_cycles > 0
        assert telemetry.queue_stats.enqueues == 96
        # Per-shard results carried real counter objects across the boundary.
        for result in runtime.backend.results:
            assert result.cycles > 0
            assert result.stats.transmitted == result.queue_stats.dequeues

    def test_child_failure_propagates_with_traceback(self):
        parent_pid = os.getpid()

        def factory(spec):
            if os.getpid() != parent_pid:
                raise ZeroDivisionError("injected child failure")
            return CircularFFSQueue(spec)

        runtime = ShardedRuntime(
            1,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            queue_factory=factory,
            backend="process",
        )
        runtime.submit_batch(_packets([1, 2, 3]))
        with pytest.raises(RuntimeError, match="injected child failure"):
            runtime.run()
        assert _reap_children() == []

    def test_interrupted_run_tears_down_processes_and_segments(self, monkeypatch):
        class InterruptingBackend(ProcessBackend):
            def _feed_hook(self):
                raise KeyboardInterrupt

        _RingSpy.created = []
        monkeypatch.setattr(backend_module, "ShmRing", _RingSpy)
        runtime = ShardedRuntime(
            2,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            backend=InterruptingBackend(),
        )
        runtime.submit_batch(_packets([flow % 8 for flow in range(64)]))
        with pytest.raises(KeyboardInterrupt):
            runtime.run()
        assert len(_RingSpy.created) == 2
        assert _reap_children() == [], "worker processes leaked"
        for name in _RingSpy.created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_drops_settle_after_run(self):
        runtime = ShardedRuntime(
            1,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            mailbox_capacity=4,
            backend="process",
        )
        # One burst far above mailbox capacity: the child's mailbox tail-drops.
        assert runtime.submit_batch(_packets([1] * 32)) == 32  # optimistic
        runtime.run()
        assert runtime.ingress_drops == 32 - 4
        assert runtime.transmitted == 4


class TestThreadBackend:
    def test_conservation_and_gil_flag(self):
        backend = ThreadBackend()
        assert backend.gil_enabled == (not free_threaded())
        runtime = ShardedRuntime(
            3,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            backend=backend,
        )
        runtime.submit_batch(_packets([flow % 9 for flow in range(180)]))
        runtime.run()
        assert runtime.transmitted == 180
        telemetry = runtime.telemetry()
        assert sum(shard.transmitted for shard in telemetry.shards) == 180

    def test_thread_failure_propagates(self):
        def factory(spec):
            raise ZeroDivisionError("injected thread failure")

        # Workers are built lazily per thread from the spec; the parent's own
        # eager construction must be bypassed by building the runtime first.
        runtime = ShardedRuntime(
            1, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS, backend="thread"
        )
        runtime._worker_config["queue_factory"] = factory
        runtime.submit_batch(_packets([1]))
        with pytest.raises(ZeroDivisionError):
            runtime.run()


class TestMailboxEdgeSettlement:
    """Watermark callbacks fire only after the operation fully settled."""

    def test_on_high_sees_settled_push(self):
        seen = []
        mailbox = Mailbox(capacity=8, high_watermark=4)
        mailbox.on_high = lambda: seen.append(
            (mailbox.paused, mailbox.stats.snapshot(), len(mailbox))
        )
        mailbox.push_batch(list(range(6)))
        assert len(seen) == 1
        paused, stats, occupancy = seen[0]
        assert paused is True
        assert stats.stalls == 1
        assert stats.pushed == 6  # the whole batch, not a mid-batch count
        assert stats.peak_occupancy == 6
        assert occupancy == 6

    def test_on_low_sees_settled_drain(self):
        seen = []
        mailbox = Mailbox(capacity=8, high_watermark=4, low_watermark=1)
        mailbox.on_low = lambda: seen.append(
            (mailbox.paused, mailbox.stats.snapshot(), len(mailbox))
        )
        mailbox.push_batch(list(range(6)))
        mailbox.drain(limit=5)
        assert len(seen) == 1
        paused, stats, occupancy = seen[0]
        assert paused is False
        assert stats.drained == 5
        assert stats.drain_calls == 1
        assert occupancy == 1

    def test_reentrant_on_low_refill_repauses_consistently(self):
        # The resume edge re-enters the producer side (exactly what a resumed
        # ingress core does); the nested push must see paused already False
        # and may immediately re-pause, with each stall counted once.
        mailbox = Mailbox(capacity=8, high_watermark=4, low_watermark=1)

        def refill():
            assert mailbox.paused is False
            mailbox.push_batch(list(range(5)))

        mailbox.on_low = refill
        mailbox.push_batch(list(range(6)))
        assert mailbox.stats.stalls == 1
        mailbox.drain(limit=5)
        assert mailbox.paused is True  # refill crossed high again
        assert mailbox.stats.stalls == 2
        assert len(mailbox) == 6

    def test_configure_watermarks_fires_settled_edge(self):
        seen = []
        mailbox = Mailbox(capacity=8)
        mailbox.push_batch(list(range(5)))
        mailbox.configure_watermarks(
            4, on_high=lambda: seen.append((mailbox.paused, mailbox.stats.stalls))
        )
        assert seen == [(True, 1)]


class TestStatsPickleRoundTrip:
    def test_shard_result_round_trips(self):
        runtime = ShardedRuntime(
            1, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS, backend="thread"
        )
        runtime.submit_batch(_packets([1, 2, 3, 1, 2]))
        runtime.run()
        (result,) = runtime.backend.results
        clone = pickle.loads(pickle.dumps(result))
        assert clone.shard_id == result.shard_id
        assert clone.stats.as_dict() == result.stats.as_dict()
        assert clone.queue_stats.as_dict() == result.queue_stats.as_dict()
        assert clone.mailbox.as_dict() == result.mailbox.as_dict()
        assert clone.cycles == result.cycles
        assert clone.cost_breakdown == result.cost_breakdown
        assert [p.packet_id for _t, p in clone.transmits] == [
            p.packet_id for _t, p in result.transmits
        ]
