"""Declarative scenarios: the experiment matrix as data.

A :class:`ScenarioSpec` describes one complete experiment — substrate,
policy tree, traffic, ingress, runtime knobs, assertion blocks — as a frozen
dataclass tree with TOML load/dump.  :func:`compile_scenario` eagerly
validates it (typed errors naming the offending field) and binds it onto the
existing building blocks; :func:`run_scenario` executes it into a
:class:`ScenarioResult` whose declarative assertions have been evaluated.

Quick start::

    from repro.scenario import ScenarioSpec, RuntimeSpec, TrafficSpec, run_scenario

    spec = ScenarioSpec(
        name="smoke",
        seed=7,
        runtime=RuntimeSpec(shards=4, stealing=True),
        traffic=TrafficSpec(pattern="zipf", num_flows=64, total_packets=4096),
    )
    result = run_scenario(spec)   # raises ScenarioAssertionError on violation
    print(result.summary())

Spec schema (TOML sections; every key optional with the default shown; the
same tree as the dataclasses; ``Optional`` fields spell ``None`` as the
string ``"none"``):

``name`` (str, "scenario") · ``seed`` (int, 0) — one seed pins every random
stream (traffic sampler, workload sub-streams, shard hash, ingress lane
hash) via :func:`derive_seed`.

``[topology]``
    ``kind`` — ``"runtime"`` (sharded runtime; the fuzzable kind),
    ``"fabric"`` (Figure 19 leaf-spine), ``"bess"`` (Figure 13 pipeline +
    batching sweep).  Fabric dims: ``num_leaves``/``num_spines``/
    ``hosts_per_leaf`` (3/3/3), ``edge_rate_bps`` (10e9), ``core_rate_bps``
    (40e9), ``link_propagation_ns`` (200).  Single-core hardware:
    ``line_rate_bps`` (10e9), ``cycles_per_second`` (3e9).

``[policy]``
    ``queue`` ("circular_ffs" | "hierarchical_ffs" | "gradient" |
    "approx_gradient"), ``num_buckets`` (20_000; the bess kind reads it as
    the sweep's rank range), ``horizon_ns`` (2e9), ``default_rate_bps``
    ("none"), ``flow_rates`` (array of ``[flow_id, rate_bps]`` pairs; flow
    ids must exist in the traffic universe), ``schemes`` (fabric kind),
    ``sweep_queues`` (bess kind).

``[traffic]``
    ``pattern`` ("round_robin" | "zipf"), ``num_flows`` (16),
    ``total_packets`` (2048), ``offered_pps`` (1e6), ``burst_size`` (32),
    ``packet_bytes`` (1500), ``zipf_skew`` (1.1); fabric kind: ``workload``
    ("websearch" | "datamining"), ``loads`` ((0.2, 0.5, 0.8), each in
    (0, 1]); bess kind: ``packet_sizes``, ``batch_sizes``,
    ``sweep_packets``.

``[ingress]``
    ``cores`` (0 = historical synchronous ingress), ``admission`` ("none" |
    "tail_drop" | "fair_drop" | "codel"; needs ``cores >= 1``),
    ``rx_ring_capacity`` (512), ``rx_burst`` (64, must not exceed the
    ring), ``backpressure`` (true), ``mailbox_capacity`` ("none"),
    ``shard_backlog_limit`` ("none").

``[runtime]``
    ``shards`` (1), ``quantum_ns`` (50_000), ``batch_per_quantum`` (64),
    ``sharding`` ("hash" | "round_robin"), ``stealing`` (false),
    ``steal_batch`` (64), ``steal_min_backlog`` (8),
    ``rebalance_interval_ns`` ("none"), ``gc_interval_packets`` (4096),
    ``gc_sweep_limit`` ("none"), ``backend`` ("simulated" | "process" |
    "thread"; parallel backends reject stealing / rebalancing / ingress
    cores at validation time).

``[faults]``
    Deterministic fault injection (runtime kind, simulated backend only).
    ``kinds`` (array of "shard_crash" | "shard_stall" | "handoff_drop" |
    "ingress_wedge"; empty = disarmed; "ingress_wedge" needs
    ``ingress.cores >= 1``), ``events`` (1), ``max_tick`` (32),
    ``max_handoff_drops`` (4), ``lease_deadline_ns`` ("none"),
    ``supervise_interval_ns`` ("none" = twice the runtime quantum).  The
    compiler draws the fault schedule from ``derive_seed(seed, "faults")``,
    so the scenario seed pins faults exactly as it pins the workload;
    injected losses are counted drops, keeping the conservation assertion
    meaningful under failure.

``[observability]``
    The deterministic observability plane (runtime kind only; everything
    defaults off and a disarmed spec compiles a byte-identical runtime).
    ``latency_histograms`` (false; arms per-seam
    :class:`~repro.runtime.LogHistogram` recording — allowed on every
    backend, per-shard histograms merge across process children),
    ``tracer`` (false; arms a bounded
    :class:`~repro.runtime.FlightRecorder` — simulated backend only),
    ``trace_capacity`` (65_536), ``timeline`` (false; arms a
    :class:`~repro.runtime.MetricsTimeline` gauge sampler — simulated
    backend only), ``timeline_interval_ns`` ("none" = the runtime quantum).

``[assertions]``
    The invariant net: ``conservation``, ``per_flow_fifo``,
    ``no_stranded_state`` (all true).  Optional bounds (``"none"`` = off):
    ``min_transmitted``, ``max_drop_fraction``, ``min_mops``,
    ``max_stall_fraction``, ``p99_latency_ns`` (ceiling on the end-to-end
    submit→transmit p99; needs ``observability.latency_histograms``);
    fabric: ``min_completion_rate``, ``fct_small_flow_advantage``,
    ``fct_approx_tolerance``; bess: ``batch_amortises_at``.

Validation rejections are typed (:class:`ScenarioSpecError` subclasses with
a ``field`` attribute): :class:`UnknownNameError` (unknown names, dangling
cross-references), :class:`OversubscribedError` (rx_burst > ring, loads
outside (0, 1], overload with backpressure off and no admission),
:class:`BackendIncompatibleError` (cross-shard knobs under a parallel
backend), :class:`MalformedSpecError` (bad TOML, wrong types, bad ranges).

:mod:`repro.scenario.fuzz` draws random valid specs for the property suite;
:mod:`repro.scenario.figures` holds the canonical Figure 13/19 specs the
benchmarks compile.
"""

from .compiler import (
    CompiledScenario,
    ScenarioAssertionError,
    ScenarioResult,
    compile_scenario,
    run_scenario,
)
from .figures import figure13_spec, figure19_spec
from .serialize import dump_toml, dump_toml_file, load_toml, load_toml_file
from .spec import (
    ADMISSION_NAMES,
    BACKEND_NAMES,
    FAULT_KIND_NAMES,
    KINDS,
    PATTERN_NAMES,
    QUEUE_NAMES,
    SCHEME_NAMES,
    SHARDING_NAMES,
    WORKLOAD_NAMES,
    AssertionSpec,
    BackendIncompatibleError,
    FaultsSpec,
    IngressSpec,
    MalformedSpecError,
    ObservabilitySpec,
    OversubscribedError,
    PolicyTreeSpec,
    RuntimeSpec,
    ScenarioSpec,
    ScenarioSpecError,
    TopologySpec,
    TrafficSpec,
    UnknownNameError,
    derive_seed,
    validate,
)

__all__ = [
    "ADMISSION_NAMES",
    "AssertionSpec",
    "BACKEND_NAMES",
    "BackendIncompatibleError",
    "CompiledScenario",
    "FAULT_KIND_NAMES",
    "FaultsSpec",
    "IngressSpec",
    "KINDS",
    "MalformedSpecError",
    "ObservabilitySpec",
    "OversubscribedError",
    "PATTERN_NAMES",
    "PolicyTreeSpec",
    "QUEUE_NAMES",
    "RuntimeSpec",
    "SCHEME_NAMES",
    "ScenarioAssertionError",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSpecError",
    "SHARDING_NAMES",
    "TopologySpec",
    "TrafficSpec",
    "UnknownNameError",
    "WORKLOAD_NAMES",
    "compile_scenario",
    "derive_seed",
    "dump_toml",
    "dump_toml_file",
    "figure13_spec",
    "figure19_spec",
    "load_toml",
    "load_toml_file",
    "run_scenario",
    "validate",
]
