"""CPU cost modelling for the simulated kernel and userspace substrates."""

from .cost_model import (
    CostModel,
    CpuMeter,
    CycleAccount,
    DEFAULT_COSTS,
    OperationCost,
)

__all__ = [
    "CostModel",
    "CpuMeter",
    "CycleAccount",
    "DEFAULT_COSTS",
    "OperationCost",
]
