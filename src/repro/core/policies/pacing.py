"""Timestamp-based shaping / pacing — the policy behind Use Case 1.

Every rate limit is expressed as a per-packet transmission timestamp
(Carousel's key idea, which Eiffel adopts for its decoupled shaper): a flow
with rate ``R`` and a packet of ``S`` bytes may transmit its next packet
``S*8/R`` seconds after the previous one.  All timestamps index a single
bucketed integer queue; dequeue at time ``now`` releases exactly the packets
whose timestamps have passed, making the policy non-work-conserving.

:class:`TimestampPacingScheduler` supports both a per-flow maximum rate (the
``SO_MAX_PACING_RATE`` socket option of the kernel experiments) and a
fallback pacing rate used for flows without an explicit limit (mirroring the
FQ/pacing qdisc's behaviour of pacing every TCP flow).
"""

from __future__ import annotations

from typing import Dict, Optional

from .base import PacketScheduler
from ..model.packet import Packet
from ..model.pifo import QueueFactory
from ..model.transactions import RateLimit, ShapingTransaction
from ..queues import BucketSpec, CircularFFSQueue, IntegerPriorityQueue


def default_pacing_queue(spec: BucketSpec) -> IntegerPriorityQueue:
    """Default timestamp queue for the pacing policy: cFFS."""
    return CircularFFSQueue(spec)


class TimestampPacingScheduler(PacketScheduler):
    """Per-flow rate limiting via transmission timestamps in one shared queue.

    Args:
        horizon_ns: how far ahead timestamps may be scheduled (the paper's
            kernel deployment uses 2 seconds).
        num_buckets: bucket count of the timestamp queue (paper: 20k).
        default_rate_bps: pacing rate applied to flows with no explicit
            ``set_flow_rate`` configuration (``None`` leaves them unpaced —
            they are released immediately).
        queue_factory: backing integer queue (cFFS by default; benchmarks
            substitute the approximate queue or a timing wheel).
    """

    name = "pacing"

    def __init__(
        self,
        horizon_ns: int = 2_000_000_000,
        num_buckets: int = 20_000,
        default_rate_bps: Optional[float] = None,
        queue_factory: QueueFactory = default_pacing_queue,
    ) -> None:
        if horizon_ns <= 0 or num_buckets <= 0:
            raise ValueError("horizon_ns and num_buckets must be positive")
        granularity = max(1, horizon_ns // num_buckets)
        self.granularity_ns = granularity
        self._queue = queue_factory(
            BucketSpec(num_buckets=num_buckets, granularity=granularity)
        )
        self.default_rate_bps = default_rate_bps
        self._flow_rates: Dict[int, float] = {}
        self._shapers: Dict[int, ShapingTransaction] = {}
        self._pending = 0
        #: Packets released strictly later than their ideal timestamp would
        #: have allowed (used by adherence tests).
        self.released = 0

    # -- configuration -------------------------------------------------------------

    def set_flow_rate(self, flow_id: int, rate_bps: float) -> None:
        """Set ``SO_MAX_PACING_RATE`` for ``flow_id``."""
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self._flow_rates[flow_id] = rate_bps
        self._shapers.pop(flow_id, None)

    def flow_rate(self, flow_id: int) -> Optional[float]:
        """Configured rate of ``flow_id`` (or the default pacing rate)."""
        return self._flow_rates.get(flow_id, self.default_rate_bps)

    def _shaper_for(self, flow_id: int) -> Optional[ShapingTransaction]:
        rate = self.flow_rate(flow_id)
        if rate is None:
            return None
        shaper = self._shapers.get(flow_id)
        if shaper is None or shaper.limit.rate_bps != rate:
            shaper = ShapingTransaction(f"flow-{flow_id}", RateLimit(rate))
            self._shapers[flow_id] = shaper
        return shaper

    # -- scheduler interface ----------------------------------------------------------

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        shaper = self._shaper_for(packet.flow_id)
        send_at = now_ns if shaper is None else shaper.stamp(packet, now_ns)
        packet.metadata["send_at_ns"] = send_at
        packet.rank = send_at
        self._queue.enqueue(send_at, packet)
        self._pending += 1

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        if self._pending == 0:
            return None
        send_at, _packet = self._queue.peek_min()
        if send_at > now_ns:
            return None
        _send_at, packet = self._queue.extract_min()
        self._pending -= 1
        self.released += 1
        return packet

    @property
    def pending(self) -> int:
        return self._pending

    def next_event_ns(self) -> Optional[int]:
        """Timestamp of the earliest held packet (``SoonestDeadline()``)."""
        if self._pending == 0:
            return None
        send_at, _packet = self._queue.peek_min()
        return send_at

    # -- bookkeeping helpers -------------------------------------------------------------

    def flow_garbage_collect(self, idle_flow_ids: list[int]) -> int:
        """Drop shaping state of idle flows; returns how many were dropped.

        The FQ qdisc needs periodic garbage collection of its red-black flow
        tree; Eiffel's per-flow state is just a small dict entry, but the
        operation is exposed so substrates can model the same housekeeping.
        """
        dropped = 0
        for flow_id in idle_flow_ids:
            if self._shapers.pop(flow_id, None) is not None:
                dropped += 1
        return dropped


__all__ = ["TimestampPacingScheduler", "default_pacing_queue"]
