"""Sharded multi-core scheduling runtime (the horizontal-scaling layer).

The paper's queues and shaping pipeline are single-core constructs; this
package scales them out the way production deployments do — one scheduler
instance per core, flows spread across instances by an RSS-style hash:

* :class:`~repro.runtime.sharder.FlowSharder` — flow-to-shard placement
  (hash / sticky round-robin policies, explicit pins) plus the load window
  the skew-aware :class:`~repro.runtime.sharder.ShardRebalancer` inspects to
  migrate hot flows off overloaded shards, and the *ownership view* that
  records which flows are on loan to a work-stealing thief.
* :class:`~repro.runtime.mailbox.Mailbox` — the batched SPSC ingress-to-shard
  handoff, with high/low watermark hysteresis (pause / resume edges) the
  ingress backpressure hangs off.
* :class:`~repro.runtime.ingress.IngressCore` — the asynchronous RX layer:
  one or more ingress cores, each with its own bounded
  :class:`~repro.runtime.ingress.RxRing` fed in NIC-style bursts, batched
  classify + mailbox handoff on an ingress tick cadence, its own cycle
  account (the ``rx_poll`` / ``rx_descriptor`` / ``flow_lookup`` budget of a
  busy-polling RX core), watermark backpressure (the pull pauses and the
  ring grows — loss-free by construction), and pluggable admission control
  (:class:`~repro.runtime.ingress.TailDropPolicy` /
  :class:`~repro.runtime.ingress.FlowFairDropPolicy` /
  :class:`~repro.runtime.ingress.CoDelPolicy`).  Enabled with
  ``ShardedRuntime(ingress_cores=N, admission=...)``; ingress cycles appear
  as their own rows in the runtime telemetry and in the
  ``bottleneck_cycles`` end-to-end view.
* :class:`~repro.runtime.stealing.StealChannel` /
  :class:`~repro.runtime.stealing.FlowLease` — the bounded steal-request
  ring an idle shard parks a request in, and the atomic flow-ownership
  lease that carries a victim's due window (packets, stamps, pacing state)
  to the thief.
* :class:`~repro.runtime.worker.ShardWorker` — one simulated core: a cFFS
  timestamp queue + per-flow pacing drained one batch per scheduling quantum
  through PR 1's ``enqueue_batch`` / ``extract_due`` surface, plus the donor
  (``grant_lease`` / ``end_lease``) and acceptor (``accept_lease``) ends of
  the stealing protocol.
* :class:`~repro.runtime.runtime.ShardedRuntime` — the driver multiplexing
  every shard's worker loop onto one simulator clock, with per-shard
  cycle/queue/steal accounting rolled up into runtime telemetry.
* :class:`~repro.runtime.backend.ExecutionBackend` — the seam between the
  runtime and whoever runs its loops: the default
  :class:`~repro.runtime.backend.SimulatedBackend` keeps the historical
  one-clock behaviour bit-for-bit, while
  :class:`~repro.runtime.backend.ProcessBackend` runs one shard per OS
  process (the SPSC mailbox handoff crossing address spaces over the
  shared-memory rings of :mod:`repro.runtime.shm`) and
  :class:`~repro.runtime.backend.ThreadBackend` runs one shard per thread
  — real wall-clock parallelism with modelled results identical to the
  simulation (``benchmarks/bench_parallel.py`` puts the measured speedup
  next to the modelled curve).
* :class:`~repro.runtime.flowstate.FlowTable` /
  :class:`~repro.runtime.flowstate.PacingTable` — the million-flow state
  engine: sparse flow ids mapped to dense slots by open addressing, every
  per-flow datum (pacing rate / next-release stamp / credit, pins, loans,
  window counts, home shard, in-flight backlog) a flat :mod:`array` column
  indexed by slot, dead flows recycled through a slot free list.  The
  worker, sharder, and runtime driver all keep their per-flow state as
  columns over this engine — tens of bytes per flow instead of half a
  kilobyte of boxed objects — while handoffs (migration, leases) still
  travel as :class:`~repro.core.model.transactions.ShapingTransaction`
  objects and stamps stay bit-identical
  (``benchmarks/bench_megaflow.py`` measures bytes/flow and churn ops/sec
  against the dict-of-objects baseline at 10k/100k/1M flows).
* :class:`~repro.runtime.faults.FaultPlan` /
  :class:`~repro.runtime.faults.FaultStats` — the deterministic
  fault-injection plane: seeded, spec-driven fault schedules (shard
  crash/stall, mailbox handoff drops, ingress wedges, process-child
  death/hang, shm frame corruption) armed at the runtime's existing seams,
  zero-cost when disarmed, paired with the supervision machinery inside
  :class:`~repro.runtime.runtime.ShardedRuntime` (heartbeat watchdog, lease
  reclamation, crashed-shard re-homing with pacing salvage) and the bounded
  retry-with-backoff child restart of
  :class:`~repro.runtime.backend.ProcessBackend`
  (``benchmarks/bench_faults.py`` measures recovery time and
  packets-at-risk per fault type).
* :class:`~repro.runtime.observability.LogHistogram` /
  :class:`~repro.runtime.observability.FlightRecorder` /
  :class:`~repro.runtime.observability.MetricsTimeline` — the deterministic
  observability plane: HDR-style log2-bucketed latency histograms at the
  four waiting seams (RX-ring sojourn, mailbox wait, shard-queue sojourn,
  end-to-end submit→transmit), a bounded ring-buffer flight recorder
  capturing virtual-clock events at the runtime's seams with a Chrome
  trace-event exporter (``ShardedRuntime(tracer=...)``, ``None`` by default
  and byte-identical disarmed — the fault plane's gating contract), and a
  periodic gauge sampler exportable as Prometheus text and JSON
  (``benchmarks/bench_observability.py`` pins the disarmed-equivalence and
  bounds the armed overhead).
* :class:`~repro.runtime.adapters.ShardedPortQueue` /
  :class:`~repro.runtime.adapters.MultiQueueQdisc` — multi-queue adapters
  for the netsim and kernel substrates.

The lease / per-flow FIFO invariant
-----------------------------------

Everything in this package upholds one contract, across every combination
of sharding, rebalancing, and stealing: **a flow's packets leave the
runtime in exactly the order they were submitted.**  The three mechanisms
compose because each one only ever moves a flow at a provably safe point:

* *routing* follows residency — packets chase the flow's in-flight
  packets, so a re-pin takes effect only once the flow fully drains;
* *rebalancing* migrates whole flows and only through lazy re-pins, never
  touching a flow whose due window is on loan;
* *stealing* takes a stamp-ordered **prefix** of a flow's queued packets
  atomically under a :class:`~repro.runtime.stealing.FlowLease`; while the
  lease is out the victim defers its own drains and stamping of that flow
  (the pacing state travelled with the lease), and the lease returns only
  after the thief released the last stolen packet — so the deferred
  packets still depart after everything the thief sent, in order.

``tests/runtime/test_runtime_properties.py`` asserts the invariant under
randomized workloads with all mechanisms enabled, and the differential
tests in ``tests/runtime/test_stealing.py`` check that stealing changes
*where and when* packets are released but never *in what order*.

``benchmarks/bench_sharding.py`` sweeps shard counts over uniform and
Zipf-skewed workloads — rebalancing and stealing each on/off — and writes
``BENCH_sharding.json``, the scaling-axis perf artifact.
"""

from .adapters import MultiQueueQdisc, ShardedPortQueue
from .backend import (
    ExecutionBackend,
    ProcessBackend,
    ShardClockDriver,
    ShardResult,
    SimulatedBackend,
    ThreadBackend,
    WorkerSpec,
    free_threaded,
)
from .faults import (
    FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    RUNTIME_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultStats,
)
from .flowstate import FlowStateStats, FlowTable, PacingTable
from .ingress import (
    AdmissionPolicy,
    CoDelPolicy,
    FlowFairDropPolicy,
    IngressCore,
    IngressStats,
    IngressTelemetry,
    RxRing,
    TailDropPolicy,
    make_admission_factory,
)
from .mailbox import Mailbox, MailboxStats
from .observability import FlightRecorder, LogHistogram, MetricsTimeline
from .runtime import RuntimeTelemetry, ShardTelemetry, ShardedRuntime
from .sharder import (
    DEFAULT_HASH_SEED,
    INGRESS_HASH_SEED,
    FlowSharder,
    Migration,
    ShardRebalancer,
    ShardingStats,
    rss_hash,
)
from .stealing import (
    FlowLease,
    StealChannel,
    StealChannelStats,
    StealRequest,
    StealStats,
    StealTuner,
)
from .worker import ShardWorker, ShardWorkerStats

__all__ = [
    "AdmissionPolicy",
    "CoDelPolicy",
    "DEFAULT_HASH_SEED",
    "ExecutionBackend",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultStats",
    "FlightRecorder",
    "FlowFairDropPolicy",
    "FlowLease",
    "FlowSharder",
    "FlowStateStats",
    "FlowTable",
    "PacingTable",
    "INGRESS_HASH_SEED",
    "IngressCore",
    "IngressStats",
    "IngressTelemetry",
    "LogHistogram",
    "Mailbox",
    "MailboxStats",
    "MetricsTimeline",
    "Migration",
    "MultiQueueQdisc",
    "PROCESS_FAULT_KINDS",
    "ProcessBackend",
    "RUNTIME_FAULT_KINDS",
    "RuntimeTelemetry",
    "RxRing",
    "ShardClockDriver",
    "ShardRebalancer",
    "ShardResult",
    "ShardTelemetry",
    "ShardWorker",
    "ShardWorkerStats",
    "ShardedPortQueue",
    "ShardedRuntime",
    "ShardingStats",
    "SimulatedBackend",
    "StealChannel",
    "StealChannelStats",
    "StealRequest",
    "StealStats",
    "StealTuner",
    "TailDropPolicy",
    "ThreadBackend",
    "WorkerSpec",
    "free_threaded",
    "make_admission_factory",
    "rss_hash",
]
