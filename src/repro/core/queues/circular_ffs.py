"""Circular Hierarchical FFS-based queue — the paper's cFFS (Figure 4).

Packet ranks (deadlines, transmission timestamps) span a *moving* range: the
window of valid ranks slides forward as time advances.  A plain hierarchical
FFS queue covers a fixed range only, and naive modulo indexing corrupts the
bitmap ordering, so the cFFS composes **two** hierarchical FFS queues:

* the *primary* queue covers ``[h_index, h_index + q_size * granularity)``;
* the *secondary* queue covers the range immediately after the primary.

Elements beyond even the secondary range are enqueued into the secondary
queue's **last bucket** (losing exact ordering, which the paper accepts
because ranges are easy to size per policy).  When the primary queue drains
and the minimum now lives in the secondary queue, the two queues *rotate*:
pointers (bucket arrays + bitmaps) are swapped and ``h_index`` advances by
one window.  On rotation the incoming primary's unsorted overflow bucket is
re-dispatched into the new secondary range, so the ordering approximation
stays bounded to one window as the paper intends — far-future ranks are
never dequeued as if they were due.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Iterator, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    validate_priority,
)
from .ffs import DEFAULT_WORD_WIDTH
from .hierarchical_ffs import FFSBitmapTree


class _Window:
    """One of the two rotating halves of a cFFS: buckets + bitmap tree."""

    __slots__ = ("buckets", "tree", "size")

    def __init__(self, num_buckets: int, word_width: int) -> None:
        self.buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(num_buckets)
        ]
        self.tree = FFSBitmapTree(num_buckets, word_width)
        self.size = 0

    @property
    def empty(self) -> bool:
        return self.size == 0


class CircularFFSQueue(IntegerPriorityQueue):
    """cFFS: a hierarchical FFS queue over a moving range of priorities.

    Args:
        spec: bucket layout. ``spec.base_priority`` seeds the initial
            ``h_index`` (minimum priority covered by the primary window).
        word_width: FFS word width (64 matches x86-64 BSF).
        allow_stale: when True (default), priorities smaller than ``h_index``
            are clamped into the first bucket of the primary window instead
            of raising.  This mirrors how a shaper treats packets whose
            transmission time is already in the past: send as soon as
            possible.
    """

    def __init__(
        self,
        spec: BucketSpec,
        word_width: int = DEFAULT_WORD_WIDTH,
        allow_stale: bool = True,
    ) -> None:
        super().__init__(spec)
        self.word_width = word_width
        self.allow_stale = allow_stale
        self.h_index = spec.base_priority
        self._primary = _Window(spec.num_buckets, word_width)
        self._secondary = _Window(spec.num_buckets, word_width)

    # -- range bookkeeping -------------------------------------------------

    @property
    def window_span(self) -> int:
        """Priority units covered by one window."""
        return self.spec.num_buckets * self.spec.granularity

    @property
    def primary_range(self) -> tuple[int, int]:
        """Half-open priority range ``[lo, hi)`` covered by the primary window."""
        return self.h_index, self.h_index + self.window_span

    @property
    def secondary_range(self) -> tuple[int, int]:
        """Half-open priority range covered by the secondary window."""
        lo = self.h_index + self.window_span
        return lo, lo + self.window_span

    def _bucket_in_primary(self, priority: int) -> int:
        return (priority - self.h_index) // self.spec.granularity

    def _bucket_in_secondary(self, priority: int) -> int:
        lo = self.h_index + self.window_span
        return (priority - lo) // self.spec.granularity

    # -- core operations ----------------------------------------------------

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        lo, hi = self.primary_range
        if priority < lo:
            if not self.allow_stale:
                raise ValueError(
                    f"priority {priority} precedes queue head index {lo}"
                )
            # Stale rank: treat as due immediately.
            self._enqueue_window(self._primary, 0, priority, item)
            return
        if priority < hi:
            self._enqueue_window(
                self._primary, self._bucket_in_primary(priority), priority, item
            )
            return
        slo, shi = self.secondary_range
        if priority < shi:
            self._enqueue_window(
                self._secondary, self._bucket_in_secondary(priority), priority, item
            )
            return
        # Beyond both windows: last bucket of the secondary queue, unsorted.
        self.stats.overflow_enqueues += 1
        self._enqueue_window(
            self._secondary, self.spec.num_buckets - 1, priority, item
        )

    def _enqueue_window(
        self, window: _Window, bucket: int, priority: int, item: Any
    ) -> None:
        was_empty = not window.buckets[bucket]
        window.buckets[bucket].append((priority, item))
        if was_empty:
            self.stats.word_scans += window.tree.set(bucket)
        window.size += 1
        self._size += 1

    def _rotate(self) -> None:
        """Swap primary and secondary windows and advance ``h_index``.

        The incoming primary window may carry an unsorted overflow (last)
        bucket of beyond-horizon ranks; those are re-dispatched into the new
        secondary range so they are not dequeued as if they were due.
        """
        self._primary, self._secondary = self._secondary, self._primary
        self.h_index += self.window_span
        self.stats.rotations += 1
        self._rebucket_overflow()

    def _rebucket_overflow(self) -> None:
        """Re-dispatch the new primary's overflow bucket after a rotation.

        Entries whose rank falls inside the last bucket's own range stay put;
        everything else belongs to the new secondary window (or its overflow
        bucket) now that ``h_index`` has advanced.
        """
        last = self.spec.num_buckets - 1
        entries = self._primary.buckets[last]
        if not entries:
            return
        last_floor = self.h_index + last * self.spec.granularity
        _lo, hi = self.primary_range
        if all(last_floor <= priority < hi for priority, _item in entries):
            return  # everything legitimately belongs to the last bucket
        keep: Deque[tuple[int, Any]] = deque()
        moved = 0
        _slo, shi = self.secondary_range
        while entries:
            entry = entries.popleft()
            priority = entry[0]
            self.stats.linear_scans += 1
            if priority < hi:
                window = self._primary
                bucket = self._bucket_in_primary(priority)
            elif priority < shi:
                window = self._secondary
                bucket = self._bucket_in_secondary(priority)
            else:
                window = self._secondary
                bucket = last
            if window is self._primary and bucket == last:
                keep.append(entry)
                continue
            was_empty = not window.buckets[bucket]
            window.buckets[bucket].append(entry)
            if was_empty:
                self.stats.word_scans += window.tree.set(bucket)
            if window is self._secondary:
                moved += 1
        if keep:
            entries.extend(keep)
        else:
            self.stats.word_scans += self._primary.tree.clear(last)
        self._primary.size -= moved
        self._secondary.size += moved

    def _fast_forward_if_overflow_only(self) -> None:
        """Jump ``h_index`` ahead when only far-future overflow ranks remain.

        Called with an empty primary window.  If every remaining element sits
        in the secondary's overflow bucket and none of them lands within the
        next window either, rotating one window at a time would shuffle the
        same overflow entries forward once per window; instead ``h_index``
        jumps straight to the window preceding the minimum remaining rank so
        the upcoming rotation places it in the primary range.
        """
        last = self.spec.num_buckets - 1
        first, scanned = self._secondary.tree.first_set()
        self.stats.word_scans += scanned
        if first != last:
            return
        entries = self._secondary.buckets[last]
        self.stats.linear_scans += len(entries)
        min_priority = min(priority for priority, _item in entries)
        span = self.window_span
        if min_priority < self.h_index + 2 * span:
            return
        self.h_index += ((min_priority - self.h_index) // span - 1) * span

    def _advance_to_nonempty(self) -> _Window:
        """Rotate until the primary window holds the minimum element."""
        while self._primary.empty and not self._secondary.empty:
            self._fast_forward_if_overflow_only()
            self._rotate()
        if self._primary.empty:
            raise EmptyQueueError("circular FFS queue is empty")
        return self._primary

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty CircularFFSQueue")
        window = self._advance_to_nonempty()
        bucket, scanned = window.tree.first_set()
        self.stats.word_scans += scanned
        entry = window.buckets[bucket].popleft()
        window.size -= 1
        if not window.buckets[bucket]:
            self.stats.word_scans += window.tree.clear(bucket)
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty CircularFFSQueue")
        window = self._advance_to_nonempty()
        bucket, scanned = window.tree.first_set()
        self.stats.word_scans += scanned
        return window.buckets[bucket][0]

    # -- batch operations --------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one bucket lookup and tree update per bucket."""
        grouped: dict[tuple[int, int], list[tuple[int, Any]]] = {}
        count = 0
        lo, hi = self.primary_range
        _slo, shi = self.secondary_range
        last = self.spec.num_buckets - 1
        for priority, item in pairs:
            priority = validate_priority(priority)
            if priority < lo:
                if not self.allow_stale:
                    raise ValueError(
                        f"priority {priority} precedes queue head index {lo}"
                    )
                key = (0, 0)
            elif priority < hi:
                key = (0, self._bucket_in_primary(priority))
            elif priority < shi:
                key = (1, self._bucket_in_secondary(priority))
            else:
                self.stats.overflow_enqueues += 1
                key = (1, last)
            grouped.setdefault(key, []).append((priority, item))
            count += 1
        self.stats.enqueues += count
        self.stats.bucket_lookups += len(grouped)
        windows = (self._primary, self._secondary)
        for (window_index, bucket), entries in grouped.items():
            window = windows[window_index]
            was_empty = not window.buckets[bucket]
            window.buckets[bucket].extend(entries)
            if was_empty:
                self.stats.word_scans += window.tree.set(bucket)
            window.size += len(entries)
        self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one tree walk per bucket visited."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        while len(batch) < n and self._size:
            window = self._advance_to_nonempty()
            bucket, scanned = window.tree.first_set()
            self.stats.word_scans += scanned
            entries = window.buckets[bucket]
            take = min(n - len(batch), len(entries))
            for _ in range(take):
                batch.append(entries.popleft())
            if not entries:
                self.stats.word_scans += window.tree.clear(bucket)
            window.size -= take
            self.stats.dequeues += take
            self._size -= take
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        """Drain every element whose priority is ``<= now`` (up to ``limit``).

        This is the operation a shaping qdisc performs when its timer fires:
        release every packet whose transmission timestamp has passed.  The
        batch implementation walks the bitmap tree once per bucket drained
        instead of twice per element (peek + extract).
        """
        released: list[tuple[int, Any]] = []
        while self._size and (limit is None or len(released) < limit):
            window = self._advance_to_nonempty()
            bucket, scanned = window.tree.first_set()
            self.stats.word_scans += scanned
            entries = window.buckets[bucket]
            while entries and entries[0][0] <= now:
                if limit is not None and len(released) >= limit:
                    break
                released.append(entries.popleft())
                window.size -= 1
                self.stats.dequeues += 1
                self._size -= 1
            if not entries:
                self.stats.word_scans += window.tree.clear(bucket)
                continue
            break  # head not yet due, or the limit was reached
        return released

    def remove(self, priority: int, item: Any) -> bool:
        """Remove a specific ``(priority, item)`` pair; True when found."""
        priority = validate_priority(priority)
        for window, bucket in self._candidate_buckets(priority):
            queue = window.buckets[bucket]
            for index, entry in enumerate(queue):
                if entry[0] == priority and entry[1] is item:
                    del queue[index]
                    window.size -= 1
                    self._size -= 1
                    if not queue:
                        self.stats.word_scans += window.tree.clear(bucket)
                    return True
        return False

    def _candidate_buckets(self, priority: int) -> Iterator[tuple[_Window, int]]:
        """Buckets that may hold an element of ``priority``.

        Beyond-window priorities may sit in *either* window's overflow (last)
        bucket: new overflow lands in the secondary's last bucket, but after a
        rotation previously overflowed entries live in the primary's last
        bucket until the next rotation re-dispatches them.
        """
        lo, hi = self.primary_range
        _slo, shi = self.secondary_range
        last = self.spec.num_buckets - 1
        if priority < lo:
            yield self._primary, 0
        elif priority < hi:
            yield self._primary, self._bucket_in_primary(priority)
        elif priority < shi:
            yield self._secondary, self._bucket_in_secondary(priority)
            yield self._primary, last
        else:
            yield self._secondary, last
            yield self._primary, last


__all__ = ["CircularFFSQueue"]
