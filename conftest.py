"""Pytest bootstrap: make the in-tree ``src`` layout importable.

The environment used for this reproduction has no network access and an old
setuptools without the ``wheel`` package, so ``pip install -e .`` cannot build
the PEP 660 editable wheel.  Adding ``src`` to ``sys.path`` here keeps
``pytest tests/`` and ``pytest benchmarks/`` working from a plain checkout.
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
