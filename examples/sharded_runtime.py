#!/usr/bin/env python3
"""Sharded runtime demo: 4 virtual cores, Zipf traffic, rebalancing, stealing.

Builds a 4-shard scheduling runtime (one Eiffel cFFS queue + per-flow pacing
per shard, RSS-style flow hashing at ingress), pushes a Zipf-skewed packet
stream through it, and compares shard balance across the three policies:

* **static** — hashing alone: the shard that drew the elephant flows is the
  bottleneck core;
* **rebalance** — the skew-aware rebalancer migrates hot flows off the
  bottleneck shard, waiting for each flow to drain first so per-flow FIFO
  is never violated; a single elephant flow, however, cannot be migrated
  away from itself;
* **rebalance + steal** — idle shards additionally take over the busy
  shard's imminent due window under an order-preserving flow lease
  (ownership, timestamps and pacing state travel with the lease), which
  splits even one elephant flow across cores *in time*.

Run:  python examples/sharded_runtime.py
"""

import random
import time

from repro.core.model import Packet
from repro.cpu import CpuMeter
from repro.runtime import ShardedRuntime
from repro.traffic import ZipfFlowSampler

NUM_SHARDS = 4
NUM_FLOWS = 64
NUM_PACKETS = 6_000
QUANTUM_NS = 10_000
INGRESS_BURST = 128  # one interrupt-coalesced NIC RX pull
INGRESS_BURST_QUANTA = 8
RATE_BPS = 10e9


def drive(rebalance: bool, steal: bool = False):
    """Run the Zipf workload through a fresh runtime; return its telemetry."""
    runtime = ShardedRuntime(
        NUM_SHARDS,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        rebalance_interval_ns=16 * QUANTUM_NS if rebalance else None,
        steal_enabled=steal,
        record_transmits=False,
    )
    sampler = ZipfFlowSampler(NUM_FLOWS, skew=1.2, rng=random.Random(7))
    flow_ids = sampler.sample_flows(NUM_PACKETS)
    for index in range(0, NUM_PACKETS, INGRESS_BURST):
        chunk = flow_ids[index : index + INGRESS_BURST]
        when_ns = (index // INGRESS_BURST) * INGRESS_BURST_QUANTA * QUANTUM_NS

        def offer(chunk=chunk):
            runtime.submit_batch([Packet(flow_id=f, size_bytes=1500) for f in chunk])

        runtime.simulator.schedule_at(when_ns, offer)
    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start
    return runtime.telemetry(), elapsed


def describe(title: str, telemetry, elapsed: float) -> None:
    print(f"{title}:")
    for shard in telemetry.shards:
        bar = "#" * (shard.transmitted // 60)
        print(
            f"  shard {shard.shard_id}: {shard.transmitted:5d} packets  "
            f"{shard.cycles / 1e3:7.1f} kcycles  {bar}"
        )
    line = (
        f"  imbalance (max/mean) = {telemetry.imbalance:.2f}, "
        f"bottleneck = {telemetry.max_shard_cycles / 1e3:.1f} kcycles, "
        f"migrations = {telemetry.migrations_applied}"
    )
    if telemetry.steals_succeeded:
        line += (
            f", steals = {telemetry.steals_succeeded} leases / "
            f"{telemetry.packets_stolen} packets"
        )
    print(line)
    meter_hz = CpuMeter().cycles_per_second  # the clock the benchmarks model
    modelled = telemetry.transmitted * meter_hz / telemetry.max_shard_cycles
    wall = telemetry.transmitted / max(elapsed, 1e-9)
    print(
        f"  throughput: modelled {modelled / 1e6:.1f} Mops/s "
        f"(bottleneck core) | wall-clock {wall / 1e6:.3f} Mops/s "
        f"(single-threaded harness)"
    )
    print()


def main() -> None:
    print(
        f"{NUM_PACKETS} packets, {NUM_FLOWS} Zipf-skewed flows, "
        f"{NUM_SHARDS} shards (one cFFS queue + shaper per shard)\n"
    )
    static, static_sec = drive(rebalance=False)
    describe("static RSS hashing", static, static_sec)
    rebalanced, rebalanced_sec = drive(rebalance=True)
    describe("with skew-aware rebalancing", rebalanced, rebalanced_sec)
    stolen, stolen_sec = drive(rebalance=True, steal=True)
    describe("with rebalancing + work stealing", stolen, stolen_sec)
    gain = static.max_shard_cycles / stolen.max_shard_cycles
    print(
        "The rebalancer pins hot flows away from the bottleneck shard once\n"
        "they drain, and idle shards lease the remaining elephant's due\n"
        "windows (per-flow FIFO preserved by the ownership handoff), cutting\n"
        f"the bottleneck core's work by {100 * (1 - 1 / gain):.0f}% — "
        f"{gain:.2f}x modelled aggregate throughput."
    )


if __name__ == "__main__":
    main()
