"""Unit tests for FFS primitives and the single/multi-word FFS queues."""

import pytest

from repro.core.queues import BucketSpec, EmptyQueueError, PriorityOutOfRangeError
from repro.core.queues.ffs import (
    Bitmap,
    FFSQueue,
    MultiWordFFSQueue,
    clear_bit,
    find_first_set,
    find_last_set,
    popcount,
    set_bit,
)
from repro.core.queues.ffs import test_bit as bit_is_set


class TestBitPrimitives:
    def test_find_first_set_single_bits(self):
        for i in range(0, 128):
            assert find_first_set(1 << i) == i

    def test_find_first_set_mixed_word(self):
        assert find_first_set(0b110100) == 2

    def test_find_first_set_zero_raises(self):
        with pytest.raises(ValueError):
            find_first_set(0)

    def test_find_last_set(self):
        assert find_last_set(0b110100) == 5
        assert find_last_set(1) == 0
        with pytest.raises(ValueError):
            find_last_set(0)

    def test_set_clear_test_bit(self):
        word = 0
        word = set_bit(word, 5)
        assert bit_is_set(word, 5)
        assert not bit_is_set(word, 4)
        word = clear_bit(word, 5)
        assert word == 0

    def test_clear_bit_idempotent(self):
        assert clear_bit(0b100, 5) == 0b100

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_count_set_bits_alias(self):
        from repro.core.queues.ffs import count_set_bits

        assert count_set_bits(0) == 0
        assert count_set_bits(0b1011) == 3

    def test_negative_words_rejected(self):
        # A Python negative int has conceptually infinite sign bits, so the
        # machine-word primitives must refuse it instead of returning the
        # two's-complement isolate of its magnitude.
        from repro.core.queues.ffs import count_set_bits

        with pytest.raises(ValueError):
            find_first_set(-1)
        with pytest.raises(ValueError):
            find_first_set(-(1 << 63))
        with pytest.raises(ValueError):
            find_last_set(-1)
        with pytest.raises(ValueError):
            popcount(-1)
        with pytest.raises(ValueError):
            count_set_bits(-(1 << 40))


class TestBitmap:
    def test_set_and_first(self):
        bitmap = Bitmap(16)
        bitmap.set(7)
        bitmap.set(3)
        assert bitmap.first_set() == 3
        assert bitmap.last_set() == 7

    def test_clear(self):
        bitmap = Bitmap(8)
        bitmap.set(2)
        bitmap.clear(2)
        assert not bitmap.any

    def test_out_of_range_raises(self):
        bitmap = Bitmap(8)
        with pytest.raises(IndexError):
            bitmap.set(8)
        with pytest.raises(IndexError):
            bitmap.test(-1)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Bitmap(0)

    def test_clear_all(self):
        bitmap = Bitmap(8)
        bitmap.set(1)
        bitmap.set(5)
        bitmap.clear_all()
        assert not bitmap.any


class TestFFSQueue:
    def test_orders_by_priority(self):
        queue = FFSQueue(BucketSpec(num_buckets=16))
        queue.enqueue(5, "e")
        queue.enqueue(1, "a")
        queue.enqueue(9, "z")
        assert queue.extract_min() == (1, "a")
        assert queue.extract_min() == (5, "e")
        assert queue.extract_min() == (9, "z")

    def test_fifo_within_bucket(self):
        queue = FFSQueue(BucketSpec(num_buckets=8))
        queue.enqueue(3, "first")
        queue.enqueue(3, "second")
        assert queue.extract_min() == (3, "first")
        assert queue.extract_min() == (3, "second")

    def test_peek_does_not_remove(self):
        queue = FFSQueue(BucketSpec(num_buckets=8))
        queue.enqueue(2, "x")
        assert queue.peek_min() == (2, "x")
        assert len(queue) == 1

    def test_empty_extraction_raises(self):
        queue = FFSQueue(BucketSpec(num_buckets=8))
        with pytest.raises(EmptyQueueError):
            queue.extract_min()
        with pytest.raises(EmptyQueueError):
            queue.peek_min()

    def test_out_of_range_priority_rejected(self):
        queue = FFSQueue(BucketSpec(num_buckets=8))
        with pytest.raises(PriorityOutOfRangeError):
            queue.enqueue(8, "too big")
        with pytest.raises(PriorityOutOfRangeError):
            queue.enqueue(-1, "negative")

    def test_too_many_buckets_rejected(self):
        with pytest.raises(ValueError):
            FFSQueue(BucketSpec(num_buckets=65), word_width=64)

    def test_granularity_groups_priorities(self):
        queue = FFSQueue(BucketSpec(num_buckets=8, granularity=10))
        queue.enqueue(72, "b")
        queue.enqueue(5, "a")
        assert queue.extract_min() == (5, "a")
        assert queue.extract_min() == (72, "b")

    def test_same_bucket_preserves_fifo_not_priority(self):
        # Within a bucket order is arrival order: the paper treats ranks in
        # one bucket as equivalent.
        queue = FFSQueue(BucketSpec(num_buckets=4, granularity=100))
        queue.enqueue(55, "later-rank-first-arrival")
        queue.enqueue(51, "earlier-rank-second-arrival")
        assert queue.extract_min()[1] == "later-rank-first-arrival"

    def test_non_integer_priority_rejected(self):
        queue = FFSQueue(BucketSpec(num_buckets=8))
        with pytest.raises(TypeError):
            queue.enqueue(1.5, "x")
        with pytest.raises(TypeError):
            queue.enqueue(True, "x")

    def test_occupancy_word_tracks_buckets(self):
        queue = FFSQueue(BucketSpec(num_buckets=8))
        queue.enqueue(0, "a")
        queue.enqueue(6, "b")
        assert queue.occupancy_word() == (1 << 0) | (1 << 6)
        queue.extract_min()
        assert queue.occupancy_word() == (1 << 6)

    def test_stats_counters(self):
        queue = FFSQueue(BucketSpec(num_buckets=8))
        queue.enqueue(1, "a")
        queue.enqueue(2, "b")
        queue.extract_min()
        assert queue.stats.enqueues == 2
        assert queue.stats.dequeues == 1
        assert queue.stats.word_scans >= 1


class TestMultiWordFFSQueue:
    def test_spans_multiple_words(self):
        queue = MultiWordFFSQueue(BucketSpec(num_buckets=200), word_width=64)
        assert queue.num_words == 4
        queue.enqueue(150, "late")
        queue.enqueue(3, "early")
        assert queue.extract_min() == (3, "early")
        assert queue.extract_min() == (150, "late")

    def test_word_scans_grow_with_distance(self):
        queue = MultiWordFFSQueue(BucketSpec(num_buckets=256), word_width=64)
        queue.enqueue(255, "far")
        queue.extract_min()
        # Reaching bucket 255 requires scanning all four words.
        assert queue.stats.word_scans >= 4

    def test_drain_order_random(self):
        import random

        rng = random.Random(7)
        queue = MultiWordFFSQueue(BucketSpec(num_buckets=500), word_width=32)
        priorities = [rng.randrange(500) for _ in range(300)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_empty_raises(self):
        queue = MultiWordFFSQueue(BucketSpec(num_buckets=100))
        with pytest.raises(EmptyQueueError):
            queue.peek_min()

    def test_out_of_range_rejected(self):
        queue = MultiWordFFSQueue(BucketSpec(num_buckets=100))
        with pytest.raises(PriorityOutOfRangeError):
            queue.enqueue(100, "x")
