"""Compact array-backed flow state: the million-flow engine.

Every earlier layer of the runtime kept its per-flow state in Python dicts
of Python objects — a :class:`~repro.core.model.transactions.ShapingTransaction`
per paced flow on each :class:`~repro.runtime.worker.ShardWorker`, pin /
sticky / loan / window dicts in the :class:`~repro.runtime.sharder.FlowSharder`,
home / pending dicts in the :class:`~repro.runtime.runtime.ShardedRuntime`
driver.  That is fine at benchmark scale (hundreds of flows) and ruinous at
production scale: a shaping transaction alone costs an instance + ``__dict__``
+ a name string + a ``RateLimit`` — roughly half a kilobyte — before the
three dict entries that point at it, so a million concurrent flows burn
hundreds of megabytes on bookkeeping the scheduler reads four words of.

This module extends the PR 4 ``__slots__``/free-list discipline from the
queues to flow state itself, the way the kernel's FQ qdisc keeps ``struct
fq_flow`` in preallocated arenas rather than boxed allocations:

* :class:`FlowTable` — the generic engine: an open-addressing index maps a
  sparse flow id to a **dense slot**; registered columns are flat
  :mod:`array`-module buffers indexed by slot (four to eight bytes per flow
  per column, no per-flow objects anywhere); dead flows push their slot
  onto a free list so churn recycles without allocation.
* :class:`PacingTable` — the shaping columns one shard worker needs
  (``rate_bps`` / ``burst_bytes`` / ``next_free_ns`` / ``credit_bytes``),
  with a :meth:`PacingTable.stamp` that reproduces
  :meth:`ShapingTransaction.stamp
  <repro.core.model.transactions.ShapingTransaction.stamp>` arithmetic
  bit-for-bit, and :meth:`detach` / :meth:`install` that materialise /
  absorb a real ``ShapingTransaction`` so migration handoffs and
  work-stealing leases keep travelling in the exact wire format the
  rebalancer and :class:`~repro.runtime.stealing.FlowLease` always used.
* :class:`FlowStateStats` — the engine's counters, in the same pickled
  counter-dataclass family every other subsystem reports through.

The whole point is that nothing *semantic* changes: stamps, modelled cycle
charges, lease handoffs and GC verdicts are identical to the dict-of-objects
implementation (the committed ``BENCH_hotpath.json`` / ``BENCH_sharding.json``
modelled columns must not move); only the representation shrinks, which
``benchmarks/bench_megaflow.py`` measures directly (bytes/flow and churn
ops/sec at 10k/100k/1M flows against a dict-of-objects baseline).

Everything here pickles cleanly (arrays carry their buffers), so flow state
can cross the :class:`~repro.runtime.backend.ProcessBackend` boundary like
any other counter snapshot.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.model.transactions import RateLimit, ShapingTransaction
from ..core.queues.base import CounterStatsMixin

#: Index-cell sentinels (the *index* holds slot numbers, never flow ids, so
#: the sentinels constrain slots — flow ids only need to be non-negative).
_EMPTY = -1
_TOMB = -2

#: Fibonacci multiplier (golden ratio in 64 bits): one multiply avalanches
#: dense integer flow ids across the index's high bits.  With *linear*
#: probing this mixing is load-bearing, not a nicety: identity-style
#: hashes put dense id ranges into one contiguous run, and every miss
#: then walks to the end of the run (primary clustering), which measures
#: ~25x slower under Zipf churn.  Same constant family as
#: :func:`repro.runtime.sharder.rss_hash`.
_FIB = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

#: Saturation bound of the int64 columns.  ``next_free_ns`` can only cross
#: this for sub-bit-per-second rates stamping jumbo packets — 292 years of
#: simulated time — where "never" is the honest answer anyway.
_I64_MAX = (1 << 63) - 1

#: Initial index size (power of two; grows at 2/3 fill like CPython's dict).
_MIN_CELLS = 64


@dataclass(slots=True)
class FlowStateStats(CounterStatsMixin):
    """Counters of one array-backed flow table.

    ``inserts`` counts every slot grant, ``recycles`` the subset served from
    the free list (churn working as designed: a dead flow's slot is reused
    without growing any buffer).  The ``gc_*`` counters are filled by the
    runtime's incremental sweep over its table: candidates *examined* versus
    slots actually *reclaimed*, plus the sweep count — the numbers that show
    a bounded sweep converging on the same live set a global scan finds.
    """

    inserts: int = 0
    recycles: int = 0
    removes: int = 0
    rehashes: int = 0
    gc_sweeps: int = 0
    gc_examined: int = 0
    gc_reclaimed: int = 0


class FlowTable:
    """Sparse flow ids -> dense slots, with flat typed columns per slot.

    The shape of a real flow table (FQ's red-black-tree-of-arenas, a NIC's
    RSS indirection + flow director): one open-addressing **index** (linear
    probing, tombstones, 2/3 max fill) maps ``flow_id`` to a small integer
    *slot*; every piece of per-flow state lives in an :mod:`array` column
    indexed by that slot.  Slots of removed flows go on a free list and are
    recycled before any buffer grows, so steady-state churn allocates
    nothing and memory tracks *peak concurrent* flows, not flows ever seen.

    Columns are registered up front with :meth:`add_column`, which returns
    the backing array; callers keep that reference and index it directly
    with the slots :meth:`ensure` / :meth:`lookup` hand out (one probe per
    packet, then plain array reads/writes — the dense-column discipline of
    the PR 4 hot-path work).  ``array`` grows in place under ``extend``, so
    cached references never go stale.

    Flow ids must be non-negative (``key[slot] == -1`` marks a free slot);
    this is the invariant every packet source in the repo already upholds.

    This class is deliberately policy-free: the pacing semantics live in
    :class:`PacingTable`, placement columns in the sharder, ownership
    columns in the runtime — all as columns over this one engine.
    """

    __slots__ = (
        "stats",
        "key",
        "created",
        "_index",
        "_cells",
        "_mask",
        "_shift",
        "_fill",
        "_tombs",
        "_free",
        "_next_fresh",
        "_size",
        "_names",
        "_columns",
        "_defaults",
    )

    def __init__(self) -> None:
        self.stats = FlowStateStats()
        #: Dense key column: ``key[slot]`` is the flow id, ``-1`` when free.
        self.key = array("q")
        #: True when the most recent :meth:`ensure` created its slot.
        self.created = False
        self._cells = _MIN_CELLS
        self._mask = _MIN_CELLS - 1
        self._shift = 64 - _MIN_CELLS.bit_length() + 1
        self._index = array("i", [_EMPTY]) * _MIN_CELLS
        self._fill = 0  # live + tombstone cells
        self._tombs = 0
        self._free = array("i")  # recycled slots, used as a stack
        self._next_fresh = 0  # high watermark of slots ever handed out
        self._size = 0  # live flows
        self._names: List[str] = []
        self._columns: List[array] = []
        self._defaults: List[float] = []

    # -- columns -----------------------------------------------------------

    def add_column(self, name: str, typecode: str, default) -> array:
        """Register a per-flow column; returns the backing array.

        Existing and future slots read ``default`` until written.  The
        returned array object is stable for the table's lifetime (growth is
        in-place), so hot paths index the reference directly.
        """
        if name in self._names:
            raise ValueError(f"duplicate column {name!r}")
        column = array(typecode)
        allocated = len(self.key)
        if allocated:
            column.extend(array(typecode, [default]) * allocated)
        self._names.append(name)
        self._columns.append(column)
        self._defaults.append(default)
        return column

    def column(self, name: str) -> array:
        """The backing array of a registered column."""
        return self._columns[self._names.index(name)]

    # -- index -------------------------------------------------------------

    def lookup(self, flow_id: int) -> int:
        """Slot of ``flow_id``, or ``-1`` when absent (one probe chain)."""
        index = self._index
        mask = self._mask
        key = self.key
        cell = ((flow_id * _FIB) & _MASK64) >> self._shift
        while True:
            slot = index[cell]
            if slot == _EMPTY:
                return -1
            if slot != _TOMB and key[slot] == flow_id:
                return slot
            cell = (cell + 1) & mask

    def ensure(self, flow_id: int) -> int:
        """Slot of ``flow_id``, inserting a fresh one when absent.

        Sets :attr:`created` so callers can initialise their columns exactly
        once per flow without a second probe (checking a flag beats
        allocating a ``(slot, created)`` tuple on a per-packet path).
        """
        index = self._index
        mask = self._mask
        key = self.key
        cell = ((flow_id * _FIB) & _MASK64) >> self._shift
        reuse = -1
        while True:
            slot = index[cell]
            if slot == _EMPTY:
                break
            if slot == _TOMB:
                if reuse < 0:
                    reuse = cell
            elif key[slot] == flow_id:
                self.created = False
                return slot
            cell = (cell + 1) & mask
        slot = self._alloc_slot(flow_id)
        if reuse >= 0:
            index[reuse] = slot
            self._tombs -= 1
        else:
            index[cell] = slot
            self._fill += 1
        if self._fill * 3 >= self._cells * 2:
            self._rehash()
        self.created = True
        return slot

    def remove(self, flow_id: int) -> bool:
        """Free the flow's slot (recycled by the next insert); False if absent."""
        index = self._index
        mask = self._mask
        key = self.key
        cell = ((flow_id * _FIB) & _MASK64) >> self._shift
        while True:
            slot = index[cell]
            if slot == _EMPTY:
                return False
            if slot != _TOMB and key[slot] == flow_id:
                index[cell] = _TOMB
                self._tombs += 1
                key[slot] = -1
                self._free.append(slot)
                self._size -= 1
                self.stats.removes += 1
                return True
            cell = (cell + 1) & mask

    def _alloc_slot(self, flow_id: int) -> int:
        # Validated on the insert path only: a negative id can never *hit*
        # (keys are validated here), so probes for one fall through to this
        # miss path and the hot ensure() loop stays branch-free about it.
        if flow_id < 0:
            raise ValueError("flow ids must be non-negative")
        free = self._free
        if free:
            slot = free.pop()
            self.key[slot] = flow_id
            # A recycled slot still holds the dead flow's values.
            for column, default in zip(self._columns, self._defaults):
                column[slot] = default
            self.stats.recycles += 1
        else:
            slot = self._next_fresh
            if slot >= len(self.key):
                self._grow_slots()
            self._next_fresh = slot + 1
            self.key[slot] = flow_id
        self._size += 1
        self.stats.inserts += 1
        return slot

    def _grow_slots(self) -> None:
        allocated = len(self.key)
        grow = max(32, allocated // 2)
        self.key.extend(array("q", [-1]) * grow)
        for column, default in zip(self._columns, self._defaults):
            column.extend(array(column.typecode, [default]) * grow)

    def _rehash(self) -> None:
        """Rebuild the index (bigger and/or tombstone-free) at <= 1/3 fill."""
        cells = _MIN_CELLS
        while cells < self._size * 3:
            cells <<= 1
        self._cells = cells
        mask = cells - 1
        self._mask = mask
        shift = 64 - cells.bit_length() + 1
        self._shift = shift
        index = array("i", [_EMPTY]) * cells
        key = self.key
        for slot in range(self._next_fresh):
            flow_id = key[slot]
            if flow_id < 0:
                continue
            cell = ((flow_id * _FIB) & _MASK64) >> shift
            while index[cell] != _EMPTY:
                cell = (cell + 1) & mask
            index[cell] = slot
        self._index = index
        self._fill = self._size
        self._tombs = 0
        self.stats.rehashes += 1

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, flow_id: int) -> bool:
        return self.lookup(flow_id) >= 0

    @property
    def slot_limit(self) -> int:
        """Slots ever handed out (the dense columns' high watermark)."""
        return self._next_fresh

    def live_slots(self) -> Iterator[int]:
        """Every occupied slot (order is slot order, not insertion order)."""
        key = self.key
        for slot in range(self._next_fresh):
            if key[slot] >= 0:
                yield slot

    def items(self) -> Iterator[Tuple[int, int]]:
        """``(flow_id, slot)`` for every live flow."""
        key = self.key
        for slot in range(self._next_fresh):
            flow_id = key[slot]
            if flow_id >= 0:
                yield flow_id, slot

    def memory_bytes(self) -> int:
        """Actual bytes held by the index, key, free list and every column."""
        total = sys.getsizeof(self._index) + sys.getsizeof(self.key)
        total += sys.getsizeof(self._free)
        for column in self._columns:
            total += sys.getsizeof(column)
        return total


class PacingTable(FlowTable):
    """One shard's per-flow shaping state as four columns over a FlowTable.

    The array-backed replacement for ``ShardWorker``'s dict of
    :class:`~repro.core.model.transactions.ShapingTransaction` objects.
    :meth:`stamp` repeats the transaction's arithmetic verbatim — same
    ``max``, same ``int(size * 8 / rate * 1e9)`` float expression, same
    credit bookkeeping — so every timestamp is bit-identical to the object
    implementation's.

    Subclasses :class:`FlowTable` rather than wrapping one: the fused
    per-packet path (:meth:`touch`) probes ``self._index`` directly, and
    the table API (``lookup`` / ``remove`` / ``len`` / ``in`` /
    ``memory_bytes`` / ``items``) is inherited instead of re-exported
    through one-line delegates that each cost a call frame per packet.

    Migration and lease handoffs still travel as real ``ShapingTransaction``
    objects (:meth:`detach` materialises one, :meth:`install` absorbs one):
    the object is the *wire format* of RFS-style handoff and of
    :class:`~repro.runtime.stealing.FlowLease`, while the columns are the
    *resident format*.  The materialised transaction's name reflects the
    shard it detached from, exactly like a freshly created one.
    """

    __slots__ = ("shard_id", "last_slot", "_rate", "_burst", "_next_free", "_credit")

    def __init__(self, shard_id: int) -> None:
        super().__init__()
        self.shard_id = shard_id
        self.last_slot = -1
        self._rate = self.add_column("rate_bps", "d", 0.0)
        self._burst = self.add_column("burst_bytes", "q", 0)
        self._next_free = self.add_column("next_free_ns", "q", 0)
        self._credit = self.add_column("credit_bytes", "q", 0)

    @property
    def table(self) -> "FlowTable":
        """The underlying table (which is this object; kept for callers
        written against the earlier wrapped-table layout)."""
        return self

    def slot_for(self, flow_id: int, rate_bps: float) -> int:
        """Slot of the flow's pacing state, created at ``rate_bps`` if new.

        An existing slot keeps its stored rate (and any adopted burst /
        credit), matching the old behaviour where an existing transaction's
        limit survived later ``flow_rates`` edits until explicitly reset.
        """
        slot = self.ensure(flow_id)
        if self.created:
            self._rate[slot] = rate_bps
            # burst/next_free/credit start at the column defaults (0), the
            # exact state of ShapingTransaction(name, RateLimit(rate_bps)).
        return slot

    def stamp(self, slot: int, size_bytes: int, now_ns: int) -> int:
        """Timestamp one packet — ShapingTransaction.stamp, columnised."""
        credit = self._credit[slot]
        next_free = self._next_free[slot]
        if credit >= size_bytes:
            self._credit[slot] = credit - size_bytes
            send_at = now_ns if now_ns > next_free else next_free
            self._next_free[slot] = send_at
            return send_at
        send_at = now_ns if now_ns > next_free else next_free
        release = send_at + int(size_bytes * 8 / self._rate[slot] * 1e9)
        self._next_free[slot] = release if release < _I64_MAX else _I64_MAX
        return send_at

    def touch(self, flow_id: int, rate_bps: float, size_bytes: int, now_ns: int) -> int:
        """Fused per-packet path: ``stamp(slot_for(...), ...)`` in one call.

        One bound-method call and one probe replace the three-call chain,
        which is what a packet-rate loop over millions of flows actually
        pays for.  The probe duplicates :meth:`ensure`'s loop *including*
        the insert epilogue, because under churn a quarter of touches are
        creations and delegating those to ``slot_for`` would probe the
        chain twice.  The resolved slot is left in :attr:`last_slot` for
        callers with their own columns to update — the same no-tuple idiom
        as :attr:`FlowTable.created` (which this method does not maintain;
        creation is signalled by the rate write alone).  The index is
        re-read every call because a rehash replaces it.  The stamp
        arithmetic is kept textually identical to :meth:`stamp` (and
        therefore to ``ShapingTransaction.stamp``); the equivalence tests
        pin both.
        """
        index = self._index
        key = self.key
        mask = self._mask
        cell = ((flow_id * _FIB) & _MASK64) >> self._shift
        reuse = -1
        while True:
            slot = index[cell]
            if slot == _EMPTY:
                slot = -1
                break
            if slot == _TOMB:
                if reuse < 0:
                    reuse = cell
            elif key[slot] == flow_id:
                break
            cell = (cell + 1) & mask
        if slot < 0:
            slot = self._alloc_slot(flow_id)
            if reuse >= 0:
                index[reuse] = slot
                self._tombs -= 1
            else:
                index[cell] = slot
                self._fill += 1
            if self._fill * 3 >= self._cells * 2:
                self._rehash()
            self._rate[slot] = rate_bps
        self.last_slot = slot
        credit = self._credit[slot]
        next_free = self._next_free[slot]
        if credit >= size_bytes:
            self._credit[slot] = credit - size_bytes
            send_at = now_ns if now_ns > next_free else next_free
            self._next_free[slot] = send_at
            return send_at
        send_at = now_ns if now_ns > next_free else next_free
        release = send_at + int(size_bytes * 8 / self._rate[slot] * 1e9)
        self._next_free[slot] = release if release < _I64_MAX else _I64_MAX
        return send_at

    # -- handoff (migration + stealing wire format) ------------------------

    def detach(self, flow_id: int) -> Optional[ShapingTransaction]:
        """Remove the flow's pacing state, materialised as a transaction.

        Returns ``None`` when the flow holds no state here (stateless flows
        simply have nothing to hand over — same contract as popping the old
        shaper dict).
        """
        slot = self.lookup(flow_id)
        if slot < 0:
            return None
        transaction = ShapingTransaction.restore(
            f"shard{self.shard_id}-flow-{flow_id}",
            RateLimit(self._rate[slot], self._burst[slot]),
            next_free_ns=self._next_free[slot],
            credit_bytes=self._credit[slot],
        )
        self.remove(flow_id)
        return transaction

    def install(self, flow_id: int, transaction: ShapingTransaction) -> None:
        """Absorb pacing state handed over from another shard (or a lease)."""
        slot = self.ensure(flow_id)
        limit = transaction.limit
        self._rate[slot] = limit.rate_bps
        self._burst[slot] = limit.burst_bytes
        next_free = transaction.next_free_ns
        self._next_free[slot] = next_free if next_free < _I64_MAX else _I64_MAX
        self._credit[slot] = transaction.credit_bytes

    # -- queries -----------------------------------------------------------
    # lookup/remove/__contains__/__len__/items/memory_bytes are inherited.

    def next_free_at(self, slot: int) -> int:
        """``next_free_ns`` of an existing slot."""
        return self._next_free[slot]

    def next_free_ns(self, flow_id: int) -> int:
        """``next_free_ns`` of a flow (KeyError when it holds no state)."""
        slot = self.lookup(flow_id)
        if slot < 0:
            raise KeyError(flow_id)
        return self._next_free[slot]

    def live_flows(self) -> List[int]:
        """Flow ids currently holding pacing state."""
        return [flow_id for flow_id, _slot in self.items()]

    def as_dict(self) -> Dict[int, ShapingTransaction]:
        """Materialise every flow's state (debug/tests; not a hot path)."""
        result: Dict[int, ShapingTransaction] = {}
        for flow_id, _slot in list(self.items()):
            transaction = self.detach(flow_id)
            assert transaction is not None
            self.install(flow_id, transaction)
            result[flow_id] = transaction
        return result


__all__ = ["FlowStateStats", "FlowTable", "PacingTable"]
