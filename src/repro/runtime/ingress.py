"""Ingress cores: the asynchronous RX pipeline in front of the sharded runtime.

Until this module existed, ingress was free and instantaneous: the benchmark
harness called :meth:`ShardedRuntime.submit_batch` straight off the simulator
clock, so classification cost zero cycles, no core ever sat between the NIC
and the shards, and overload had nowhere to queue except the shard mailboxes.
Real multi-core schedulers put one or more *RX cores* there — kernel NAPI
pollers, BESS port-inc workers, a DPDK rx loop — and those cores are often
the first bottleneck of the end-to-end pipeline.  This module models them:

* an :class:`IngressCore` owns a bounded :class:`RxRing` the NIC fills in
  interrupt-coalesced bursts (:meth:`IngressCore.offer`), and drains it one
  batched *pull* per ingress quantum: classify each packet to its shard
  (the RSS hash, charged per packet), group, and hand each group to the
  shard's :class:`~repro.runtime.mailbox.Mailbox` in one batched push;
* every core charges its own :class:`~repro.cpu.cost_model.CostModel`
  account — ``rx_poll`` per pull, ``rx_descriptor`` + ``flow_lookup`` per
  packet, one ``lock`` per mailbox handoff — so ingress shows up as its own
  row in the runtime's bottleneck analysis and adding a second RX core
  visibly moves the modelled end-to-end throughput;
* **backpressure**: the pull stops at the first packet whose destination
  mailbox is paused (high/low watermark hysteresis) or would be pushed past
  its high watermark; the packet stays at the ring head, the ring *grows*
  to absorb the arrival stream, and the stalled core resumes on the
  mailbox's ``on_low`` edge — so with no admission policy armed, ingress
  loses nothing, ever;
* **admission control** decides what to do when absorbing is the wrong
  answer: :class:`TailDropPolicy` (ring overflow, the NIC default),
  :class:`FlowFairDropPolicy` (longest-per-flow-queue drop, so one
  unresponsive elephant cannot starve the mice), and :class:`CoDelPolicy`
  (sojourn-time head dropping, which bounds *latency* under sustained
  overload instead of bounding occupancy).

Flows are assigned to ingress cores by an RSS-style hash with its own seed
(:meth:`FlowSharder.for_ingress <repro.runtime.sharder.FlowSharder.for_ingress>`),
so one flow always traverses one ring — per-flow FIFO composes: NIC order is
ring order is mailbox order is shard order, the same residency argument the
runtime already makes for the mailbox-to-queue leg.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .mailbox import Mailbox
from .observability import LogHistogram
from ..core.model.packet import Packet
from ..core.queues.base import CounterStatsMixin
from ..cpu import CostModel


@dataclass(slots=True)
class IngressStats(CounterStatsMixin):
    """Counters kept by one ingress core.

    ``rx_packets`` counts arrivals admitted to the ring; ``rx_dropped``
    counts every packet lost at the RX stage — admission-policy drops
    (arrival- and head-drops alike) and, with ``backpressure=False`` and no
    policy armed, bare ring overflow (the hardware tail-drop an unattended
    ring performs on its own);
    ``classified`` counts packets hashed and grouped during pulls;
    ``delivered`` counts packets accepted by shard mailboxes (equal to
    ``classified`` unless a mailbox overflowed, which backpressure is there
    to prevent).  ``stalled_ticks``/``stall_cycles`` account the pulls cut
    short by a paused destination — the backpressure pressure gauge.  Ring
    waits live in :attr:`IngressCore.sojourn_hist`, the per-core
    :class:`~repro.runtime.observability.LogHistogram` of delivered packets'
    sojourns — the one source of truth for both the mean and the tails.
    """

    rx_bursts: int = 0
    rx_packets: int = 0
    rx_dropped: int = 0
    ring_grown: int = 0
    classified: int = 0
    delivered: int = 0
    ticks: int = 0
    idle_ticks: int = 0
    stalled_ticks: int = 0
    stall_cycles: float = 0.0


class RxRing:
    """The NIC-facing receive ring of one ingress core.

    A bounded FIFO of ``(arrival_ns, packet)`` pairs with the two pieces of
    bookkeeping the admission policies need: per-flow occupancy counts (for
    longest-queue drop) and arrival timestamps at the head (for sojourn-time
    drop).  ``capacity`` is *nominal*: the ring itself never refuses a push —
    whether to exceed capacity (backpressure growth) or drop (admission) is
    the ingress core's decision, so the mechanics live here and the policy
    stays pluggable.
    """

    __slots__ = ("capacity", "peak", "_items", "_flow_counts")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.peak = 0
        self._items: Deque[Tuple[int, Packet]] = deque()
        self._flow_counts: Dict[int, int] = {}

    def push(self, arrival_ns: int, packet: Packet) -> None:
        """Append one arrival (unconditionally; admission decided upstream)."""
        self._items.append((arrival_ns, packet))
        counts = self._flow_counts
        counts[packet.flow_id] = counts.get(packet.flow_id, 0) + 1
        if len(self._items) > self.peak:
            self.peak = len(self._items)

    def _forget(self, flow_id: int) -> None:
        count = self._flow_counts[flow_id] - 1
        if count:
            self._flow_counts[flow_id] = count
        else:
            del self._flow_counts[flow_id]

    def head(self) -> Tuple[int, Packet]:
        """The oldest resident ``(arrival_ns, packet)`` pair."""
        return self._items[0]

    def pop(self) -> Tuple[int, Packet]:
        """Remove and return the oldest resident pair."""
        arrival_ns, packet = self._items.popleft()
        self._forget(packet.flow_id)
        return arrival_ns, packet

    def flow_count(self, flow_id: int) -> int:
        """Resident packets of ``flow_id``."""
        return self._flow_counts.get(flow_id, 0)

    def fattest_flow(self) -> Optional[int]:
        """The flow with the most resident packets (``None`` when empty)."""
        if not self._flow_counts:
            return None
        return max(self._flow_counts, key=self._flow_counts.__getitem__)

    def drop_newest(self, flow_id: int) -> Optional[Packet]:
        """Remove the *newest* resident packet of ``flow_id``.

        Dropping from the tail of the victim flow keeps every surviving
        packet's relative order untouched (removing an interior element
        never reorders a FIFO), which is why longest-queue drop composes
        with the per-flow FIFO contract.  O(ring) scan from the tail; drops
        are the rare path by construction.
        """
        items = self._items
        for index in range(len(items) - 1, -1, -1):
            if items[index][1].flow_id == flow_id:
                _arrival, packet = items[index]
                del items[index]
                self._forget(flow_id)
                return packet
        return None

    @property
    def over_capacity(self) -> bool:
        """True while occupancy exceeds the nominal capacity."""
        return len(self._items) > self.capacity

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """True when no arrivals await classification."""
        return not self._items


class AdmissionPolicy(abc.ABC):
    """Decides which packets an overloaded ingress core gives up on.

    Two hooks, both optional to override:

    * :meth:`on_arrival` runs as the NIC offers a packet (before the ring
      push): return False to drop the arrival, and/or evict a resident
      packet via the ring surface and return it as the second element.
    * :meth:`on_head` runs as the pull loop reaches a packet at the ring
      head: return True to drop it instead of classifying it (the CoDel
      shape — the decision needs the *sojourn*, which only exists at
      dequeue time).

    Policies are per-core (each ingress core gets its own instance via the
    runtime's ``admission=`` factory), so state like CoDel's drop clock
    never leaks across cores.
    """

    name: str = "admission"

    def on_arrival(
        self, ring: RxRing, packet: Packet, now_ns: int
    ) -> Tuple[bool, Optional[Packet]]:
        """``(admit, evicted)`` decision for one arriving packet."""
        return True, None

    def on_head(self, ring: RxRing, sojourn_ns: int, now_ns: int) -> bool:
        """True to drop the packet currently at the ring head."""
        return False


class TailDropPolicy(AdmissionPolicy):
    """Ring overflow: arrivals beyond nominal capacity are dropped.

    Exactly what a hardware RX ring does when the host cannot keep up — the
    baseline every smarter policy is measured against.
    """

    name = "tail_drop"

    def on_arrival(
        self, ring: RxRing, packet: Packet, now_ns: int
    ) -> Tuple[bool, Optional[Packet]]:
        if len(ring) >= ring.capacity:
            return False, None
        return True, None


class FlowFairDropPolicy(AdmissionPolicy):
    """Longest-queue drop: the fattest flow in the ring pays for overflow.

    When the ring is full, the arrival is admitted by evicting the *newest*
    resident packet of the flow holding the most ring space — unless the
    arriving flow is itself the fattest, in which case the arrival is the
    drop.  Under overload this converges to a max-min-fair share of ring
    occupancy (the classic longest-queue-drop result): an unresponsive
    elephant flow absorbs the loss instead of starving the mice, which
    tail-drop lets it do.
    """

    name = "fair_drop"

    def on_arrival(
        self, ring: RxRing, packet: Packet, now_ns: int
    ) -> Tuple[bool, Optional[Packet]]:
        if len(ring) < ring.capacity:
            return True, None
        fattest = ring.fattest_flow()
        if fattest is None or ring.flow_count(packet.flow_id) + 1 >= ring.flow_count(fattest):
            # The arrival's flow would be (or ties) the longest queue: it is
            # its own victim — admitting by evicting a smaller flow would
            # invert the fairness goal.
            return False, None
        evicted = ring.drop_newest(fattest)
        return True, evicted


class CoDelPolicy(AdmissionPolicy):
    """CoDel-style sojourn-time dropper: bound *latency*, not occupancy.

    Arrivals are always admitted (the ring absorbs bursts); the drop
    decision happens as packets surface at the head, where their sojourn
    time is known.  The control law is CoDel's: once the sojourn has stayed
    above ``target_ns`` for a full ``interval_ns``, enter the dropping
    state and drop at head with the next drop scheduled ``interval /
    sqrt(count)`` later, so the drop rate ramps until sojourn dips back
    under target.  Good queues (bursts that drain within an interval) are
    never touched — the property that makes CoDel safe to leave armed.
    """

    name = "codel"

    def __init__(self, target_ns: int = 1_000_000, interval_ns: int = 10_000_000) -> None:
        if target_ns <= 0 or interval_ns <= 0:
            raise ValueError("target_ns and interval_ns must be positive")
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self._first_above_ns: Optional[int] = None
        self._dropping = False
        self._drop_next_ns = 0
        self._count = 0

    def _control_law(self, reference_ns: int) -> int:
        return reference_ns + int(self.interval_ns / max(1, self._count) ** 0.5)

    def on_head(self, ring: RxRing, sojourn_ns: int, now_ns: int) -> bool:
        if sojourn_ns < self.target_ns:
            # Below target: leave the dropping state and forget the episode.
            self._first_above_ns = None
            self._dropping = False
            return False
        if self._first_above_ns is None:
            self._first_above_ns = now_ns + self.interval_ns
            return False
        if not self._dropping:
            if now_ns < self._first_above_ns:
                return False
            # Sojourn stayed above target for a whole interval: start
            # dropping.  Resume near the previous drop rate when the last
            # episode was recent (CoDel's count hysteresis, simplified to a
            # halving restart).
            self._dropping = True
            self._count = max(1, self._count // 2)
            self._drop_next_ns = self._control_law(now_ns)
            return True
        if now_ns >= self._drop_next_ns:
            self._count += 1
            self._drop_next_ns = self._control_law(self._drop_next_ns)
            return True
        return False


#: Builds one admission-policy instance per ingress core.
AdmissionFactory = Callable[[], AdmissionPolicy]

_ADMISSION_NAMES: Dict[str, AdmissionFactory] = {
    "tail_drop": TailDropPolicy,
    "fair_drop": FlowFairDropPolicy,
    "codel": CoDelPolicy,
}


def make_admission_factory(
    admission: "str | AdmissionFactory | None",
) -> Optional[AdmissionFactory]:
    """Normalise an ``admission=`` argument into a per-core policy factory.

    Accepts ``None`` (backpressure only), one of the registered names
    (``"tail_drop"``, ``"fair_drop"``, ``"codel"``), or any zero-argument
    callable returning an :class:`AdmissionPolicy`.
    """
    if admission is None:
        return None
    if isinstance(admission, str):
        try:
            return _ADMISSION_NAMES[admission]
        except KeyError as exc:
            raise ValueError(
                f"unknown admission policy {admission!r}; "
                f"choose from {sorted(_ADMISSION_NAMES)}"
            ) from exc
    return admission


class IngressCore:
    """One RX core: a bounded ring drained by batched classify + handoff.

    Args:
        core_id: index of this core among the runtime's ingress cores.
        ring_capacity: nominal RX ring size (admission policies enforce it;
            pure backpressure grows past it, counting ``ring_grown``).
        pull_batch: largest number of packets one pull classifies — the
            NAPI budget of the poll loop.
        admission: optional :class:`AdmissionPolicy` instance for this core.
        backpressure: honour mailbox watermarks (pause the pull, grow the
            ring) — when False and no admission policy is armed, the ring
            tail-drops at nominal capacity like bare hardware.
    """

    __slots__ = (
        "core_id",
        "ring",
        "pull_batch",
        "admission",
        "backpressure",
        "cost",
        "stats",
        "stalled",
        "sojourn_hist",
    )

    def __init__(
        self,
        core_id: int,
        ring_capacity: int = 512,
        pull_batch: int = 64,
        admission: Optional[AdmissionPolicy] = None,
        backpressure: bool = True,
    ) -> None:
        if pull_batch <= 0:
            raise ValueError("pull_batch must be positive")
        self.core_id = core_id
        self.ring = RxRing(ring_capacity)
        self.pull_batch = pull_batch
        self.admission = admission
        self.backpressure = backpressure
        self.cost = CostModel()
        self.stats = IngressStats()
        #: True while the last pull stopped on a paused mailbox; the runtime
        #: uses it to wake exactly the stalled cores on the ``on_low`` edge.
        self.stalled = False
        #: Ring sojourn of every *delivered* packet — bounded memory where
        #: the old raw-sample list grew per packet, and the single source of
        #: truth for both the mean and the tail quantiles.
        self.sojourn_hist = LogHistogram()

    # -- the NIC side ------------------------------------------------------

    def offer(self, packets: List[Packet], now_ns: int) -> int:
        """One interrupt-coalesced RX burst; returns packets admitted.

        Admission runs per packet (``admission_check`` cycles each when a
        policy is armed — the occupancy/state compare a software dropper
        pays); the DMA write itself costs the core nothing, which is why the
        per-packet ``rx_descriptor`` charge lands at pull time instead.
        """
        stats = self.stats
        stats.rx_bursts += 1
        policy = self.admission
        ring = self.ring
        admitted = 0
        if policy is None:
            if not self.backpressure:
                room = max(0, ring.capacity - len(ring))
                if room < len(packets):
                    stats.rx_dropped += len(packets) - room
                    packets = packets[:room]
            grown = 0
            for packet in packets:
                ring.push(now_ns, packet)
                if ring.over_capacity:
                    grown += 1
            admitted = len(packets)
            stats.ring_grown += grown
        else:
            self.cost.charge("admission_check", len(packets))
            for packet in packets:
                admit, evicted = policy.on_arrival(ring, packet, now_ns)
                if evicted is not None:
                    stats.rx_dropped += 1
                if not admit:
                    stats.rx_dropped += 1
                    continue
                ring.push(now_ns, packet)
                if ring.over_capacity:
                    stats.ring_grown += 1
                admitted += 1
        stats.rx_packets += admitted
        return admitted

    # -- the pull loop -----------------------------------------------------

    def pull(
        self,
        now_ns: int,
        route: Callable[[int], int],
        mailboxes: List[Mailbox],
        deliver: Callable[[int, List[Packet]], int],
    ) -> int:
        """One ingress quantum: classify up to ``pull_batch`` head packets.

        ``route`` maps a flow id to its shard (the runtime passes its
        residency-aware router, so in-flight flows keep following their
        packets); ``deliver`` pushes one per-shard group and returns how
        many the mailbox accepted.  The loop stops early — leaving the
        blocking packet at the ring head — when a destination mailbox is
        paused or one more packet would push it to its high watermark /
        capacity; per-flow FIFO is safe because the *whole ring* waits, not
        just the blocked flow.

        Returns the number of packets delivered downstream.
        """
        stats = self.stats
        stats.ticks += 1
        cost = self.cost
        cost.charge("rx_poll")
        ring = self.ring
        if ring.empty:
            stats.idle_ticks += 1
            self.stalled = False
            return 0
        policy = self.admission
        backpressure = self.backpressure
        groups: Dict[int, List[Packet]] = {}
        sojourn_by_shard: Dict[int, List[int]] = {}
        taken = 0
        head_drops = 0
        blocked = False
        while not ring.empty and taken < self.pull_batch:
            arrival_ns, packet = ring.head()
            if policy is not None and policy.on_head(ring, now_ns - arrival_ns, now_ns):
                ring.pop()
                cost.charge("rx_descriptor")
                cost.charge("admission_check")
                stats.rx_dropped += 1
                head_drops += 1
                continue
            shard = route(packet.flow_id)
            group = groups.get(shard)
            pending = 0 if group is None else len(group)
            mailbox = mailboxes[shard]
            if backpressure:
                limit = mailbox.high_watermark
                if limit is None:
                    limit = mailbox.capacity
                if mailbox.paused or (
                    limit is not None and len(mailbox) + pending + 1 > limit
                ):
                    # One more packet would cross the destination's high
                    # watermark: stop the pull here.  Delivering the group
                    # below lands occupancy exactly *at* the watermark, so
                    # the mailbox pauses and its on_low edge wakes us.
                    blocked = True
                    break
            ring.pop()
            cost.charge("rx_descriptor")
            cost.charge("flow_lookup")
            if group is None:
                groups[shard] = [packet]
                sojourn_by_shard[shard] = [now_ns - arrival_ns]
            else:
                group.append(packet)
                sojourn_by_shard[shard].append(now_ns - arrival_ns)
            taken += 1
        delivered = 0
        record_sojourn = self.sojourn_hist.record
        for shard, group in groups.items():
            cost.charge("lock")  # the cross-core mailbox handoff
            accepted = deliver(shard, group)
            delivered += accepted
            for sojourn_ns in sojourn_by_shard[shard][:accepted]:
                record_sojourn(sojourn_ns)
        stats.classified += taken
        stats.delivered += delivered
        self.stalled = blocked
        if blocked:
            stats.stalled_ticks += 1
            stats.stall_cycles += cost.cost_of("rx_poll")
        if taken == 0 and head_drops == 0 and not blocked:
            stats.idle_ticks += 1
        return delivered

    def next_wake_ns(self, now_ns: int, quantum_ns: int) -> Optional[int]:
        """When this core's next pull should fire (``None`` = go idle).

        The pure tick-timer policy, mirroring
        :meth:`ShardWorker.next_wake_ns
        <repro.runtime.worker.ShardWorker.next_wake_ns>`: an empty ring
        means the next ``offer`` wakes the core; a loaded (or blocked) ring
        polls again one ingress quantum out — for a stalled core that is
        the liveness belt behind the mailbox ``on_low`` resume edge.
        """
        if self.ring.empty:
            return None
        return now_ns + quantum_ns

    # -- introspection -----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Packets resident in this core's RX ring."""
        return len(self.ring)


@dataclass
class IngressTelemetry:
    """Telemetry of one ingress core, as collected by the runtime."""

    core_id: int
    stats: IngressStats
    cycles: float
    ring_backlog: int
    ring_peak: int
    sojourn: LogHistogram

    @property
    def mean_sojourn_ns(self) -> float:
        """Mean RX-ring wait of delivered packets (0 when none delivered).

        Read from the sojourn histogram — the same samples the quantiles
        come from, so the mean can no longer drift out of sync with the
        recorded sojourns when admission drops packets at the ring head.
        """
        return self.sojourn.mean

    def as_dict(self) -> dict:
        """JSON-friendly snapshot."""
        payload = self.stats.as_dict()
        payload.update(
            core_id=self.core_id,
            cycles=self.cycles,
            ring_backlog=self.ring_backlog,
            ring_peak=self.ring_peak,
            mean_sojourn_ns=self.mean_sojourn_ns,
            sojourn=self.sojourn.as_dict(),
        )
        return payload


__all__ = [
    "AdmissionFactory",
    "AdmissionPolicy",
    "CoDelPolicy",
    "FlowFairDropPolicy",
    "IngressCore",
    "IngressStats",
    "IngressTelemetry",
    "RxRing",
    "TailDropPolicy",
    "make_admission_factory",
]
