"""Figure 18: average priority-selection error of the approximate queue.

The approximate gradient queue may select a non-extremal bucket when buckets
are empty between the estimate and the true extremum; the error grows as the
fraction of non-empty buckets falls.  This harness measures the mean
|selected - true| bucket distance across a drain of the queue at several
occupancy levels, for both 5k and 10k configured buckets (bucket counts are
fitted to the approximate queue's capacity by coarsening granularity, exactly
as an operator would configure it).
"""

import random

from conftest import report

from repro.analysis import Table, format_table
from repro.core.queues import ApproximateGradientQueue
from repro.core.queues.gradient import fit_bucket_spec

OCCUPANCY = [0.7, 0.8, 0.9, 0.99]
BUCKET_COUNTS = [5000, 10000]


def measure_error(num_buckets: int, occupancy: float, seed: int = 17) -> float:
    rng = random.Random(seed)
    spec = fit_bucket_spec(num_buckets, alpha=16)
    queue = ApproximateGradientQueue(spec, alpha=16, track_errors=True)
    levels = spec.num_buckets
    occupied = rng.sample(range(levels), max(1, int(levels * occupancy)))
    for bucket in occupied:
        queue.enqueue(bucket * spec.granularity, bucket)
    while not queue.empty:
        queue.extract_min()
    return queue.average_selection_error


def run_sweep():
    results = {}
    for num_buckets in BUCKET_COUNTS:
        for occupancy in OCCUPANCY:
            results[(num_buckets, occupancy)] = measure_error(num_buckets, occupancy)
    return results


def test_fig18_selection_error(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = Table(
        title="Average error (buckets) in priority selection of the approximate queue",
        columns=["occupancy", "5k buckets", "10k buckets"],
    )
    for occupancy in OCCUPANCY:
        table.add_row(
            occupancy,
            round(results[(5000, occupancy)], 2),
            round(results[(10000, occupancy)], 2),
        )
    report("Figure 18 — approximate queue selection error", format_table(table))
    benchmark.extra_info["avg_error"] = {
        f"{buckets}/{occ}": round(err, 3) for (buckets, occ), err in results.items()
    }
    # Shape: error shrinks as occupancy approaches 1 and stays within a few
    # tens of buckets (the paper reports 0-14 buckets for its configuration;
    # the fitted granularity here differs, so the absolute bound is looser).
    for buckets in BUCKET_COUNTS:
        assert results[(buckets, 0.99)] <= results[(buckets, 0.7)]
        assert results[(buckets, 0.7)] < 60
        assert results[(buckets, 0.99)] < 5
