"""Unit tests for the hierarchical FFS bitmap tree and queue."""

import random

import pytest

from repro.core.queues import BucketSpec, EmptyQueueError, PriorityOutOfRangeError
from repro.core.queues.hierarchical_ffs import FFSBitmapTree, HierarchicalFFSQueue


class TestFFSBitmapTree:
    def test_depth_for_small_tree(self):
        assert FFSBitmapTree(64, word_width=64).depth == 1
        assert FFSBitmapTree(65, word_width=64).depth == 2
        assert FFSBitmapTree(64 * 64 + 1, word_width=64).depth == 3

    def test_depth_covers_billion_buckets_in_few_levels(self):
        # The paper: "a queue with a billion buckets will require six bit
        # operations to find the minimum non-empty bucket using a cFFS".
        # ceil(log64(1e9)) is 5; the paper's six is a conservative round-up.
        assert FFSBitmapTree(10**9, word_width=64).depth <= 6

    def test_set_and_first(self):
        tree = FFSBitmapTree(1000, word_width=8)
        tree.set(733)
        tree.set(12)
        bucket, _scanned = tree.first_set()
        assert bucket == 12

    def test_clear_propagates(self):
        tree = FFSBitmapTree(1000, word_width=8)
        tree.set(500)
        tree.clear(500)
        assert not tree.any
        with pytest.raises(EmptyQueueError):
            tree.first_set()

    def test_clear_keeps_other_buckets(self):
        tree = FFSBitmapTree(256, word_width=4)
        tree.set(10)
        tree.set(200)
        tree.clear(10)
        bucket, _ = tree.first_set()
        assert bucket == 200

    def test_test_reports_leaf_state(self):
        tree = FFSBitmapTree(128, word_width=8)
        tree.set(99)
        assert tree.test(99)
        assert not tree.test(98)

    def test_out_of_range(self):
        tree = FFSBitmapTree(16, word_width=4)
        with pytest.raises(IndexError):
            tree.set(16)

    def test_word_width_validation(self):
        with pytest.raises(ValueError):
            FFSBitmapTree(16, word_width=1)
        with pytest.raises(ValueError):
            FFSBitmapTree(0)

    def test_random_first_set_matches_reference(self):
        rng = random.Random(3)
        tree = FFSBitmapTree(5000, word_width=16)
        reference: set[int] = set()
        for _ in range(2000):
            bucket = rng.randrange(5000)
            if bucket in reference:
                tree.clear(bucket)
                reference.discard(bucket)
            else:
                tree.set(bucket)
                reference.add(bucket)
            if reference:
                assert tree.first_set()[0] == min(reference)
            else:
                assert not tree.any


class TestHierarchicalFFSQueue:
    def test_sorted_drain(self):
        rng = random.Random(11)
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=10_000))
        priorities = [rng.randrange(10_000) for _ in range(5000)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_depth_constant_regardless_of_elements(self):
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=100_000), word_width=64)
        assert queue.depth == 3

    def test_out_of_range(self):
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=100))
        with pytest.raises(PriorityOutOfRangeError):
            queue.enqueue(100, "x")

    def test_remove_specific_item(self):
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=100))
        token = object()
        other = object()
        queue.enqueue(10, token)
        queue.enqueue(10, other)
        queue.enqueue(20, "later")
        assert queue.remove(10, token)
        assert len(queue) == 2
        assert queue.extract_min() == (10, other)

    def test_remove_missing_returns_false(self):
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=100))
        queue.enqueue(10, "a")
        assert not queue.remove(10, "b")
        assert not queue.remove(999, "a")
        assert len(queue) == 1

    def test_remove_clears_bitmap(self):
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=100))
        token = object()
        queue.enqueue(50, token)
        queue.enqueue(70, "other")
        queue.remove(50, token)
        assert queue.peek_min() == (70, "other")

    def test_base_priority_offset(self):
        queue = HierarchicalFFSQueue(
            BucketSpec(num_buckets=100, granularity=2, base_priority=1000)
        )
        queue.enqueue(1100, "mid")
        queue.enqueue(1001, "early")
        assert queue.extract_min() == (1001, "early")

    def test_empty_raises(self):
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=10))
        with pytest.raises(EmptyQueueError):
            queue.extract_min()

    def test_min_priority_helper(self):
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=10))
        assert queue.min_priority() is None
        queue.enqueue(7, "x")
        assert queue.min_priority() == 7
