"""A minimal hrtimer-like timer subsystem for the qdisc simulation.

Qdiscs that shape traffic cannot rely on incoming packets to trigger
transmission: they must program a timer for the next packet's release time
(or, in Carousel's case, fire periodically every timing-wheel slot).  The
timer subsystem here mirrors that interface: a qdisc programs an absolute
expiry time, the simulation loop fires the timer when the clock reaches it,
and both the programming and the firing are charged to the CPU cost model —
the difference in *how often* each qdisc needs its timer is exactly what
Figure 10's softirq panel measures.
"""

from __future__ import annotations

from typing import Optional


class HrTimer:
    """One programmable one-shot timer (absolute expiry, nanoseconds)."""

    def __init__(self, granularity_ns: int = 1) -> None:
        if granularity_ns <= 0:
            raise ValueError("granularity_ns must be positive")
        self.granularity_ns = granularity_ns
        self._expiry_ns: Optional[int] = None
        #: Counters consumed by the CPU cost model.
        self.programs = 0
        self.fires = 0
        self.cancellations = 0

    @property
    def armed(self) -> bool:
        """True when an expiry is programmed."""
        return self._expiry_ns is not None

    @property
    def expiry_ns(self) -> Optional[int]:
        """Programmed expiry, or ``None`` when disarmed."""
        return self._expiry_ns

    def program(self, expiry_ns: int) -> None:
        """Arm (or re-arm) the timer for ``expiry_ns``.

        Expiries are rounded up to the timer granularity, mirroring hrtimer
        slack: a 1 ns granularity is effectively exact, a coarse granularity
        models a periodic tick.
        """
        remainder = expiry_ns % self.granularity_ns
        if remainder:
            expiry_ns += self.granularity_ns - remainder
        if self._expiry_ns != expiry_ns:
            self.programs += 1
        self._expiry_ns = expiry_ns

    def cancel(self) -> None:
        """Disarm the timer."""
        if self._expiry_ns is not None:
            self.cancellations += 1
        self._expiry_ns = None

    def due(self, now_ns: int) -> bool:
        """True when the timer is armed and its expiry has passed."""
        return self._expiry_ns is not None and self._expiry_ns <= now_ns

    def fire(self) -> int:
        """Consume the expiry (the simulation calls the qdisc's handler)."""
        if self._expiry_ns is None:
            raise RuntimeError("firing a disarmed timer")
        expiry = self._expiry_ns
        self._expiry_ns = None
        self.fires += 1
        return expiry


__all__ = ["HrTimer"]
