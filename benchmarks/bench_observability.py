"""Observability-plane benchmark — zero modelled cost, bounded wall cost.

The observability plane's contract has two halves and this harness measures
both on a skewed (Zipf) four-shard workload with stealing and RX cores —
the configuration where every instrumented seam actually fires:

* **Modelled cost: exactly zero.**  The instruments observe the cost model,
  they never participate in it, so arming the full plane (per-seam latency
  histograms + flight recorder + metrics timeline) must leave every cycle
  account byte-identical to the disarmed run.  The harness asserts that
  directly, and re-asserts the committed hot-path guard
  (``BENCH_hotpath.json`` smoke cycles) *with the plane armed* — the same
  workload, the same committed numbers, instruments on.

* **Wall cost: recorded and bounded.**  Arming is not free in real time —
  every armed seam is one extra branch plus a histogram increment or ring
  append.  The harness records armed-vs-disarmed wall-clock on the same
  workload; the committed artifact must show the full plane under 2x.

The artifact (``BENCH_observability.json``) also records what the plane
*saw*: per-seam p50/p99/p999 for the Zipf workload, trace-event counts per
track, and the timeline sample count — the numbers a reader checks before
trusting a latency claim from this repo.  Run standalone
(``python benchmarks/bench_observability.py``) to regenerate at full size;
the pytest entry point runs smoke-sized and asserts the contracts.
"""

import json
import os
import random
import time
from pathlib import Path

from conftest import report

import bench_hotpath
from repro.core.model.packet import Packet
from repro.runtime import FlightRecorder, MetricsTimeline, ShardedRuntime

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"
HOTPATH_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

SEED = 20_190_226  # NSDI'19

NUM_SHARDS = 4
NUM_FLOWS = 64
ZIPF_SKEW = 1.1
RATE_BPS = 1e9
PACKET_BYTES = 1500
QUANTUM_NS = 50_000
INGRESS_CORES = 2
#: Each burst overfills one RX pull (rx_burst = 64), so the ring actually
#: queues and the rx_sojourn seam has a real distribution to record.
BURST = 256
BURST_GAP_NS = 200_000
TIMELINE_INTERVAL_NS = 100_000

FULL_PACKETS = 8_000
SMOKE_PACKETS = 1_200
WALL_CLOCK_ROUNDS = 3

SEAMS = ("rx_sojourn", "mailbox_wait", "queue_sojourn", "e2e")


def _zipf_flow_ids(num_packets: int) -> list:
    """Seeded Zipf(``ZIPF_SKEW``) flow ids: a few hot flows, a long tail."""
    rng = random.Random(SEED)
    weights = [1.0 / (rank + 1) ** ZIPF_SKEW for rank in range(NUM_FLOWS)]
    return rng.choices(range(NUM_FLOWS), weights=weights, k=num_packets)


def _drive_once(flow_ids: list, armed: bool):
    """One paced, skewed run; returns (runtime, tracer, timeline, wall_sec)."""
    tracer = FlightRecorder() if armed else None
    timeline = MetricsTimeline(interval_ns=TIMELINE_INTERVAL_NS) if armed else None
    runtime = ShardedRuntime(
        NUM_SHARDS,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        steal_enabled=True,
        steal_min_backlog=4,
        ingress_cores=INGRESS_CORES,
        record_transmits=False,
        latency_histograms=armed,
        tracer=tracer,
        metrics_timeline=timeline,
    )
    for index in range(0, len(flow_ids), BURST):
        chunk = flow_ids[index : index + BURST]
        runtime.submit_at(
            (index // BURST) * BURST_GAP_NS,
            [Packet(flow_id=flow_id, size_bytes=PACKET_BYTES) for flow_id in chunk],
        )
    start = time.perf_counter()
    runtime.run()
    return runtime, tracer, timeline, time.perf_counter() - start


def _cycle_accounts(runtime) -> dict:
    telemetry = runtime.telemetry()
    return {
        "total_cycles": telemetry.total_cycles,
        "max_shard_cycles": telemetry.max_shard_cycles,
        "max_ingress_cycles": telemetry.max_ingress_cycles,
        "steal_cycles": telemetry.steal_cycles,
        "transmitted": telemetry.transmitted,
    }


def _seam_rows(runtime) -> dict:
    latency = runtime.telemetry().latency
    return {seam: latency[seam].as_dict() for seam in SEAMS}


def run_observability_bench(
    num_packets: int = FULL_PACKETS, rounds: int = WALL_CLOCK_ROUNDS
) -> dict:
    """Measure both halves of the contract; assert the modelled half."""
    flow_ids = _zipf_flow_ids(num_packets)

    disarmed_wall = float("inf")
    armed_wall = float("inf")
    disarmed_cycles = armed_cycles = None
    armed_run = None
    for _ in range(max(1, rounds)):
        runtime, _, _, wall = _drive_once(flow_ids, armed=False)
        disarmed_wall = min(disarmed_wall, wall)
        disarmed_cycles = _cycle_accounts(runtime)
        armed_run = _drive_once(flow_ids, armed=True)
        armed_wall = min(armed_wall, armed_run[3])
        armed_cycles = _cycle_accounts(armed_run[0])
    runtime, tracer, timeline, _ = armed_run

    # Half one of the contract, asserted at both sizes on every run: the
    # instruments never touch a cycle account.
    assert armed_cycles == disarmed_cycles, (
        f"arming the observability plane changed modelled accounts: "
        f"{disarmed_cycles} -> {armed_cycles}"
    )

    trace = tracer.to_chrome_trace()
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert all("ph" in event for event in trace["traceEvents"])

    return {
        "benchmark": "observability_plane",
        "description": (
            "Armed-vs-disarmed cost of the observability plane on a paced "
            "Zipf workload (4 shards, stealing, 2 RX cores): modelled cycle "
            "accounts must be byte-identical (asserted), wall-clock overhead "
            "is recorded and the committed artifact must stay under 2x.  "
            "Per-seam latency quantiles, trace-event counts per track, and "
            "the timeline sample count document what the armed plane saw."
        ),
        "workload": {
            "num_packets": num_packets,
            "num_flows": NUM_FLOWS,
            "zipf_skew": ZIPF_SKEW,
            "num_shards": NUM_SHARDS,
            "ingress_cores": INGRESS_CORES,
            "flow_rate_bps": RATE_BPS,
            "packet_bytes": PACKET_BYTES,
            "quantum_ns": QUANTUM_NS,
            "burst": BURST,
            "burst_gap_ns": BURST_GAP_NS,
            "seed": SEED,
            "smoke_packets": SMOKE_PACKETS,
            "wall_clock_rounds": rounds,
        },
        "host": {"cpu_count": os.cpu_count(), "ci": bool(os.environ.get("CI"))},
        "modelled": {
            "disarmed": disarmed_cycles,
            "armed": armed_cycles,
            "identical": armed_cycles == disarmed_cycles,
        },
        "wall": {
            "disarmed_best_sec": disarmed_wall,
            "armed_best_sec": armed_wall,
            "armed_overhead_x": armed_wall / max(disarmed_wall, 1e-9),
        },
        "latency_ns": _seam_rows(runtime),
        "trace": {
            "recorded": tracer.recorded,
            "retained": len(tracer),
            "dropped": tracer.dropped,
            "events_by_track": tracer.counts_by_track(),
        },
        "timeline": {
            "interval_ns": timeline.interval_ns,
            "samples": len(timeline),
        },
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_observability.json`` (the observability artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_results(results: dict) -> str:
    lines = [f"{'seam':<16}{'count':<9}{'p50 ns':<12}{'p99 ns':<12}{'p999 ns':<12}"]
    for seam in SEAMS:
        row = results["latency_ns"][seam]
        lines.append(
            f"{seam:<16}{row['count']:<9}{row['p50_ns']:<12}"
            f"{row['p99_ns']:<12}{row['p999_ns']:<12}"
        )
    wall = results["wall"]
    trace = results["trace"]
    lines.append("")
    lines.append(
        f"modelled accounts identical: {results['modelled']['identical']}   "
        f"armed wall overhead: {wall['armed_overhead_x']:.2f}x"
    )
    lines.append(
        f"trace: {trace['retained']} events retained "
        f"({trace['dropped']} dropped) across {len(trace['events_by_track'])} "
        f"tracks; timeline: {results['timeline']['samples']} samples"
    )
    return "\n".join(lines)


# -- pytest entry point -------------------------------------------------------


def test_observability_contracts(benchmark, tmp_path):
    """Arming must cost zero modelled cycles — here and on the hot path.

    Wall-clock overhead is recorded (and bounded in the committed full-size
    artifact) but never asserted live: shared CI runners are too noisy for a
    non-flaky wall gate.
    """
    results = benchmark.pedantic(
        run_observability_bench,
        kwargs={"num_packets": SMOKE_PACKETS, "rounds": 1},
        rounds=1,
        iterations=1,
    )
    path = write_artifact(results, tmp_path / "BENCH_observability.json")
    report("Observability plane — cost and coverage", _format_results(results))
    benchmark.extra_info["artifact"] = str(path)
    benchmark.extra_info["armed_overhead_x"] = results["wall"]["armed_overhead_x"]

    # run_observability_bench already asserted cycle-account equality for
    # this workload; re-assert the committed hot-path guard with the plane
    # armed: same workload as bench_hotpath's smoke, instruments on, same
    # committed numbers.
    committed_hotpath = json.loads(HOTPATH_ARTIFACT.read_text())
    flow_ids = bench_hotpath._flow_sequence(bench_hotpath.SMOKE_PACKETS)
    for num_shards, expected in committed_hotpath["smoke_cycles_per_packet"].items():
        runtime = ShardedRuntime(
            int(num_shards),
            default_rate_bps=bench_hotpath.RATE_BPS,
            quantum_ns=bench_hotpath.QUANTUM_NS,
            batch_per_quantum=bench_hotpath.BATCH_PER_QUANTUM,
            record_transmits=False,
            latency_histograms=True,
            tracer=FlightRecorder(),
            metrics_timeline=MetricsTimeline(interval_ns=TIMELINE_INTERVAL_NS),
        )
        simulator = runtime.simulator
        for index in range(0, len(flow_ids), bench_hotpath.INGRESS_BURST):
            chunk = flow_ids[index : index + bench_hotpath.INGRESS_BURST]
            when_ns = (
                (index // bench_hotpath.INGRESS_BURST)
                * bench_hotpath.INGRESS_BURST_QUANTA
                * bench_hotpath.QUANTUM_NS
            )

            def offer(chunk=chunk) -> None:
                runtime.submit_batch(
                    [
                        Packet(flow_id=flow_id, size_bytes=PACKET_BYTES)
                        for flow_id in chunk
                    ]
                )

            simulator.schedule_at(when_ns, offer)
        runtime.run()
        telemetry = runtime.telemetry()
        observed = telemetry.total_cycles / telemetry.transmitted
        assert abs(observed - expected) < 1e-9, (
            f"armed observability changed modelled cycles/packet at "
            f"{num_shards} shards: {expected} (committed) -> {observed}"
        )

    # Seam coverage at smoke size: every instrument saw the workload.
    transmitted = results["modelled"]["armed"]["transmitted"]
    assert results["latency_ns"]["e2e"]["count"] == transmitted == SMOKE_PACKETS
    assert results["latency_ns"]["rx_sojourn"]["count"] == SMOKE_PACKETS
    assert results["trace"]["recorded"] > 0
    assert any(
        track.startswith("shard-") for track in results["trace"]["events_by_track"]
    )
    assert results["timeline"]["samples"] > 0

    # The committed full-size artifact must exist, hold the wall bound, and
    # stay regenerable with the same seam schema.
    committed = json.loads(ARTIFACT_PATH.read_text())
    assert committed["modelled"]["identical"] is True
    assert committed["wall"]["armed_overhead_x"] < 2.0, (
        "committed artifact shows the armed plane over the 2x wall bound; "
        "regenerate BENCH_observability.json after fixing the regression"
    )
    assert set(committed["latency_ns"]) == set(SEAMS)


if __name__ == "__main__":
    bench = run_observability_bench()
    artifact = write_artifact(bench)
    print(_format_results(bench))
    print(f"\nwrote {artifact}")
