"""Sharded multi-core scheduling runtime (the horizontal-scaling layer).

The paper's queues and shaping pipeline are single-core constructs; this
package scales them out the way production deployments do — one scheduler
instance per core, flows spread across instances by an RSS-style hash:

* :class:`~repro.runtime.sharder.FlowSharder` — flow-to-shard placement
  (hash / sticky round-robin policies, explicit pins) plus the load window
  the skew-aware :class:`~repro.runtime.sharder.ShardRebalancer` inspects to
  migrate hot flows off overloaded shards.
* :class:`~repro.runtime.mailbox.Mailbox` — the batched SPSC ingress-to-shard
  handoff.
* :class:`~repro.runtime.worker.ShardWorker` — one simulated core: a cFFS
  timestamp queue + per-flow pacing drained one batch per scheduling quantum
  through PR 1's ``enqueue_batch`` / ``extract_due`` surface.
* :class:`~repro.runtime.runtime.ShardedRuntime` — the driver multiplexing
  every shard's worker loop onto one simulator clock, with per-shard
  cycle/queue accounting rolled up into runtime telemetry.
* :class:`~repro.runtime.adapters.ShardedPortQueue` /
  :class:`~repro.runtime.adapters.MultiQueueQdisc` — multi-queue adapters
  for the netsim and kernel substrates.

``benchmarks/bench_sharding.py`` sweeps shard counts over uniform and
Zipf-skewed workloads and writes ``BENCH_sharding.json``, the scaling-axis
perf artifact.
"""

from .adapters import MultiQueueQdisc, ShardedPortQueue
from .mailbox import Mailbox, MailboxStats
from .runtime import RuntimeTelemetry, ShardTelemetry, ShardedRuntime
from .sharder import (
    DEFAULT_HASH_SEED,
    FlowSharder,
    Migration,
    ShardRebalancer,
    ShardingStats,
    rss_hash,
)
from .worker import ShardWorker, ShardWorkerStats

__all__ = [
    "DEFAULT_HASH_SEED",
    "FlowSharder",
    "Mailbox",
    "MailboxStats",
    "Migration",
    "MultiQueueQdisc",
    "RuntimeTelemetry",
    "ShardRebalancer",
    "ShardTelemetry",
    "ShardWorker",
    "ShardWorkerStats",
    "ShardedPortQueue",
    "ShardedRuntime",
    "ShardingStats",
    "rss_hash",
]
