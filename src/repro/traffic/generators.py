"""Workload generators for the three evaluation substrates.

* :class:`NeperLikeGenerator` — mimics the ``neper`` load generator used in
  Use Case 1: a large number of long-running TCP-like flows, each with a
  per-flow ``SO_MAX_PACING_RATE``, together targeting a given aggregate rate.
* :class:`RoundRobinAnnotator` + :class:`SyntheticPacketGenerator` — the BESS
  experiments of Use Cases 2 and 3: a packet generator producing batches of
  fixed-size packets spread over N traffic classes round-robin.
* :class:`FlowWorkload` — open-loop flow arrivals (Poisson) with empirical
  sizes for the network simulator (Figure 19).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from .distributions import FlowSizeDistribution, PoissonArrivals
from ..core.model.packet import Packet


@dataclass(frozen=True)
class FlowSpec:
    """Static description of one generated flow."""

    flow_id: int
    rate_bps: float
    packet_bytes: int = 1500


class NeperLikeGenerator:
    """Generates packet arrivals for N paced flows at an aggregate target rate.

    Mirrors the Use Case 1 configuration: ``num_flows`` flows (20k in the
    paper), each limited with ``SO_MAX_PACING_RATE`` so the aggregate reaches
    ``aggregate_rate_bps`` (24 Gbps in the paper).  Packets of each flow
    arrive at their flow's rate — the TCP stack upstream of the qdisc is
    modelled as saturating each flow's allowance, with TSQ keeping at most
    ``tsq_limit`` packets of a flow inside the scheduler.
    """

    def __init__(
        self,
        num_flows: int,
        aggregate_rate_bps: float,
        packet_bytes: int = 1500,
        seed: Optional[int] = None,
        jitter: float = 0.05,
        rate_jitter: float = 0.0,
    ) -> None:
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        if aggregate_rate_bps <= 0:
            raise ValueError("aggregate_rate_bps must be positive")
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if not 0.0 <= rate_jitter < 1.0:
            raise ValueError("rate_jitter must be in [0, 1)")
        self.num_flows = num_flows
        self.aggregate_rate_bps = aggregate_rate_bps
        self.packet_bytes = packet_bytes
        self.rng = random.Random(seed)
        self.jitter = jitter
        per_flow = aggregate_rate_bps / num_flows
        # Real flows never share an exact rate; a small multiplicative jitter
        # (renormalised to keep the aggregate) desynchronises their pacing
        # deadlines, which matters for closed-loop (saturated) simulations.
        factors = [
            1.0 + rate_jitter * (2.0 * self.rng.random() - 1.0)
            for _ in range(num_flows)
        ]
        scale = num_flows / sum(factors)
        self.flows = [
            FlowSpec(
                flow_id=flow_id,
                rate_bps=per_flow * factors[flow_id] * scale,
                packet_bytes=packet_bytes,
            )
            for flow_id in range(num_flows)
        ]

    def flow_rates(self) -> dict[int, float]:
        """Mapping of flow id to its pacing rate (bits/second)."""
        return {flow.flow_id: flow.rate_bps for flow in self.flows}

    def packets_for_interval(
        self, start_ns: int, duration_ns: int
    ) -> List[tuple[int, Packet]]:
        """Arrival events ``(arrival_ns, packet)`` within an interval.

        Each flow contributes ``rate * duration / packet_size`` packets spread
        evenly over the interval with small random jitter, which is how a
        saturated paced TCP flow presents packets to the qdisc.
        """
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        events: List[tuple[int, Packet]] = []
        for flow in self.flows:
            packets = flow.rate_bps * duration_ns / 1e9 / (flow.packet_bytes * 8)
            count = int(packets)
            if self.rng.random() < packets - count:
                count += 1
            if count == 0:
                continue
            spacing = duration_ns / count
            for index in range(count):
                jitter_ns = int(spacing * self.jitter * (self.rng.random() - 0.5))
                arrival = start_ns + int(index * spacing) + jitter_ns
                arrival = min(max(arrival, start_ns), start_ns + duration_ns - 1)
                packet = Packet(
                    flow_id=flow.flow_id,
                    size_bytes=flow.packet_bytes,
                    arrival_ns=arrival,
                )
                events.append((arrival, packet))
        events.sort(key=lambda item: item[0])
        return events

    def expected_packets_per_second(self) -> float:
        """Aggregate packet rate implied by the configuration."""
        return self.aggregate_rate_bps / (self.packet_bytes * 8)


class RoundRobinAnnotator:
    """Assigns packets to ``num_classes`` traffic classes round-robin.

    This is the "simple round robin annotator to distribute packets over
    traffic classes" used in the BESS experiments.
    """

    def __init__(self, num_classes: int) -> None:
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        self.num_classes = num_classes
        self._next = 0

    def annotate(self, packet: Packet) -> Packet:
        """Set the packet's flow id (traffic class) and return it."""
        packet.flow_id = self._next
        self._next = (self._next + 1) % self.num_classes
        return packet


class SyntheticPacketGenerator:
    """Produces batches of identical-size packets (the BESS packet source)."""

    def __init__(
        self,
        packet_bytes: int = 1500,
        batch_size: int = 32,
        annotator: Optional[RoundRobinAnnotator] = None,
    ) -> None:
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.packet_bytes = packet_bytes
        self.batch_size = batch_size
        self.annotator = annotator
        self.generated = 0

    def next_batch(self) -> List[Packet]:
        """One batch of packets (annotated when an annotator is configured)."""
        batch = []
        for _ in range(self.batch_size):
            packet = Packet(flow_id=0, size_bytes=self.packet_bytes)
            if self.annotator is not None:
                self.annotator.annotate(packet)
            batch.append(packet)
        self.generated += len(batch)
        return batch

    def batches(self, count: int) -> Iterator[List[Packet]]:
        """Yield ``count`` consecutive batches."""
        for _ in range(count):
            yield self.next_batch()


class OpenLoopBurstSource:
    """NIC-style RX bursts at a fixed offered packet rate (open loop).

    The ingress experiments need to hold a pipeline at a precise multiple of
    its drain capacity — "2× overload" must mean exactly 2×, or the
    backpressure and admission comparisons measure the workload instead of
    the policy.  This source emits ``burst_size`` packets every
    ``burst_size / offered_pps`` seconds, the arrival shape an
    interrupt-coalesced NIC presents to its RX core, regardless of what the
    receiver does with them (open loop: a dropped packet is not re-offered).

    Args:
        offered_pps: aggregate offered rate, packets per second.
        burst_size: packets per RX burst (interrupt coalescing depth).
        packet_bytes: size of every generated packet.
        num_flows: flow-id space; ignored when ``flow_sampler`` is given.
        flow_sampler: optional ``index -> flow_id`` map (e.g. wrap a
            :class:`~repro.traffic.distributions.ZipfFlowSampler` for a
            skewed population); defaults to round-robin over ``num_flows``.
    """

    def __init__(
        self,
        offered_pps: float,
        burst_size: int = 32,
        packet_bytes: int = 1500,
        num_flows: int = 16,
        flow_sampler: Optional[Callable[[int], int]] = None,
    ) -> None:
        if offered_pps <= 0:
            raise ValueError("offered_pps must be positive")
        if burst_size <= 0:
            raise ValueError("burst_size must be positive")
        if packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if flow_sampler is None and num_flows <= 0:
            raise ValueError("num_flows must be positive")
        self.offered_pps = offered_pps
        self.burst_size = burst_size
        self.packet_bytes = packet_bytes
        self.num_flows = num_flows
        self.flow_sampler = flow_sampler or (lambda index: index % num_flows)
        self.burst_gap_ns = max(1, int(round(burst_size * 1e9 / offered_pps)))

    def bursts(
        self, total_packets: int, start_ns: int = 0
    ) -> Iterator[tuple[int, List[Packet]]]:
        """Yield ``(offer_ns, packets)`` bursts until ``total_packets`` sent.

        The last burst is truncated rather than rounded up, so the offered
        count is exact.
        """
        if total_packets < 0:
            raise ValueError("total_packets must be non-negative")
        emitted = 0
        when_ns = start_ns
        sampler = self.flow_sampler
        while emitted < total_packets:
            count = min(self.burst_size, total_packets - emitted)
            burst = [
                Packet(
                    flow_id=sampler(emitted + offset),
                    size_bytes=self.packet_bytes,
                    arrival_ns=when_ns,
                )
                for offset in range(count)
            ]
            yield when_ns, burst
            emitted += count
            when_ns += self.burst_gap_ns


@dataclass
class FlowArrival:
    """One flow arrival for the network simulator."""

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    arrival_ns: int


class FlowWorkload:
    """Open-loop flow arrivals over a set of hosts (the Figure 19 workload).

    Flows arrive as a Poisson process at a rate chosen to hit ``target_load``
    of the edge-link capacity; sizes come from the named empirical
    distribution; sources and destinations are picked uniformly among
    distinct hosts.

    Seeding contract (three independent random streams feed the workload —
    flow sizes, inter-arrival gaps, and src/dst picks):

    * ``seed=<int>`` — every stream is derived deterministically from the
      seed (``seed``, ``seed + 1``, ``seed + 2``); two workloads built with
      the same arguments generate identical flows, run after run.
    * ``rng=<random.Random>`` — the sub-stream seeds are drawn from ``rng``
      instead, so reproducibility follows from the *caller's* generator
      state; this is how the sharding benchmarks keep multi-workload sweeps
      reproducible without hand-assigning a seed per configuration.
    * both ``None`` — streams are seeded from OS entropy (non-reproducible).

    ``seed`` and ``rng`` are mutually exclusive.
    """

    def __init__(
        self,
        num_hosts: int,
        link_bps: float,
        target_load: float,
        workload: str = "websearch",
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_hosts < 2:
            raise ValueError("need at least two hosts")
        if seed is not None and rng is not None:
            raise ValueError("pass either seed or rng, not both")
        from .distributions import load_for_fabric

        if rng is not None:
            # Derive one master seed from the caller's generator so all three
            # sub-streams are pinned by its state (see the seeding contract).
            seed = rng.randrange(1 << 62)
        self.num_hosts = num_hosts
        self.link_bps = link_bps
        self.target_load = target_load
        self.sizes = FlowSizeDistribution(workload, seed=seed)
        rate = load_for_fabric(
            target_load, link_bps, num_hosts, self.sizes.mean_bytes()
        )
        self.arrivals = PoissonArrivals(rate, seed=None if seed is None else seed + 1)
        self.rng = random.Random(None if seed is None else seed + 2)

    def generate(self, num_flows: int, start_ns: int = 0) -> List[FlowArrival]:
        """Generate ``num_flows`` flow arrivals."""
        flows: List[FlowArrival] = []
        now = start_ns
        for flow_id in range(num_flows):
            now += self.arrivals.next_gap_ns()
            src = self.rng.randrange(self.num_hosts)
            dst = self.rng.randrange(self.num_hosts - 1)
            if dst >= src:
                dst += 1
            flows.append(
                FlowArrival(
                    flow_id=flow_id,
                    src=src,
                    dst=dst,
                    size_bytes=self.sizes.sample_bytes(),
                    arrival_ns=now,
                )
            )
        return flows


__all__ = [
    "FlowArrival",
    "FlowSpec",
    "FlowWorkload",
    "NeperLikeGenerator",
    "OpenLoopBurstSource",
    "RoundRobinAnnotator",
    "SyntheticPacketGenerator",
]
