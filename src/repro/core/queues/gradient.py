"""Gradient queues: exact and approximate (Section 3.1.2, Appendix A/B).

The Gradient Queue computes Find-First-Set *algebraically*.  Every non-empty
bucket ``i`` contributes a weight function ``2^i (x - i)^2`` to the queue's
*curvature*; the curvature is therefore a parabola ``a x^2 - b x + c`` with

    a = sum(2^i)        over non-empty buckets i
    b = sum(i * 2^i)    over non-empty buckets i

and its critical point ``b / (2a)``... which after the paper's normalisation
means the index of the **maximum** non-empty bucket is ``ceil(b / a)``
(Theorem 1).  Maintaining ``a`` and ``b`` under bucket state changes is a
pair of additions/subtractions, and the lookup is one division.

The *approximate* gradient queue replaces the exponential weight ``2^i`` with
the sub-exponential ``2^(i/alpha)``.  That lets a single ``(a, b)`` pair
cover many more buckets — enough to skip the hierarchy entirely and find the
extremal bucket in **one step** — at the cost of a bounded, occupancy-
dependent error: ``ceil(b/a)`` now needs a constant correction ``u(alpha)``
and is only exact when the top of the queue is densely occupied.  When the
estimated bucket turns out to be empty the queue falls back to a linear scan,
and may (rarely) select a bucket that is not the true extremum; that error is
what Figure 18 measures.

Both queues in this module are exposed with the **min-queue** interface used
everywhere else in the library (packets with the smallest rank leave first).
Internally the gradient machinery tracks the *maximum* weighted index, so the
public bucket ``k`` is stored at internal index ``num_buckets - 1 - k``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Iterable, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    PriorityOutOfRangeError,
    validate_priority,
)


def gradient_shift(alpha: int) -> int:
    """The constant correction ``u(alpha)`` of the approximate estimate.

    For a densely occupied queue the weighted average ``b/a`` sits below the
    maximum occupied index by roughly ``1 / (2^(1/alpha) - 1)`` buckets; the
    paper reports 22 for ``alpha = 16``.
    """
    if alpha <= 0:
        raise ValueError("alpha must be a positive integer")
    return round(1.0 / (2.0 ** (1.0 / alpha) - 1.0))


def gradient_start_index(alpha: int, g_threshold: float = 0.005) -> int:
    """Smallest internal index ``I0`` at which the estimate becomes reliable.

    ``g(alpha, M) = 2^(-(M+1)/alpha)`` decays with the maximum occupied
    index M; once it falls below ``g_threshold`` the ``u(alpha)`` shift is
    effectively constant.  With the default threshold and ``alpha = 16`` this
    yields an ``I0`` of ~122-125, matching the paper's example of 124.
    """
    if alpha <= 0:
        raise ValueError("alpha must be a positive integer")
    if not 0.0 < g_threshold < 1.0:
        raise ValueError("g_threshold must be in (0, 1)")
    return max(0, math.ceil(alpha * math.log2(1.0 / g_threshold)) - 1)


def gradient_max_index(alpha: int, word_bits: int = 64) -> int:
    """Largest internal index ``Imax`` representable with ``word_bits`` bits.

    The representation constraint is that the accumulated ``b`` term — whose
    leading contribution is ``Imax * 2^(Imax/alpha) / (2^(1/alpha) - 1)`` —
    stays precisely representable in the word used for the curvature
    coefficients.  Solving for the largest such index gives a capacity in the
    hundreds of buckets for ``alpha = 16`` (the paper's example supports 523
    buckets between I0 = 124 and Imax = 647).
    """
    if alpha <= 0:
        raise ValueError("alpha must be a positive integer")
    if word_bits <= 8:
        raise ValueError("word_bits too small for a gradient queue")
    # Find the largest M with log2(M) + M/alpha + log2(1/(2^(1/alpha)-1)) <= word_bits - 10.
    budget = word_bits - 10
    correction = math.log2(1.0 / (2.0 ** (1.0 / alpha) - 1.0))
    m = 1
    while math.log2(m + 1) + (m + 1) / alpha + correction <= budget:
        m += 1
    return m


def gradient_capacity(alpha: int, word_bits: int = 64) -> int:
    """Number of usable buckets for an approximate queue configuration."""
    return max(0, gradient_max_index(alpha, word_bits) - gradient_start_index(alpha))


def alpha_for_buckets(num_buckets: int, word_bits: int = 64, max_alpha: int = 4096) -> int:
    """Smallest ``alpha`` whose capacity covers ``num_buckets`` buckets.

    The paper's worked example uses ``alpha = 16`` (523 buckets); larger
    bucket counts need a larger alpha, trading a bigger constant shift (and
    potentially more error under sparse occupancy) for range.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    alpha = 1
    while alpha <= max_alpha:
        if gradient_capacity(alpha, word_bits) >= num_buckets:
            return alpha
        alpha *= 2
    raise ValueError(
        f"no alpha <= {max_alpha} covers {num_buckets} buckets; "
        "coarsen the granularity instead"
    )


def fit_bucket_spec(
    priority_levels: int,
    granularity: int = 1,
    base_priority: int = 0,
    alpha: int = 16,
    word_bits: int = 64,
) -> BucketSpec:
    """Coarsen a bucket layout so it fits an approximate queue's capacity.

    The approximate gradient queue covers a bounded number of buckets (523 at
    ``alpha = 16`` in the paper's example); a policy that needs more distinct
    priority levels must map several levels to one bucket — the granularity /
    accuracy trade-off discussed in Section 5.2.  This helper computes the
    smallest granularity multiple that fits.
    """
    if priority_levels <= 0:
        raise ValueError("priority_levels must be positive")
    capacity = gradient_capacity(alpha, word_bits)
    if capacity <= 0:
        raise ValueError("configuration has no usable buckets")
    if priority_levels <= capacity:
        return BucketSpec(
            num_buckets=priority_levels,
            granularity=granularity,
            base_priority=base_priority,
        )
    scale = -(-priority_levels // capacity)  # ceil division
    num_buckets = -(-priority_levels // scale)
    return BucketSpec(
        num_buckets=num_buckets,
        granularity=granularity * scale,
        base_priority=base_priority,
    )


class GradientQueue(IntegerPriorityQueue):
    """Exact gradient queue (Theorem 1) with a min-queue interface.

    Uses arbitrary-precision integers for the curvature coefficients, so any
    number of buckets is *correct*; like the paper's exact construction it is
    only *practical* for bucket counts comparable to a machine word, which is
    why the approximate variant exists.
    """

    __slots__ = ("_buckets", "_a", "_b")

    def __init__(self, spec: BucketSpec) -> None:
        super().__init__(spec)
        self._buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(spec.num_buckets)
        ]
        # Curvature coefficients over *internal* (reversed) indices.
        self._a = 0
        self._b = 0

    # -- internal index mapping -------------------------------------------

    def _internal(self, bucket: int) -> int:
        return self.spec.num_buckets - 1 - bucket

    def _external(self, internal: int) -> int:
        return self.spec.num_buckets - 1 - internal

    # -- curvature maintenance ----------------------------------------------

    def _weight(self, internal: int) -> int:
        return 1 << internal

    def _mark_nonempty(self, internal: int) -> None:
        weight = self._weight(internal)
        self._a += weight
        self._b += internal * weight

    def _mark_empty(self, internal: int) -> None:
        weight = self._weight(internal)
        self._a -= weight
        self._b -= internal * weight

    def _critical_point(self) -> int:
        """ceil(b / a): the maximum non-empty internal index."""
        self.stats.divisions += 1
        return -((-self._b) // self._a)

    # -- queue operations ----------------------------------------------------

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            raise PriorityOutOfRangeError(
                f"priority {priority} outside fixed range of GradientQueue"
            )
        bucket = self.spec.bucket_for(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        was_empty = not self._buckets[bucket]
        self._buckets[bucket].append((priority, item))
        if was_empty:
            self._mark_nonempty(self._internal(bucket))
        self._size += 1

    def _min_bucket(self) -> int:
        internal = self._critical_point()
        return self._external(internal)

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty GradientQueue")
        bucket = self._min_bucket()
        entry = self._buckets[bucket].popleft()
        if not self._buckets[bucket]:
            self._mark_empty(self._internal(bucket))
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty GradientQueue")
        bucket = self._min_bucket()
        return self._buckets[bucket][0]

    # -- batch operations ----------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one curvature update per newly non-empty bucket.

        Direct-append shape: a key set tracks distinct buckets for the
        amortised ``bucket_lookups`` charge, counters settle once, and a
        mid-batch validation error leaves the inserted prefix enqueued and
        counted (the base class's per-element behaviour).
        """
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        hi = base + spec.horizon
        stats = self.stats
        buckets = self._buckets
        seen: set[int] = set()
        seen_add = seen.add
        count = 0
        try:
            for pair in pairs:
                priority = pair[0]
                if type(priority) is not int:
                    priority = validate_priority(priority)
                    pair = (priority, pair[1])
                if priority < base or priority >= hi:
                    raise PriorityOutOfRangeError(
                        f"priority {priority} outside fixed range of GradientQueue"
                    )
                bucket = (priority - base) // granularity
                seen_add(bucket)
                entries = buckets[bucket]
                if not entries:
                    self._mark_nonempty(self._internal(bucket))
                entries.append(pair)
                count += 1
        finally:
            stats.enqueues += count
            stats.bucket_lookups += len(seen)
            self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one critical-point division per bucket."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        buckets = self._buckets
        taken = 0
        while taken < n and self._size:
            bucket = self._min_bucket()
            entries = buckets[bucket]
            space = n - taken
            if space >= len(entries):
                take = len(entries)
                batch.extend(entries)
                entries.clear()
                self._mark_empty(self._internal(bucket))
            else:
                take = space
                popleft = entries.popleft
                for _ in range(take):
                    batch.append(popleft())
            taken += take
            self._size -= take
        self.stats.dequeues += taken
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        buckets = self._buckets
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        size = self._size
        taken = 0
        while size and (limit is None or taken < limit):
            bucket = self._min_bucket()
            entries = buckets[bucket]
            # Whole-bucket fast path: the bucket ceiling has passed, so every
            # entry is due and one extend replaces the per-element checks.
            if (
                base + (bucket + 1) * granularity - 1 <= now
                and (limit is None or limit - taken >= len(entries))
            ):
                count = len(entries)
                taken += count
                size -= count
                released.extend(entries)
                entries.clear()
                self._mark_empty(self._internal(bucket))
                continue
            while entries and entries[0][0] <= now:
                if limit is not None and taken >= limit:
                    break
                released.append(entries.popleft())
                taken += 1
                size -= 1
            if not entries:
                self._mark_empty(self._internal(bucket))
                continue
            break
        self.stats.dequeues += taken
        self._size = size
        return released

    def curvature_coefficients(self) -> tuple[int, int]:
        """The ``(a, b)`` coefficients, exposed for tests of Theorem 1."""
        return self._a, self._b


class ApproximateGradientQueue(IntegerPriorityQueue):
    """Approximate gradient queue with one-step lookup (Section 3.1.2).

    Args:
        spec: bucket layout. ``spec.num_buckets`` must not exceed the
            configuration's capacity (``gradient_capacity(alpha, word_bits)``)
            or the curvature coefficients would overflow the modelled word.
        alpha: the approximation parameter; larger alpha covers more buckets
            with a single (a, b) pair but increases the worst-case error.
        word_bits: modelled width of the coefficient word (64 by default).
        strict_capacity: raise instead of warn when ``num_buckets`` exceeds
            the modelled capacity.  Disabled by default because Python floats
            do not actually overflow at the modelled boundary; enabling it in
            tests documents the paper's sizing rule.
        track_errors: when True, every lookup additionally computes the true
            extremal bucket so that the selection error (Figure 18) can be
            reported.  This costs an O(N) scan per lookup and is therefore
            off by default; the error benchmark turns it on explicitly.
    """

    __slots__ = (
        "alpha",
        "word_bits",
        "i0",
        "shift",
        "_buckets",
        "_nonempty",
        "_a",
        "_b",
        "track_errors",
        "_selection_error_total",
        "_selections",
    )

    def __init__(
        self,
        spec: BucketSpec,
        alpha: int = 16,
        word_bits: int = 64,
        strict_capacity: bool = False,
        track_errors: bool = False,
    ) -> None:
        super().__init__(spec)
        if alpha <= 0:
            raise ValueError("alpha must be a positive integer")
        self.alpha = alpha
        self.word_bits = word_bits
        self.i0 = gradient_start_index(alpha)
        self.shift = gradient_shift(alpha)
        capacity = gradient_capacity(alpha, word_bits)
        if strict_capacity and spec.num_buckets > capacity:
            raise ValueError(
                f"{spec.num_buckets} buckets exceed the capacity "
                f"{capacity} of an approximate queue with alpha={alpha}, "
                f"word_bits={word_bits}"
            )
        # Hard physical limit: 2^(i/alpha) must stay a finite float.  Queues
        # needing more priority levels should coarsen their granularity (see
        # ``fit_bucket_spec``) exactly as the paper recommends.
        physical_limit = alpha * 960 - self.i0
        if spec.num_buckets > physical_limit:
            raise ValueError(
                f"{spec.num_buckets} buckets exceed the representable limit "
                f"{physical_limit} for alpha={alpha}; coarsen the granularity "
                f"(see repro.core.queues.gradient.fit_bucket_spec)"
            )
        self._buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(spec.num_buckets)
        ]
        self._nonempty = 0
        self._a = 0.0
        self._b = 0.0
        # Cumulative error statistics for Figure 18 (only when track_errors).
        self.track_errors = track_errors
        self._selection_error_total = 0
        self._selections = 0

    # -- index mapping -------------------------------------------------------

    def _internal(self, bucket: int) -> int:
        # Reverse (min-queue on top of a max structure) and offset by I0 so the
        # estimate operates in its reliable region.
        return self.i0 + (self.spec.num_buckets - 1 - bucket)

    def _external(self, internal: int) -> int:
        return self.spec.num_buckets - 1 - (internal - self.i0)

    # -- curvature maintenance ------------------------------------------------

    def _weight(self, internal: int) -> float:
        return 2.0 ** (internal / self.alpha)

    def _mark_nonempty(self, internal: int) -> None:
        weight = self._weight(internal)
        self._a += weight
        self._b += internal * weight
        self._nonempty += 1

    def _mark_empty(self, internal: int) -> None:
        weight = self._weight(internal)
        self._a -= weight
        self._b -= internal * weight
        self._nonempty -= 1
        if self._nonempty == 0:
            # Clamp float drift when the queue fully drains.
            self._a = 0.0
            self._b = 0.0

    # -- lookup ----------------------------------------------------------------

    def _estimate_internal(self) -> int:
        """One-step estimate of the maximum non-empty internal index."""
        self.stats.divisions += 1
        if self._a <= 0.0:
            raise EmptyQueueError("approximate gradient queue is empty")
        return math.ceil(self._b / self._a) + self.shift

    def _min_bucket(self) -> int:
        """Locate the (approximately) minimum non-empty external bucket."""
        estimate = self._estimate_internal()
        bucket = self._external(estimate)
        bucket = min(max(bucket, 0), self.spec.num_buckets - 1)
        if self._buckets[bucket]:
            selected = bucket
        else:
            selected = self._linear_search(bucket)
        if self.track_errors:
            true_min = self._true_min_bucket()
            self._selections += 1
            if selected != true_min:
                self.stats.selection_errors += 1
                self._selection_error_total += abs(selected - true_min)
        return selected

    def _linear_search(self, start: int) -> int:
        """Scan outward from ``start`` for a non-empty bucket.

        The primary direction is towards *larger* external buckets (smaller
        internal indices): the estimate overshoots towards the heavy end of
        the occupancy distribution, so the true extremum usually lies on the
        lower-priority side.  If nothing is found there, scan the other way.
        """
        for bucket in range(start + 1, self.spec.num_buckets):
            self.stats.linear_scans += 1
            if self._buckets[bucket]:
                return bucket
        for bucket in range(start - 1, -1, -1):
            self.stats.linear_scans += 1
            if self._buckets[bucket]:
                return bucket
        raise EmptyQueueError("no non-empty bucket found")

    def _true_min_bucket(self) -> int:
        for bucket, queue in enumerate(self._buckets):
            if queue:
                return bucket
        raise EmptyQueueError("queue is empty")

    # -- queue operations --------------------------------------------------------

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            raise PriorityOutOfRangeError(
                f"priority {priority} outside fixed range of ApproximateGradientQueue"
            )
        bucket = self.spec.bucket_for(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        was_empty = not self._buckets[bucket]
        self._buckets[bucket].append((priority, item))
        if was_empty:
            self._mark_nonempty(self._internal(bucket))
        self._size += 1

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty ApproximateGradientQueue")
        bucket = self._min_bucket()
        entry = self._buckets[bucket].popleft()
        if not self._buckets[bucket]:
            self._mark_empty(self._internal(bucket))
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty ApproximateGradientQueue")
        bucket = self._min_bucket()
        return self._buckets[bucket][0]

    # -- batch operations ----------------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one curvature update per newly non-empty bucket.

        Direct-append shape, as :meth:`GradientQueue.enqueue_batch`.
        """
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        hi = base + spec.horizon
        stats = self.stats
        buckets = self._buckets
        seen: set[int] = set()
        seen_add = seen.add
        count = 0
        try:
            for pair in pairs:
                priority = pair[0]
                if type(priority) is not int:
                    priority = validate_priority(priority)
                    pair = (priority, pair[1])
                if priority < base or priority >= hi:
                    raise PriorityOutOfRangeError(
                        f"priority {priority} outside fixed range of "
                        "ApproximateGradientQueue"
                    )
                bucket = (priority - base) // granularity
                seen_add(bucket)
                entries = buckets[bucket]
                if not entries:
                    self._mark_nonempty(self._internal(bucket))
                entries.append(pair)
                count += 1
        finally:
            stats.enqueues += count
            stats.bucket_lookups += len(seen)
            self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one estimate (and fallback) per bucket.

        The one-step estimate only changes when bucket occupancy changes, so
        draining the selected bucket before re-estimating visits exactly the
        same buckets in the same order as repeated single extractions.
        """
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        buckets = self._buckets
        taken = 0
        while taken < n and self._size:
            bucket = self._min_bucket()
            entries = buckets[bucket]
            space = n - taken
            if space >= len(entries):
                take = len(entries)
                batch.extend(entries)
                entries.clear()
                self._mark_empty(self._internal(bucket))
            else:
                take = space
                popleft = entries.popleft
                for _ in range(take):
                    batch.append(popleft())
            taken += take
            self._size -= take
        self.stats.dequeues += taken
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        buckets = self._buckets
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        size = self._size
        taken = 0
        while size and (limit is None or taken < limit):
            bucket = self._min_bucket()
            entries = buckets[bucket]
            # Whole-bucket fast path on the *selected* bucket (which may be a
            # non-extremal bucket on an estimate miss — the drain semantics
            # are identical to the per-element loop either way).
            if (
                base + (bucket + 1) * granularity - 1 <= now
                and (limit is None or limit - taken >= len(entries))
            ):
                count = len(entries)
                taken += count
                size -= count
                released.extend(entries)
                entries.clear()
                self._mark_empty(self._internal(bucket))
                continue
            while entries and entries[0][0] <= now:
                if limit is not None and taken >= limit:
                    break
                released.append(entries.popleft())
                taken += 1
                size -= 1
            if not entries:
                self._mark_empty(self._internal(bucket))
                continue
            break
        self.stats.dequeues += taken
        self._size = size
        return released

    # -- error reporting (Figure 18) ----------------------------------------------

    @property
    def average_selection_error(self) -> float:
        """Mean |selected bucket - true extremal bucket| over all lookups."""
        if self._selections == 0:
            return 0.0
        return self._selection_error_total / self._selections

    @property
    def selection_error_rate(self) -> float:
        """Fraction of lookups that selected a non-extremal bucket."""
        if self._selections == 0:
            return 0.0
        return self.stats.selection_errors / self._selections

    def reset_error_tracking(self) -> None:
        """Zero the error accumulators (counters in ``stats`` are untouched)."""
        self._selection_error_total = 0
        self._selections = 0


__all__ = [
    "ApproximateGradientQueue",
    "GradientQueue",
    "alpha_for_buckets",
    "fit_bucket_spec",
    "gradient_capacity",
    "gradient_max_index",
    "gradient_shift",
    "gradient_start_index",
]
