"""Property-based fault tests: a thief dies at a random point; nothing breaks.

The recovery contract, fuzzed: whatever the shard count, workload skew,
pacing, rebalance cadence, crash schedule, or steal interleaving, a run
with injected shard crashes still satisfies

* **conservation** — every submitted packet is either transmitted or
  attributed to a counted loss (``fault_stats.packets_lost``);
* **per-flow FIFO** — the survivors of each flow depart in submission
  order (a crash may lose a packet, never reorder one);
* **no stranded state** — after drain no lease is out, no mailbox entry,
  ring slot, or flow-table loan is left behind (``residual_state()``).
"""

import os

from hypothesis import given, settings, strategies as st

from repro.core.model.packet import Packet
from repro.runtime import FaultEvent, FaultPlan, FlowSharder, ShardedRuntime

MAX_EXAMPLES = int(os.environ.get("FAULT_FUZZ_EXAMPLES", "40"))

QUANTUM_NS = 10_000
RATE_BPS = 10e9  # 1500 B => 1.2 us spacing: shards tick many times


@st.composite
def skewed_workloads(draw):
    """Bursts dominated by a few elephant flows (the steal-prone shape)."""
    num_flows = draw(st.integers(min_value=1, max_value=8))
    elephants = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_flows - 1),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    num_bursts = draw(st.integers(min_value=1, max_value=5))
    bursts = []
    for _ in range(num_bursts):
        burst = draw(
            st.lists(
                st.sampled_from(elephants),
                min_size=4,
                max_size=24,
            )
        )
        burst += draw(
            st.lists(
                st.integers(min_value=0, max_value=num_flows - 1),
                max_size=6,
            )
        )
        bursts.append(burst)
    return bursts


def _run_with_plan(bursts, num_shards, hash_seed, rebalance, plan):
    runtime = ShardedRuntime(
        num_shards,
        sharder=FlowSharder(num_shards, hash_seed=hash_seed),
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=16,
        rebalance_interval_ns=3 * QUANTUM_NS if rebalance else None,
        steal_enabled=True,
        steal_batch=8,
        steal_min_backlog=1,
        fault_plan=plan,
    )
    submitted = {}
    total = 0
    for burst in bursts:
        packets = [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in burst]
        for packet in packets:
            submitted.setdefault(packet.flow_id, []).append(packet.packet_id)
        runtime.submit_batch(packets)
        # Interleave submission with partial progress so crashes can land
        # while later bursts of the same flow are still upstream.
        runtime.run(until_ns=runtime.simulator.now_ns + 2 * QUANTUM_NS)
        total += len(packets)
    runtime.run()
    return runtime, submitted, total


def _check_invariants(runtime, submitted, total):
    faults = runtime.fault_stats
    # Conservation: delivered or counted lost (crash losses and injected
    # handoff drops) — never silently vanished.
    lost = faults.packets_lost + faults.handoff_drops
    assert runtime.transmitted + lost == total
    observed = {}
    for _now, packet in runtime.transmit_log:
        observed.setdefault(packet.flow_id, []).append(packet.packet_id)
    # Per-flow FIFO for the survivors: each flow's transmit sequence is a
    # subsequence of its submission sequence (losses allowed, reorders not).
    for flow_id, sequence in observed.items():
        order = {packet_id: i for i, packet_id in enumerate(submitted[flow_id])}
        positions = [order[packet_id] for packet_id in sequence]
        assert positions == sorted(positions), f"flow {flow_id} reordered"
    # No stranded leases, mailbox entries, ring slots, or flow-table loans.
    residual = runtime.residual_state()
    assert all(value == 0 for value in residual.values()), residual


@given(
    bursts=skewed_workloads(),
    num_shards=st.integers(min_value=2, max_value=4),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
    rebalance=st.booleans(),
    crash_at=st.integers(min_value=1, max_value=6),
    target=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_thief_death_at_random_point(
    bursts, num_shards, hash_seed, rebalance, crash_at, target
):
    plan = FaultPlan(
        [FaultEvent("shard_crash", target=target % num_shards, at=crash_at)]
    )
    runtime, submitted, total = _run_with_plan(
        bursts, num_shards, hash_seed, rebalance, plan
    )
    _check_invariants(runtime, submitted, total)


@given(
    bursts=skewed_workloads(),
    num_shards=st.integers(min_value=2, max_value=4),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
    rebalance=st.booleans(),
    fault_seed=st.integers(min_value=0, max_value=2**32 - 1),
    events=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=MAX_EXAMPLES, deadline=None)
def test_mixed_seeded_faults_under_stealing(
    bursts, num_shards, hash_seed, rebalance, fault_seed, events
):
    plan = FaultPlan.from_seed(
        fault_seed,
        num_shards=num_shards,
        kinds=("shard_crash", "shard_stall", "handoff_drop"),
        events=events,
        max_tick=8,
        max_handoff_drops=4,
    )
    runtime, submitted, total = _run_with_plan(
        bursts, num_shards, hash_seed, rebalance, plan
    )
    _check_invariants(runtime, submitted, total)
