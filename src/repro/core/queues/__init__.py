"""Integer priority queues — Eiffel's efficiency contribution (Objective 1).

This package contains every queuing data structure the paper builds on,
proposes, or compares against:

* :class:`FFSQueue` / :class:`MultiWordFFSQueue` — single- and multi-word
  Find-First-Set bucketed queues over a fixed range.
* :class:`HierarchicalFFSQueue` — the PIQ-style bitmap tree for large bucket
  counts.
* :class:`CircularFFSQueue` — the paper's **cFFS**: two hierarchical FFS
  queues rotating over a moving rank range.
* :class:`GradientQueue` / :class:`ApproximateGradientQueue` — exact and
  approximate algebraic (curvature-based) queues, plus their circular
  variants.
* :class:`BucketedHeapQueue` — the "BH" bucketed baseline of Section 5.2.
* :class:`BinaryHeapQueue`, :class:`RBTreeQueue`, :class:`SortedListQueue` —
  comparison-based baselines used by FQ/pacing, hClock, and ns-2 pFabric.
* :class:`TimingWheel` / :class:`HierarchicalTimingWheel` — Carousel's
  substrate.
* :func:`recommend_queue` — the Figure 20 selection guide.
"""

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    PriorityOutOfRangeError,
    QueueError,
    QueueStats,
)
from .bucket_heap import BucketedHeapQueue
from .circular_ffs import CircularFFSQueue
from .circular_gradient import (
    CircularApproximateGradientQueue,
    CircularGradientQueue,
    CircularQueueAdapter,
)
from .comparison import BinaryHeapQueue, RBTreeQueue, SortedListQueue
from .ffs import FFSQueue, MultiWordFFSQueue, find_first_set, find_last_set
from .gradient import (
    ApproximateGradientQueue,
    GradientQueue,
    gradient_capacity,
    gradient_shift,
    gradient_start_index,
)
from .hierarchical_ffs import FFSBitmapTree, HierarchicalFFSQueue
from .selection import (
    CANONICAL_PROFILES,
    PRIORITY_LEVEL_THRESHOLD,
    QueueKind,
    Recommendation,
    WorkloadProfile,
    build_recommended_queue,
    recommend_queue,
)
from .timing_wheel import HierarchicalTimingWheel, TimingWheel

__all__ = [
    "ApproximateGradientQueue",
    "BinaryHeapQueue",
    "BucketSpec",
    "BucketedHeapQueue",
    "CANONICAL_PROFILES",
    "CircularApproximateGradientQueue",
    "CircularFFSQueue",
    "CircularGradientQueue",
    "CircularQueueAdapter",
    "EmptyQueueError",
    "FFSBitmapTree",
    "FFSQueue",
    "GradientQueue",
    "HierarchicalFFSQueue",
    "HierarchicalTimingWheel",
    "IntegerPriorityQueue",
    "MultiWordFFSQueue",
    "PRIORITY_LEVEL_THRESHOLD",
    "PriorityOutOfRangeError",
    "QueueError",
    "QueueKind",
    "QueueStats",
    "RBTreeQueue",
    "Recommendation",
    "SortedListQueue",
    "TimingWheel",
    "WorkloadProfile",
    "build_recommended_queue",
    "find_first_set",
    "find_last_set",
    "gradient_capacity",
    "gradient_shift",
    "gradient_start_index",
    "recommend_queue",
]
