"""Unit tests for the Figure 20 queue-selection decision tree."""

import pytest

from repro.core.queues import (
    BinaryHeapQueue,
    CircularApproximateGradientQueue,
    CircularFFSQueue,
    HierarchicalFFSQueue,
    QueueKind,
    WorkloadProfile,
    build_recommended_queue,
    recommend_queue,
)
from repro.core.queues.selection import CANONICAL_PROFILES


class TestDecisionTree:
    def test_small_level_count_any_queue(self):
        profile = WorkloadProfile(
            priority_levels=8, moving_range=False, uniform_occupancy=False
        )
        assert recommend_queue(profile).kind is QueueKind.ANY

    def test_fixed_range_many_levels_ffs(self):
        profile = WorkloadProfile(
            priority_levels=100_000, moving_range=False, uniform_occupancy=False
        )
        assert recommend_queue(profile).kind is QueueKind.FFS

    def test_moving_range_uneven_occupancy_cffs(self):
        profile = WorkloadProfile(
            priority_levels=20_000, moving_range=True, uniform_occupancy=False
        )
        assert recommend_queue(profile).kind is QueueKind.CIRCULAR_FFS

    def test_moving_range_uniform_occupancy_approx(self):
        profile = WorkloadProfile(
            priority_levels=50_000, moving_range=True, uniform_occupancy=True
        )
        assert recommend_queue(profile).kind is QueueKind.APPROXIMATE

    def test_threshold_boundary(self):
        at_threshold = WorkloadProfile(
            priority_levels=1000, moving_range=True, uniform_occupancy=True
        )
        above_threshold = WorkloadProfile(
            priority_levels=1001, moving_range=True, uniform_occupancy=True
        )
        assert recommend_queue(at_threshold).kind is QueueKind.ANY
        assert recommend_queue(above_threshold).kind is QueueKind.APPROXIMATE

    def test_custom_threshold(self):
        profile = WorkloadProfile(
            priority_levels=500, moving_range=False, uniform_occupancy=False
        )
        assert recommend_queue(profile, threshold=100).kind is QueueKind.FFS

    def test_reasons_describe_path(self):
        profile = WorkloadProfile(
            priority_levels=20_000, moving_range=True, uniform_occupancy=False
        )
        recommendation = recommend_queue(profile)
        assert len(recommendation.reasons) == 3
        assert "moving" in str(recommendation)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            recommend_queue(
                WorkloadProfile(
                    priority_levels=0, moving_range=False, uniform_occupancy=False
                )
            )


class TestBuildRecommendedQueue:
    def test_builds_matching_types(self):
        cases = [
            (CANONICAL_PROFILES["ieee_802_1q"], BinaryHeapQueue),
            (CANONICAL_PROFILES["pfabric_remaining_size"], HierarchicalFFSQueue),
            (CANONICAL_PROFILES["per_flow_pacing"], CircularFFSQueue),
            (CANONICAL_PROFILES["lstf"], CircularApproximateGradientQueue),
        ]
        for profile, expected_type in cases:
            queue = build_recommended_queue(profile)
            assert isinstance(queue, expected_type), profile.description

    def test_fixed_range_uniform_gets_plain_approx(self):
        profile = WorkloadProfile(
            priority_levels=5000, moving_range=False, uniform_occupancy=True
        )
        # Fixed range goes down the FFS branch per the tree; but if callers
        # force the approximate branch via threshold, the non-circular
        # approximate queue is returned for a fixed range.
        queue = build_recommended_queue(profile)
        assert isinstance(queue, HierarchicalFFSQueue)

    def test_built_queue_is_functional(self):
        for profile in CANONICAL_PROFILES.values():
            queue = build_recommended_queue(profile)
            queue.enqueue(5, "x")
            queue.enqueue(2, "y")
            priority, _ = queue.extract_min()
            assert priority in (2, 5)

    def test_canonical_profiles_cover_all_kinds(self):
        kinds = {recommend_queue(p).kind for p in CANONICAL_PROFILES.values()}
        assert QueueKind.ANY in kinds
        assert QueueKind.FFS in kinds
        assert QueueKind.CIRCULAR_FFS in kinds
        assert QueueKind.APPROXIMATE in kinds
