"""Unit tests for Packet, Flow, FlowState and FlowTable."""


from repro.core.model import Flow, FlowTable, Packet


class TestPacket:
    def test_unique_ids(self):
        first = Packet(flow_id=1)
        second = Packet(flow_id=1)
        assert first.packet_id != second.packet_id

    def test_size_bits(self):
        assert Packet(flow_id=1, size_bytes=1500).size_bits == 12000

    def test_annotate_chains(self):
        packet = Packet(flow_id=3).annotate(deadline_ns=100, leaf="video")
        assert packet.metadata["deadline_ns"] == 100
        assert packet.metadata["leaf"] == "video"

    def test_defaults(self):
        packet = Packet(flow_id=7)
        assert packet.rank is None
        assert packet.departure_ns is None
        assert packet.priority_class == 0


class TestFlow:
    def test_fifo_order(self):
        flow = Flow(1)
        packets = [Packet(flow_id=1) for _ in range(3)]
        for packet in packets:
            flow.push(packet)
        assert [flow.pop().packet_id for _ in range(3)] == [
            p.packet_id for p in packets
        ]

    def test_backlog_accounting(self):
        flow = Flow(1)
        flow.push(Packet(flow_id=1, size_bytes=100))
        flow.push(Packet(flow_id=1, size_bytes=200))
        assert flow.state.backlog_packets == 2
        assert flow.backlog_bytes == 300
        flow.pop()
        assert flow.state.backlog_packets == 1
        assert flow.backlog_bytes == 200

    def test_front_and_empty(self):
        flow = Flow(2)
        assert flow.front() is None
        assert flow.empty
        packet = Packet(flow_id=2)
        flow.push(packet)
        assert flow.front() is packet
        assert not flow.empty

    def test_rank_property(self):
        flow = Flow(5)
        flow.rank = 42
        assert flow.rank == 42
        assert flow.state.rank == 42

    def test_iteration(self):
        flow = Flow(1)
        for _ in range(4):
            flow.push(Packet(flow_id=1))
        assert len(list(flow)) == 4


class TestFlowTable:
    def test_lazy_creation(self):
        table = FlowTable()
        flow = table.get(10)
        assert flow.flow_id == 10
        assert table.get(10) is flow
        assert len(table) == 1

    def test_existing_does_not_create(self):
        table = FlowTable()
        assert table.existing(5) is None
        table.get(5)
        assert table.existing(5) is not None

    def test_remove(self):
        table = FlowTable()
        table.get(1)
        table.remove(1)
        assert table.existing(1) is None
        table.remove(99)  # removing a missing flow is a no-op

    def test_active_flows(self):
        table = FlowTable()
        idle = table.get(1)
        busy = table.get(2)
        busy.push(Packet(flow_id=2))
        active = table.active_flows()
        assert busy in active
        assert idle not in active
