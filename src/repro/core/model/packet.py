"""Packet and flow abstractions shared by every scheduler and substrate."""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, Optional

#: Monotonic packet identifier source (per-process).
_packet_ids = itertools.count()


@dataclass
class Packet:
    """A packet as seen by the scheduler.

    Attributes:
        flow_id: identifier of the flow/class the packet belongs to.
        size_bytes: wire size of the packet (payload + headers).
        rank: the rank assigned by the packet annotator / enqueue component.
            ``None`` until the scheduler computes it.
        arrival_ns: arrival timestamp in nanoseconds (set by the substrate).
        departure_ns: transmission timestamp, filled on dequeue.
        priority_class: optional class annotation used by strict-priority or
            multi-queue policies.
        metadata: free-form per-packet annotations (e.g. deadline, slack,
            remaining flow size) written by the packet annotator and read by
            ranking functions.
        packet_id: unique identifier for tracing and test assertions.
    """

    flow_id: int
    size_bytes: int = 1500
    rank: Optional[int] = None
    arrival_ns: int = 0
    departure_ns: Optional[int] = None
    priority_class: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def annotate(self, **annotations: Any) -> "Packet":
        """Attach annotations (returns self for chaining)."""
        self.metadata.update(annotations)
        return self

    @property
    def size_bits(self) -> int:
        """Packet size in bits."""
        return self.size_bytes * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, flow={self.flow_id}, "
            f"size={self.size_bytes}, rank={self.rank})"
        )


@dataclass
class FlowState:
    """Mutable per-flow scheduler state (the ``f.*`` variables of Figure 6/11/14).

    The ranking functions of per-flow scheduling transactions read and update
    these fields; the dictionary ``extra`` holds policy-specific values such
    as hClock's three tags.
    """

    flow_id: int
    rank: int = 0
    weight: float = 1.0
    rate_limit_bps: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    enqueued_packets: int = 0
    enqueued_bytes: int = 0
    dequeued_packets: int = 0
    dequeued_bytes: int = 0

    @property
    def backlog_packets(self) -> int:
        """Packets currently queued for this flow."""
        return self.enqueued_packets - self.dequeued_packets

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued for this flow."""
        return self.enqueued_bytes - self.dequeued_bytes


class Flow:
    """A flow: FIFO of its packets plus its scheduler state.

    The Eiffel per-flow primitive assumes "a sequence of packets that belong
    to a single flow should not be reordered by the scheduler", so packets of
    one flow always leave in arrival order; only the flow's position relative
    to other flows changes.
    """

    def __init__(self, flow_id: int, weight: float = 1.0) -> None:
        self.state = FlowState(flow_id=flow_id, weight=weight)
        self._packets: Deque[Packet] = deque()

    @property
    def flow_id(self) -> int:
        """Identifier of this flow."""
        return self.state.flow_id

    @property
    def rank(self) -> int:
        """Current flow rank (position among flows)."""
        return self.state.rank

    @rank.setter
    def rank(self, value: int) -> None:
        self.state.rank = value

    def push(self, packet: Packet) -> None:
        """Append a packet to the flow FIFO and update byte/packet counters."""
        self._packets.append(packet)
        self.state.enqueued_packets += 1
        self.state.enqueued_bytes += packet.size_bytes

    def pop(self) -> Packet:
        """Remove and return the oldest packet of the flow."""
        packet = self._packets.popleft()
        self.state.dequeued_packets += 1
        self.state.dequeued_bytes += packet.size_bytes
        return packet

    def front(self) -> Optional[Packet]:
        """The oldest queued packet, or ``None`` when the flow is idle."""
        return self._packets[0] if self._packets else None

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def empty(self) -> bool:
        """True when the flow has no queued packets."""
        return not self._packets

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued."""
        return self.state.backlog_bytes

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow(id={self.flow_id}, backlog={len(self)}, rank={self.rank})"


class FlowTable:
    """Lazily-created mapping of flow id to :class:`Flow`."""

    def __init__(self) -> None:
        self._flows: Dict[int, Flow] = {}

    def get(self, flow_id: int, weight: float = 1.0) -> Flow:
        """Return the flow for ``flow_id``, creating it if needed."""
        flow = self._flows.get(flow_id)
        if flow is None:
            flow = Flow(flow_id, weight=weight)
            self._flows[flow_id] = flow
        return flow

    def existing(self, flow_id: int) -> Optional[Flow]:
        """Return the flow if it exists, without creating it."""
        return self._flows.get(flow_id)

    def remove(self, flow_id: int) -> None:
        """Drop a flow from the table (used by garbage collection)."""
        self._flows.pop(flow_id, None)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())

    def active_flows(self) -> list[Flow]:
        """Flows that currently have queued packets."""
        return [flow for flow in self._flows.values() if not flow.empty]


__all__ = ["Flow", "FlowState", "FlowTable", "Packet"]
