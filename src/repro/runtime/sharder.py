"""Flow-to-shard placement: RSS-style hashing, affinity pins, rebalancing.

Real multi-core deployments of software schedulers spread flows over per-core
scheduler instances — the kernel's ``mq`` qdisc hashes skbs to per-CPU child
qdiscs, BESS pins traffic classes to per-core workers, and NIC RSS hashes the
5-tuple to a receive queue.  :class:`FlowSharder` reproduces that layer for
the simulated runtime: a stateless hash policy (the RSS analogue), a sticky
first-seen round-robin policy (connection steering), and explicit pins that
override either — which is also the mechanism the skew-aware
:class:`ShardRebalancer` uses to migrate hot flows off overloaded shards.

Hashing quality matters here the same way it does for RSS: the benchmark's
uniform workload relies on the mix below spreading dense integer flow ids
evenly, while the Zipf workload demonstrates that no hash can fix popularity
skew — only migration can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .flowstate import FlowTable
from ..core.queues.base import CounterStatsMixin

#: Default hash seed (the golden ratio in 32 bits, à la Linux ``hash_32``).
DEFAULT_HASH_SEED = 0x9E3779B9

#: Seed of the *ingress-lane* hash (flow -> ingress core).  Deliberately a
#: different constant (the 31-bit golden-ratio increment) than the shard
#: placement seed: with both layers hashing on the same key, a shared seed
#: would perfectly correlate the two placements and every ingress core would
#: feed a fixed subset of shards instead of fanning out over all of them.
INGRESS_HASH_SEED = 0x61C88647

_MASK32 = 0xFFFFFFFF


def rss_hash(flow_id: int, seed: int = DEFAULT_HASH_SEED) -> int:
    """A 32-bit avalanche mix of ``flow_id`` (stand-in for Toeplitz RSS).

    Dense integer flow ids (0, 1, 2, ...) must land on different shards, so a
    plain modulo is not enough; this is the finalizer of MurmurHash3, which
    avalanches every input bit across the word.
    """
    h = (flow_id ^ seed) & _MASK32
    h = (h ^ (h >> 16)) * 0x85EBCA6B & _MASK32
    h = (h ^ (h >> 13)) * 0xC2B2AE35 & _MASK32
    return (h ^ (h >> 16)) & _MASK32


@dataclass(slots=True)
class ShardingStats(CounterStatsMixin):
    """Placement counters kept by the sharder."""

    lookups: int = 0
    pins: int = 0
    migrations: int = 0
    window_packets: int = 0
    loans: int = 0
    window_evictions: int = 0


class FlowSharder:
    """Maps flow ids onto ``num_shards`` workers.

    Args:
        num_shards: number of shard workers.
        policy: ``"hash"`` (stateless RSS-style placement, the default) or
            ``"round_robin"`` (sticky first-seen assignment rotating over
            shards, which guarantees perfect flow-count balance but no
            packet-count balance).
        hash_seed: seed for the RSS hash, so experiments can draw different
            placements of the same flow population.

    Explicit pins (:meth:`pin`) always win over the policy; the rebalancer
    migrates flows exclusively through pins so the underlying policy keeps
    steering the cold tail.

    The sharder also keeps a sliding load window (:meth:`record` /
    :meth:`reset_window`): per-flow and per-shard packet counts since the
    last reset, which is exactly the signal the rebalancer inspects.

    All per-flow state — pin, sticky assignment, loan owner, window counts —
    lives as dense columns over one :class:`~repro.runtime.flowstate.FlowTable`
    (a few int32/int64 per tracked flow instead of entries in five dicts), and
    a slot is held only while *some* column is non-default: an unpinned,
    unloaned flow whose window entry resets releases its slot for reuse.
    Per-flow window attribution is additionally bounded by ``window_limit``:
    past that many tracked flows, recording a new one evicts the coldest of a
    few probed candidates (CLOCK-style rotating scan, counted in
    ``stats.window_evictions``).  Per-*shard* window totals keep the evicted
    packets, so :meth:`shard_loads` and :meth:`imbalance` stay exact; only
    the per-flow breakdown the rebalancer ranks by is approximate under
    extreme churn — and an evicted-because-cold flow was never a migration
    candidate anyway.
    """

    POLICIES = ("hash", "round_robin")

    @classmethod
    def for_ingress(
        cls, num_cores: int, hash_seed: Optional[int] = None
    ) -> "FlowSharder":
        """A sharder for the ingress lanes (flow -> RX core).

        Same RSS-style mechanics, decorrelated seed (see
        :data:`INGRESS_HASH_SEED`; pass ``hash_seed`` to pin the lane hash
        from a scenario-level seed instead — it must still differ from the
        shard placement seed, or the two layers' placements correlate and
        every RX core feeds a fixed subset of shards).  Keeping the lane map
        a ``FlowSharder`` means the ingress layer inherits pins and
        placement stats for free — e.g. an experiment can pin an elephant
        flow to a dedicated RX core exactly as it pins one to a shard.
        """
        return cls(
            num_cores,
            hash_seed=INGRESS_HASH_SEED if hash_seed is None else hash_seed,
        )

    #: Tracked-flow bound of the load window (see class docstring).
    DEFAULT_WINDOW_LIMIT = 65536

    #: Live window entries probed per eviction (CLOCK-style arm sweep).
    _EVICT_PROBES = 8

    def __init__(
        self,
        num_shards: int,
        policy: str = "hash",
        hash_seed: int = DEFAULT_HASH_SEED,
        window_limit: int = DEFAULT_WINDOW_LIMIT,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {self.POLICIES}")
        if window_limit <= 0:
            raise ValueError("window_limit must be positive")
        self.num_shards = num_shards
        self.policy = policy
        self.hash_seed = hash_seed
        self.window_limit = window_limit
        self.stats = ShardingStats()
        self.flows = FlowTable()
        self._pin = self.flows.add_column("pin", "i", -1)
        self._sticky = self.flows.add_column("sticky", "i", -1)
        self._loan = self.flows.add_column("loan", "i", -1)
        self._wshard = self.flows.add_column("window_shard", "i", -1)
        self._wpkts = self.flows.add_column("window_packets", "q", 0)
        # Population counters per column family, so the hot paths (routing,
        # loan checks) skip the table entirely while a family is empty.
        self._num_pins = 0
        self._num_loans = 0
        self._num_window = 0
        self._next_rr = 0
        self._evict_cursor = 0
        # Per-shard packet totals of the sliding window (never evicted).
        self._window_shard_packets: List[int] = [0] * num_shards

    # -- placement ---------------------------------------------------------

    def shard_for(self, flow_id: int) -> int:
        """Shard index for ``flow_id`` (pins beat the policy)."""
        self.stats.lookups += 1
        if self.policy == "round_robin":
            flows = self.flows
            slot = flows.lookup(flow_id)
            if slot >= 0:
                pinned = self._pin[slot]
                if pinned >= 0:
                    return pinned
                shard = self._sticky[slot]
                if shard >= 0:
                    return shard
            else:
                slot = flows.ensure(flow_id)
            shard = self._next_rr
            self._next_rr = (self._next_rr + 1) % self.num_shards
            self._sticky[slot] = shard
            return shard
        if self._num_pins:
            slot = self.flows.lookup(flow_id)
            if slot >= 0:
                pinned = self._pin[slot]
                if pinned >= 0:
                    return pinned
        return rss_hash(flow_id, self.hash_seed) % self.num_shards

    def pin(self, flow_id: int, shard: int) -> None:
        """Force ``flow_id`` onto ``shard`` (overrides the policy)."""
        if not 0 <= shard < self.num_shards:
            raise ValueError("shard out of range")
        self.stats.pins += 1
        slot = self.flows.ensure(flow_id)
        if self._pin[slot] < 0:
            self._num_pins += 1
        self._pin[slot] = shard

    def unpin(self, flow_id: int) -> None:
        """Remove an explicit pin; the policy takes over again."""
        slot = self.flows.lookup(flow_id)
        if slot >= 0 and self._pin[slot] >= 0:
            self._pin[slot] = -1
            self._num_pins -= 1
            self._release_if_idle(slot, flow_id)

    def pinned_shard(self, flow_id: int) -> Optional[int]:
        """The pinned shard of ``flow_id``, or ``None``."""
        if self._num_pins:
            slot = self.flows.lookup(flow_id)
            if slot >= 0:
                pinned = self._pin[slot]
                if pinned >= 0:
                    return pinned
        return None

    def forget(self, flow_id: int) -> None:
        """Expire all per-flow placement state (pin and sticky assignment).

        Called by flow-state garbage collection for long-idle flows; if the
        flow returns it is placed afresh by the policy, and the rebalancer
        re-pins it should it become hot again.
        """
        slot = self.flows.lookup(flow_id)
        if slot < 0:
            return
        if self._pin[slot] >= 0:
            self._pin[slot] = -1
            self._num_pins -= 1
        self._sticky[slot] = -1
        self._release_if_idle(slot, flow_id)

    def _release_if_idle(self, slot: int, flow_id: int) -> None:
        """Free the flow's slot once every column is back at its default."""
        if (
            self._pin[slot] < 0
            and self._sticky[slot] < 0
            and self._loan[slot] < 0
            and self._wshard[slot] < 0
        ):
            self.flows.remove(flow_id)

    # -- ownership view (work-stealing leases) -----------------------------
    #
    # While a flow's due window is on loan to a thief shard, the flow's
    # *ownership* is pinned to the victim that granted the lease: ingress
    # keeps routing its packets home (even if the flow momentarily has
    # nothing in flight) and the rebalancer must not migrate it — a re-pin
    # landing mid-lease would strand the pacing state travelling with the
    # lease.  This registry is how stealing and migration compose.

    def lend(self, flow_id: int, victim_shard: int) -> None:
        """Record that ``flow_id``'s due window is on loan from ``victim_shard``."""
        if not 0 <= victim_shard < self.num_shards:
            raise ValueError("shard out of range")
        self.stats.loans += 1
        slot = self.flows.ensure(flow_id)
        if self._loan[slot] < 0:
            self._num_loans += 1
        self._loan[slot] = victim_shard

    def restore(self, flow_id: int) -> None:
        """Clear the loan: the lease returned and the flow is whole again."""
        slot = self.flows.lookup(flow_id)
        if slot >= 0 and self._loan[slot] >= 0:
            self._loan[slot] = -1
            self._num_loans -= 1
            self._release_if_idle(slot, flow_id)

    def loan_shard(self, flow_id: int) -> Optional[int]:
        """The victim shard that owns ``flow_id`` while on loan, or ``None``."""
        if self._num_loans == 0:
            return None
        slot = self.flows.lookup(flow_id)
        if slot >= 0:
            victim = self._loan[slot]
            if victim >= 0:
                return victim
        return None

    def loaned_flows(self) -> Dict[int, int]:
        """Mapping of every on-loan flow id to its owning (victim) shard."""
        if self._num_loans == 0:
            return {}
        loan = self._loan
        return {
            flow_id: loan[slot]
            for flow_id, slot in self.flows.items()
            if loan[slot] >= 0
        }

    # -- load window -------------------------------------------------------

    def record(self, flow_id: int, shard: int, packets: int = 1) -> None:
        """Account ``packets`` of ``flow_id`` handled by ``shard``.

        ``shard`` is where the packets actually ran (residency), which can
        lag the placement while a re-pinned flow waits to drain; the window
        keeps the residency view so the rebalancer reasons about the load
        each shard really carried.
        """
        self.stats.window_packets += packets
        slot = self.flows.ensure(flow_id)
        if self._wshard[slot] < 0:
            self._num_window += 1
            if self._num_window > self.window_limit:
                self._evict_window_entry(exclude=slot)
        self._wpkts[slot] += packets
        self._wshard[slot] = shard
        self._window_shard_packets[shard] += packets

    def _evict_window_entry(self, exclude: int) -> None:
        """Drop the coldest of a few probed window entries (bounded memory).

        A rotating cursor over the slot space probes the next
        ``_EVICT_PROBES`` live window entries and evicts the one with the
        fewest window packets — the coldest flow the arm happens to pass,
        which under churn is almost always a one-packet short-lived flow.
        The per-shard totals keep the evicted packets (see class docstring).
        """
        key = self.flows.key
        wshard = self._wshard
        wpkts = self._wpkts
        span = self.flows.slot_limit
        cursor = self._evict_cursor
        probed = 0
        victim = -1
        victim_pkts = 0
        for _ in range(span):
            if cursor >= span:
                cursor = 0
            slot = cursor
            cursor += 1
            if slot == exclude or key[slot] < 0 or wshard[slot] < 0:
                continue
            pkts = wpkts[slot]
            if victim < 0 or pkts < victim_pkts:
                victim = slot
                victim_pkts = pkts
            probed += 1
            if probed >= self._EVICT_PROBES:
                break
        self._evict_cursor = cursor
        if victim < 0:
            return
        wpkts[victim] = 0
        wshard[victim] = -1
        self._num_window -= 1
        self.stats.window_evictions += 1
        self._release_if_idle(victim, key[victim])

    def shard_loads(self) -> List[int]:
        """Packets per shard since the last window reset."""
        return list(self._window_shard_packets)

    def flow_loads(self) -> Dict[int, int]:
        """Packets per flow since the last window reset."""
        wshard = self._wshard
        wpkts = self._wpkts
        return {
            flow_id: wpkts[slot]
            for flow_id, slot in self.flows.items()
            if wshard[slot] >= 0
        }

    def flow_residency(self) -> Dict[int, int]:
        """Shard each flow's window packets last ran on."""
        wshard = self._wshard
        return {
            flow_id: wshard[slot]
            for flow_id, slot in self.flows.items()
            if wshard[slot] >= 0
        }

    def reset_window(self) -> None:
        """Start a fresh load window (called after each rebalancing round)."""
        wshard = self._wshard
        wpkts = self._wpkts
        for flow_id, slot in list(self.flows.items()):
            if wshard[slot] >= 0:
                wpkts[slot] = 0
                wshard[slot] = -1
                self._release_if_idle(slot, flow_id)
        self._num_window = 0
        self._window_shard_packets = [0] * self.num_shards
        self.stats.window_packets = 0

    def memory_bytes(self) -> int:
        """Bytes held by the sharder's per-flow placement columns."""
        return self.flows.memory_bytes()

    def imbalance(self) -> float:
        """Max-to-mean shard load ratio over the current window (1.0 = even)."""
        total = sum(self._window_shard_packets)
        if total == 0:
            return 1.0
        mean = total / self.num_shards
        return max(self._window_shard_packets) / mean


@dataclass
class Migration:
    """One planned flow migration."""

    flow_id: int
    src_shard: int
    dst_shard: int
    window_packets: int


@dataclass
class ShardRebalancer:
    """Skew-aware rebalancer: migrate hot flows off overloaded shards.

    Looks at the sharder's load window and, when the hottest shard exceeds
    ``imbalance_threshold`` times the mean, plans migrations of its hottest
    flows onto the coldest shards.  A migration is only worthwhile when it
    actually reduces the maximum: a flow bigger than the gap between the two
    shards would just move the hot spot, so such flows are skipped (an
    elephant flow that *is* the imbalance cannot be split by migration —
    that is what work stealing (:mod:`repro.runtime.stealing`) is for, and
    flows whose due window is currently on loan to a thief are likewise
    left alone so the two mechanisms compose).

    The plan only *decides*; applying it is the runtime's job, because only
    the runtime knows when a flow's in-flight packets have drained (migrating
    earlier would reorder the flow).
    """

    sharder: FlowSharder
    imbalance_threshold: float = 1.25
    max_migrations_per_round: int = 4
    rounds: int = 0
    planned_migrations: int = 0
    history: List[Migration] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.imbalance_threshold < 1.0:
            raise ValueError("imbalance_threshold must be >= 1.0")
        if self.max_migrations_per_round <= 0:
            raise ValueError("max_migrations_per_round must be positive")

    def plan(self) -> List[Migration]:
        """Plan up to ``max_migrations_per_round`` migrations for this window."""
        self.rounds += 1
        loads = self.sharder.shard_loads()
        total = sum(loads)
        if total == 0 or self.sharder.num_shards == 1:
            return []
        mean = total / len(loads)
        flow_loads = self.sharder.flow_loads()
        # Group flows by residency — where their packets actually ran — so
        # the plan's arithmetic matches the recorded per-shard loads even for
        # flows whose earlier re-pin has not taken effect yet (a pinned-but-
        # undrained flow is still load on its old shard, and moving it again
        # from there is what helps).
        residency = self.sharder.flow_residency()
        flows_by_shard: Dict[int, List[int]] = {}
        for flow_id in flow_loads:
            if self.sharder.loan_shard(flow_id) is not None:
                # The flow's due window is executing on another core under a
                # steal lease; re-pinning it mid-lease would strand the
                # pacing state travelling with the lease.  It stays put this
                # round and is reconsidered once the lease returns.
                continue
            flows_by_shard.setdefault(residency[flow_id], []).append(flow_id)
        plan: List[Migration] = []
        working = list(loads)
        for _ in range(self.max_migrations_per_round):
            src = max(range(len(working)), key=working.__getitem__)
            dst = min(range(len(working)), key=working.__getitem__)
            if src == dst or working[src] <= self.imbalance_threshold * mean:
                break
            # Best-fit: the ideal migration halves the src/dst gap, so pick
            # the movable flow closest to gap/2 (hottest-first would bounce
            # an elephant back and forth between rounds).
            gap = working[src] - working[dst]
            best: Optional[int] = None
            for flow_id in flows_by_shard.get(src, ()):
                load = flow_loads[flow_id]
                # Moving the flow must strictly shrink the src/dst spread.
                if load == 0 or load >= gap:
                    continue
                if best is None or abs(load - gap / 2) < abs(flow_loads[best] - gap / 2):
                    best = flow_id
            if best is None:
                break
            load = flow_loads[best]
            plan.append(Migration(best, src, dst, load))
            working[src] -= load
            working[dst] += load
            flows_by_shard[src].remove(best)
            flows_by_shard.setdefault(dst, []).append(best)
        self.planned_migrations += len(plan)
        self.history.extend(plan)
        return plan


__all__ = [
    "DEFAULT_HASH_SEED",
    "INGRESS_HASH_SEED",
    "FlowSharder",
    "Migration",
    "ShardRebalancer",
    "ShardingStats",
    "rss_hash",
]
