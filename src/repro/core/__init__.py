"""Eiffel's core contribution: integer priority queues, the extended PIFO
programming model, and ready-made scheduling policies."""
