"""Event-cancellation and heap-compaction tests for the simulator core.

The shard timers and the work-stealing wakeups re-program (cancel +
re-schedule) events far more often than they let them fire, so the lazy
removal and the corpse-compaction path are load-bearing — previously they
were only exercised indirectly through the runtime.
"""

import pytest

from repro.netsim import Simulator


class TestEventCancellation:
    def test_cancelled_event_never_fires(self):
        simulator = Simulator()
        fired = []
        keep = simulator.schedule(10, lambda: fired.append("keep"))
        kill = simulator.schedule(5, lambda: fired.append("kill"))
        assert simulator.cancel(kill)
        simulator.run()
        assert fired == ["keep"]
        assert keep.fired and not keep.cancelled
        assert kill.cancelled and not kill.fired
        assert not kill.active

    def test_cancel_is_idempotent_and_false_after_fire(self):
        simulator = Simulator()
        handle = simulator.schedule(1, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()  # second cancel is a no-op
        fired = simulator.schedule(2, lambda: None)
        simulator.run()
        assert not simulator.cancel(fired)  # already ran

    def test_pending_events_stays_exact_under_cancels(self):
        simulator = Simulator()
        handles = [simulator.schedule(i + 1, lambda: None) for i in range(10)]
        assert simulator.pending_events == 10
        for handle in handles[::2]:
            simulator.cancel(handle)
        assert simulator.pending_events == 5
        simulator.run()
        assert simulator.pending_events == 0
        assert simulator.processed_events == 5

    def test_interleaved_cancel_and_fire(self):
        # Cancel some events from inside other events, across several
        # partial run() calls, and check exactly the survivors fire.
        simulator = Simulator()
        fired = []
        handles = {}
        for i in range(20):
            handles[i] = simulator.schedule_at(
                (i + 1) * 10, lambda i=i: fired.append(i)
            )
        # Event 3 kills events 4 and 5 when it fires; event 10 kills 19.
        simulator.schedule_at(35, lambda: (handles[4].cancel(), handles[5].cancel()))
        simulator.schedule_at(105, lambda: handles[19].cancel())
        simulator.run(until_ns=60)
        assert fired == [0, 1, 2, 3]
        simulator.run()
        expected = [i for i in range(20) if i not in (4, 5, 19)]
        assert fired == expected


class TestHeapCompaction:
    def test_mass_cancellation_compacts_the_heap(self):
        simulator = Simulator()
        handles = [simulator.schedule(i + 1, lambda: None) for i in range(1000)]
        survivors = handles[::10]  # keep 100
        for handle in handles:
            if handle not in survivors:
                simulator.cancel(handle)
        # Compaction kicked in: the heap dropped its corpses rather than
        # carrying 900 cancelled entries to the front one by one.
        assert len(simulator._events) < 300
        assert simulator.pending_events == 100
        processed = simulator.run()
        assert processed == 100

    def test_compaction_preserves_firing_order(self):
        simulator = Simulator()
        fired = []
        handles = []
        for i in range(500):
            handles.append(simulator.schedule_at(i, lambda i=i: fired.append(i)))
        for i, handle in enumerate(handles):
            if i % 5:
                simulator.cancel(handle)
        simulator.run()
        assert fired == list(range(0, 500, 5))

    def test_compaction_under_interleaved_cancel_and_fire(self):
        # Fire a prefix, cancel most of the rest, schedule more, repeat:
        # the accounting must stay exact through compactions.
        simulator = Simulator()
        fired = []
        handles = [
            simulator.schedule_at(i, lambda i=i: fired.append(i)) for i in range(400)
        ]
        simulator.run(max_events=50)  # events 0..49 fire
        for handle in handles[50:390]:
            simulator.cancel(handle)
        assert simulator.pending_events == 10
        late = [
            simulator.schedule_at(1000 + i, lambda i=i: fired.append(1000 + i))
            for i in range(5)
        ]
        simulator.cancel(late[0])
        assert simulator.pending_events == 14
        simulator.run()
        assert fired == list(range(50)) + list(range(390, 400)) + [
            1001, 1002, 1003, 1004
        ]
        assert simulator.pending_events == 0

    def test_cancelling_every_event_leaves_clean_state(self):
        simulator = Simulator()
        handles = [simulator.schedule(i + 1, lambda: None) for i in range(200)]
        for handle in handles:
            assert handle.cancel()
        assert simulator.pending_events == 0
        assert simulator.run() == 0
        # The simulator is still usable afterwards.
        hits = []
        simulator.schedule(1, lambda: hits.append(1))
        simulator.run()
        assert hits == [1]

    def test_double_cancel_does_not_skew_accounting(self):
        simulator = Simulator()
        handle = simulator.schedule(1, lambda: None)
        other = simulator.schedule(2, lambda: None)
        handle.cancel()
        handle.cancel()
        assert simulator.pending_events == 1
        simulator.run()
        assert simulator.pending_events == 0
        assert other.fired


class TestRuntimeTimerPattern:
    def test_reprogramming_pattern_stays_bounded(self):
        # The shard-timer idiom: schedule a wakeup, cancel it, pull it
        # forward — thousands of times.  Lazy removal plus compaction must
        # keep the heap proportional to the *live* event count.
        simulator = Simulator()
        fired = []
        handle = None
        for i in range(5000):
            if handle is not None and handle.active:
                simulator.cancel(handle)
            handle = simulator.schedule_at(10_000 + i, lambda i=i: fired.append(i))
        assert simulator.pending_events == 1
        assert len(simulator._events) <= 5000 // 2 + 1
        simulator.run()
        assert fired == [4999]
