"""The ``[observability]`` block: schema, validation, and end-to-end runs.

The declarative plane must behave exactly like the programmatic one: an
armed spec compiles a runtime with the tracer/timeline/histograms attached,
a disarmed spec compiles the byte-identical default, the ``p99_latency_ns``
bound is evaluated against the end-to-end histogram, and the same seed
replays the same trace and timeline through the whole scenario pipeline.
"""

import pytest

from repro.scenario import (
    AssertionSpec,
    BackendIncompatibleError,
    MalformedSpecError,
    ObservabilitySpec,
    PolicyTreeSpec,
    RuntimeSpec,
    ScenarioSpec,
    ScenarioSpecError,
    TopologySpec,
    TrafficSpec,
    UnknownNameError,
    compile_scenario,
    dump_toml,
    load_toml,
    run_scenario,
    validate,
)


def _spec(**overrides):
    """A small paced runtime scenario that finishes fast but queues packets."""
    defaults = dict(
        name="obs",
        seed=11,
        topology=TopologySpec(kind="runtime"),
        runtime=RuntimeSpec(shards=2),
        traffic=TrafficSpec(pattern="zipf", num_flows=8, total_packets=160),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _reject(spec, error_type, field_name):
    for entry in (validate, compile_scenario):
        with pytest.raises(error_type) as excinfo:
            entry(spec)
        assert excinfo.value.field == field_name
        assert isinstance(excinfo.value, ScenarioSpecError)


class TestSchema:
    def test_toml_round_trip_of_an_armed_block(self):
        spec = _spec(
            observability=ObservabilitySpec(
                latency_histograms=True,
                tracer=True,
                trace_capacity=4096,
                timeline=True,
                timeline_interval_ns=25_000,
            ),
            assertions=AssertionSpec(p99_latency_ns=5_000_000),
        )
        text = dump_toml(spec)
        assert "[observability]" in text
        assert load_toml(text) == spec

    def test_disarmed_block_is_the_default(self):
        assert _spec().observability == ObservabilitySpec()
        assert load_toml(dump_toml(_spec())).observability == ObservabilitySpec()


class TestValidation:
    def test_p99_bound_needs_histograms(self):
        _reject(
            _spec(assertions=AssertionSpec(p99_latency_ns=1_000_000)),
            UnknownNameError,
            "assertions.p99_latency_ns",
        )

    def test_p99_bound_must_be_positive(self):
        _reject(
            _spec(
                observability=ObservabilitySpec(latency_histograms=True),
                assertions=AssertionSpec(p99_latency_ns=0),
            ),
            MalformedSpecError,
            "assertions.p99_latency_ns",
        )

    @pytest.mark.parametrize(
        "observability, field_name",
        [
            (ObservabilitySpec(trace_capacity=0), "observability.trace_capacity"),
            (
                ObservabilitySpec(timeline_interval_ns=-1),
                "observability.timeline_interval_ns",
            ),
        ],
    )
    def test_bounds_must_be_positive(self, observability, field_name):
        _reject(_spec(observability=observability), MalformedSpecError, field_name)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("knob", ["tracer", "timeline"])
    def test_tracer_and_timeline_need_the_shared_clock(self, backend, knob):
        _reject(
            _spec(
                runtime=RuntimeSpec(shards=2, backend=backend),
                observability=ObservabilitySpec(**{knob: True}),
            ),
            BackendIncompatibleError,
            f"observability.{knob}",
        )

    def test_histograms_are_allowed_on_parallel_backends(self):
        spec = _spec(
            runtime=RuntimeSpec(shards=2, backend="thread"),
            observability=ObservabilitySpec(latency_histograms=True),
        )
        assert validate(spec) is spec

    def test_non_runtime_kinds_reject_the_block(self):
        _reject(
            ScenarioSpec(
                topology=TopologySpec(kind="fabric"),
                observability=ObservabilitySpec(tracer=True),
            ),
            MalformedSpecError,
            "observability",
        )


class TestCompilation:
    def test_armed_spec_binds_the_instruments(self):
        compiled = compile_scenario(
            _spec(
                observability=ObservabilitySpec(
                    latency_histograms=True,
                    tracer=True,
                    trace_capacity=512,
                    timeline=True,
                )
            )
        )
        assert compiled.runtime.latency_histograms is True
        assert compiled.runtime.tracer is not None
        assert compiled.runtime.tracer.capacity == 512
        assert compiled.runtime.timeline is not None
        # Unset interval defaults to the runtime quantum.
        assert compiled.runtime.timeline.interval_ns == compiled.spec.runtime.quantum_ns

    def test_disarmed_spec_binds_none(self):
        compiled = compile_scenario(_spec())
        assert compiled.runtime.latency_histograms is False
        assert compiled.runtime.tracer is None
        assert compiled.runtime.timeline is None


class TestExecution:
    def _paced_spec(self, **overrides):
        # Pacing slow enough that queues form and the e2e tail is non-trivial.
        return _spec(policy=PolicyTreeSpec(default_rate_bps=1e9), **overrides)

    def test_p99_bound_passes_when_generous(self):
        result = run_scenario(
            self._paced_spec(
                observability=ObservabilitySpec(latency_histograms=True),
                assertions=AssertionSpec(p99_latency_ns=10**12),
            )
        )
        assert result.ok
        assert result.telemetry.latency["e2e"].count == result.transmitted > 0

    def test_p99_bound_fails_when_impossible(self):
        compiled = compile_scenario(
            self._paced_spec(
                observability=ObservabilitySpec(latency_histograms=True),
                assertions=AssertionSpec(p99_latency_ns=1),
            )
        )
        result = compiled.run()
        assert any(f.startswith("p99_latency_ns") for f in result.failures)

    def test_same_seed_replays_identical_trace_and_timeline(self):
        def observe():
            compiled = compile_scenario(
                self._paced_spec(
                    observability=ObservabilitySpec(
                        latency_histograms=True, tracer=True, timeline=True
                    )
                )
            )
            result = compiled.run()
            assert result.ok
            return (
                compiled.runtime.tracer.to_chrome_trace(),
                compiled.runtime.timeline.as_dict(),
                result.telemetry.latency,
            )

        trace_a, timeline_a, latency_a = observe()
        trace_b, timeline_b, latency_b = observe()
        # Chrome export carries packet-id-free args, so it compares across
        # runs even though Packet ids are process-global.
        assert trace_a == trace_b
        assert timeline_a == timeline_b
        assert latency_a == latency_b
