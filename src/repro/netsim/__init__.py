"""Packet-level datacenter network simulator (the ns-2 stand-in for Figure 19)."""

from .elements import (
    DropTailEcnQueue,
    Host,
    Link,
    PFabricPortQueue,
    PortQueue,
    Switch,
    approx_pfabric_queue_factory,
)
from .experiment import (
    FabricExperimentConfig,
    FabricRunResult,
    SCHEMES,
    multiqueue_pfabric_scheme,
    run_fabric_experiment,
    run_figure19,
)
from .simulator import EventHandle, Simulator
from .topology import FabricConfig, LeafSpineFabric
from .transport import DctcpTransport, FlowRecord, PFabricTransport

__all__ = [
    "DctcpTransport",
    "DropTailEcnQueue",
    "EventHandle",
    "FabricConfig",
    "FabricExperimentConfig",
    "FabricRunResult",
    "FlowRecord",
    "Host",
    "LeafSpineFabric",
    "Link",
    "PFabricPortQueue",
    "PFabricTransport",
    "PortQueue",
    "SCHEMES",
    "Simulator",
    "Switch",
    "approx_pfabric_queue_factory",
    "multiqueue_pfabric_scheme",
    "run_fabric_experiment",
    "run_figure19",
]
