"""Figure 9: CDF of CPU cores used for networking — FQ/pacing vs Carousel vs Eiffel.

Paper setup: 20k paced flows at an aggregate 24 Gbps on EC2; 100 one-second
dstat samples.  Here: the scaled default configuration of the simulated
kernel substrate (500 flows, 2.4 Gbps, 10 ms samples) with CPU measured by
the per-operation cost model.  The paper's headline: Eiffel uses ~14x fewer
cores than FQ and ~3x fewer than Carousel at the median.
"""

from conftest import report

from repro.analysis import Series, format_series
from repro.kernel import ShapingExperimentConfig, run_shaping_experiment

CONFIG = ShapingExperimentConfig()


def run_experiment():
    return run_shaping_experiment(CONFIG)


def test_fig09_cores_cdf(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
    series = []
    for name in ("fq", "carousel", "eiffel"):
        cdf = result.cores_cdf(name)
        current = Series(name=name)
        for q in quantiles:
            current.add(q, round(cdf.quantile(q), 4))
        series.append(current)
    text = format_series(
        "CDF of cores used for networking (x = CDF fraction)",
        series,
        x_label="fraction",
        y_label="cores",
    )
    medians = result.median_cores()
    text += (
        f"\n\nmedian cores: {medians}"
        f"\nEiffel vs FQ: {result.speedup_over('fq'):.1f}x fewer cores (paper: ~14x)"
        f"\nEiffel vs Carousel: {result.speedup_over('carousel'):.1f}x fewer cores (paper: ~3x)"
    )
    report("Figure 9 — kernel shaping CPU cost", text)
    benchmark.extra_info["median_cores"] = {k: round(v, 4) for k, v in medians.items()}
    benchmark.extra_info["speedup_vs_fq"] = round(result.speedup_over("fq"), 2)
    benchmark.extra_info["speedup_vs_carousel"] = round(
        result.speedup_over("carousel"), 2
    )
    assert medians["eiffel"] < medians["carousel"] < medians["fq"]
