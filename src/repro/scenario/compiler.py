"""The scenario compiler: bind a validated spec onto the existing pieces.

:func:`compile_scenario` turns a :class:`~repro.scenario.spec.ScenarioSpec`
into a :class:`CompiledScenario` — a ready-to-run closure over the concrete
building blocks the spec names (a :class:`~repro.runtime.ShardedRuntime`,
the leaf-spine fabric of Figure 19, or the single-core BESS pipeline plus
batching sweep of Figure 13) — and :meth:`CompiledScenario.run` executes it
into a :class:`ScenarioResult` carrying the aggregated telemetry and the
verdicts of the spec's declarative assertion blocks.

Determinism: the spec's single ``seed`` pins every random stream.

* runtime kind — the Zipf traffic sampler draws from
  ``derive_seed(seed, "traffic-zipf")``, shard placement hashes with
  ``derive_seed(seed, "shard-hash")`` and the ingress RSS lane hash with
  ``derive_seed(seed, "ingress-lane")`` (three decorrelated streams; a
  correlated shard/lane hash would make every RX core feed a fixed subset
  of shards).
* fabric kind — ``seed`` is handed to :class:`~repro.traffic.FlowWorkload`
  verbatim, whose documented contract already derives its three sub-streams
  (sizes, gaps, endpoints) as ``seed`` / ``seed+1`` / ``seed+2``.
* bess kind — fully deterministic; there is no random stream to seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .spec import ScenarioSpec, derive_seed, validate

#: 32-bit mask for derived hash seeds (the RSS mix is a 32-bit avalanche).
_HASH_BITS = 32


class ScenarioAssertionError(AssertionError):
    """One or more of a scenario's declarative assertions failed.

    ``failures`` keeps every failed assertion's message, so a fuzz run
    reports the whole broken surface of a counterexample, not just the
    first facet.
    """

    def __init__(self, name: str, failures: List[str]) -> None:
        self.failures = list(failures)
        detail = "\n  - ".join(failures)
        super().__init__(f"scenario {name!r}: {len(failures)} assertion(s) failed:\n  - {detail}")


@dataclass
class ScenarioResult:
    """Everything a finished scenario run exposes for assertions and reports.

    The flow-indexed packet-id ledgers (``offered_by_flow`` /
    ``delivered_by_flow``) are the raw material of the conservation and
    per-flow-FIFO invariants; ``residual`` is the post-drain state audit
    (see :meth:`~repro.runtime.ShardedRuntime.residual_state`); ``failures``
    holds the assertion verdicts (empty = all green).  Kind-specific
    payloads (``telemetry`` / ``fabric`` / ``series`` / ``sweep``) are
    ``None`` where they do not apply.
    """

    spec: ScenarioSpec
    kind: str
    offered: int = 0
    transmitted: int = 0
    dropped: int = 0
    telemetry: Optional[Any] = None  # RuntimeTelemetry (runtime kind)
    offered_by_flow: Dict[int, List[int]] = field(default_factory=dict)
    delivered_by_flow: Dict[int, List[int]] = field(default_factory=dict)
    residual: Dict[str, int] = field(default_factory=dict)
    fabric: Optional[Dict[str, List[Any]]] = None  # scheme -> [FabricRunResult]
    series: Optional[Dict[str, Any]] = None  # label -> Series (Figure 13)
    sweep: Optional[dict] = None  # batching-sweep artifact payload
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every enabled assertion held."""
        return not self.failures

    def check(self) -> "ScenarioResult":
        """Raise :class:`ScenarioAssertionError` if any assertion failed."""
        if self.failures:
            raise ScenarioAssertionError(self.spec.name, self.failures)
        return self

    def summary(self) -> dict:
        """JSON-friendly headline numbers (what a CI log wants to show)."""
        out: dict = {
            "name": self.spec.name,
            "kind": self.kind,
            "ok": self.ok,
            "failures": list(self.failures),
        }
        if self.kind == "runtime":
            out.update(
                offered=self.offered,
                transmitted=self.transmitted,
                dropped=self.dropped,
                residual=dict(self.residual),
            )
            if self.telemetry is not None:
                out["bottleneck_cycles"] = self.telemetry.bottleneck_cycles
        elif self.kind == "fabric" and self.fabric is not None:
            out["fct"] = {
                scheme: {
                    run.load: round(run.small_flow_avg(), 3) for run in runs
                }
                for scheme, runs in self.fabric.items()
            }
        elif self.kind == "bess":
            if self.series is not None:
                out["rates_mbps"] = {
                    label: dict(zip(series.x, series.y))
                    for label, series in self.series.items()
                }
            if self.sweep is not None:
                out["sweep_queues"] = sorted(self.sweep["queues"])
        return out


@dataclass
class CompiledScenario:
    """A spec bound to concrete building blocks, ready to run.

    For the runtime kind ``runtime``/``source`` are live objects a test can
    poke before running; the other kinds bind lazily inside ``run`` (their
    builders are plain experiment functions without intermediate state).
    """

    spec: ScenarioSpec
    runtime: Optional[Any] = None  # ShardedRuntime (runtime kind)
    source: Optional[Any] = None  # OpenLoopBurstSource (runtime kind)
    _runner: Callable[["CompiledScenario"], ScenarioResult] = None  # type: ignore[assignment]

    def run(self) -> ScenarioResult:
        """Execute the scenario and evaluate its assertion blocks.

        Returns the result with ``failures`` populated; call
        :meth:`ScenarioResult.check` to turn failures into an exception.
        """
        return self._runner(self)


# -- runtime kind ------------------------------------------------------------


def _queue_factory_for(name: str) -> Callable:
    """Resolve a spec queue name to a ``BucketSpec -> queue`` factory."""
    from ..core.queues import (
        ApproximateGradientQueue,
        CircularFFSQueue,
        GradientQueue,
        HierarchicalFFSQueue,
    )
    from ..core.queues.gradient import alpha_for_buckets

    if name == "circular_ffs":
        return lambda spec: CircularFFSQueue(spec)
    if name == "hierarchical_ffs":
        return lambda spec: HierarchicalFFSQueue(spec)
    if name == "gradient":
        return lambda spec: GradientQueue(spec)
    assert name == "approx_gradient", name
    return lambda spec: ApproximateGradientQueue(
        spec, alpha=alpha_for_buckets(spec.num_buckets)
    )


def _build_runtime(spec: ScenarioSpec):
    """Instantiate the ShardedRuntime and traffic source a spec describes."""
    from ..runtime import ShardedRuntime
    from ..runtime.faults import FaultPlan
    from ..runtime.observability import FlightRecorder, MetricsTimeline
    from ..runtime.sharder import FlowSharder
    from ..traffic import OpenLoopBurstSource, ZipfFlowSampler

    tracer = None
    if spec.observability.tracer:
        tracer = FlightRecorder(capacity=spec.observability.trace_capacity)
    timeline = None
    if spec.observability.timeline:
        timeline = MetricsTimeline(
            interval_ns=spec.observability.timeline_interval_ns
            or spec.runtime.quantum_ns
        )
    fault_plan = None
    if spec.faults.kinds:
        fault_plan = FaultPlan.from_seed(
            derive_seed(spec.seed, "faults"),
            num_shards=spec.runtime.shards,
            kinds=spec.faults.kinds,
            events=spec.faults.events,
            max_tick=spec.faults.max_tick,
            max_handoff_drops=spec.faults.max_handoff_drops,
            ingress_lanes=spec.ingress.cores,
        )
    sharder = FlowSharder(
        spec.runtime.shards,
        policy=spec.runtime.sharding,
        hash_seed=derive_seed(spec.seed, "shard-hash", bits=_HASH_BITS),
    )
    runtime = ShardedRuntime(
        num_shards=spec.runtime.shards,
        sharder=sharder,
        quantum_ns=spec.runtime.quantum_ns,
        batch_per_quantum=spec.runtime.batch_per_quantum,
        flow_rates=dict(spec.policy.flow_rates) or None,
        default_rate_bps=spec.policy.default_rate_bps,
        horizon_ns=spec.policy.horizon_ns,
        num_buckets=spec.policy.num_buckets,
        queue_factory=_queue_factory_for(spec.policy.queue),
        mailbox_capacity=spec.ingress.mailbox_capacity,
        rebalance_interval_ns=spec.runtime.rebalance_interval_ns,
        steal_enabled=spec.runtime.stealing,
        steal_batch=spec.runtime.steal_batch,
        steal_min_backlog=spec.runtime.steal_min_backlog,
        ingress_cores=spec.ingress.cores,
        admission=None if spec.ingress.admission == "none" else spec.ingress.admission,
        rx_ring_capacity=spec.ingress.rx_ring_capacity,
        rx_burst=spec.ingress.rx_burst,
        ingress_backpressure=spec.ingress.backpressure,
        ingress_hash_seed=derive_seed(spec.seed, "ingress-lane", bits=_HASH_BITS),
        shard_backlog_limit=spec.ingress.shard_backlog_limit,
        gc_interval_packets=spec.runtime.gc_interval_packets,
        gc_sweep_limit=spec.runtime.gc_sweep_limit,
        backend=spec.runtime.backend,
        fault_plan=fault_plan,
        lease_deadline_ns=spec.faults.lease_deadline_ns,
        supervise_interval_ns=spec.faults.supervise_interval_ns,
        record_transmits=True,
        latency_histograms=spec.observability.latency_histograms,
        tracer=tracer,
        metrics_timeline=timeline,
    )
    if spec.traffic.pattern == "zipf":
        sampler = ZipfFlowSampler(
            spec.traffic.num_flows,
            skew=spec.traffic.zipf_skew,
            seed=derive_seed(spec.seed, "traffic-zipf"),
        )
        flow_sampler = lambda index: sampler.sample_flow()  # noqa: E731
    else:
        flow_sampler = None
    source = OpenLoopBurstSource(
        offered_pps=spec.traffic.offered_pps,
        burst_size=spec.traffic.burst_size,
        packet_bytes=spec.traffic.packet_bytes,
        num_flows=spec.traffic.num_flows,
        flow_sampler=flow_sampler,
    )
    return runtime, source


def _run_runtime(compiled: CompiledScenario) -> ScenarioResult:
    spec = compiled.spec
    runtime, source = compiled.runtime, compiled.source
    result = ScenarioResult(spec=spec, kind="runtime")

    for when_ns, burst in source.bursts(spec.traffic.total_packets):
        for packet in burst:
            result.offered_by_flow.setdefault(packet.flow_id, []).append(
                packet.packet_id
            )
            result.offered += 1
        runtime.submit_at(when_ns, burst)
    runtime.run()

    for _now_ns, packet in runtime.transmit_log:
        result.delivered_by_flow.setdefault(packet.flow_id, []).append(
            packet.packet_id
        )
    telemetry = runtime.telemetry()
    result.telemetry = telemetry
    result.transmitted = telemetry.transmitted
    # Injected handoff drops and crash-lost packets are accounted drops:
    # conservation holds under faults because every packet is either
    # delivered or attributed to a counted loss.
    result.dropped = (
        telemetry.ingress_drops
        + telemetry.admission_drops
        + telemetry.faults.get("handoff_drops", 0)
        + telemetry.faults.get("packets_lost", 0)
    )
    result.residual = runtime.residual_state()
    result.failures = _evaluate_runtime_assertions(spec, result)
    return result


def _is_subsequence(needle: List[int], haystack: List[int]) -> bool:
    it = iter(haystack)
    return all(item in it for item in needle)


def _evaluate_runtime_assertions(
    spec: ScenarioSpec, result: ScenarioResult
) -> List[str]:
    checks = spec.assertions
    failures: List[str] = []

    if checks.conservation:
        if result.transmitted + result.dropped != result.offered:
            failures.append(
                "conservation: transmitted + dropped != offered "
                f"({result.transmitted} + {result.dropped} != {result.offered})"
            )
        offered_ids = sorted(
            pid for ids in result.offered_by_flow.values() for pid in ids
        )
        delivered_ids = sorted(
            pid for ids in result.delivered_by_flow.values() for pid in ids
        )
        if result.dropped == 0:
            if delivered_ids != offered_ids:
                failures.append(
                    "conservation: zero drops but the delivered packet-id "
                    "multiset differs from the offered one"
                )
        elif not set(delivered_ids) <= set(offered_ids):
            failures.append(
                "conservation: packets delivered that were never offered"
            )
        ghosts = set(result.delivered_by_flow) - set(result.offered_by_flow)
        if ghosts:
            failures.append(
                f"conservation: packets delivered for unoffered flows {sorted(ghosts)}"
            )

    if checks.per_flow_fifo:
        for flow_id, offered in result.offered_by_flow.items():
            delivered = result.delivered_by_flow.get(flow_id, [])
            if result.dropped == 0:
                if delivered != offered:
                    failures.append(
                        f"per_flow_fifo: flow {flow_id} delivered out of order "
                        "(or incompletely) with zero drops"
                    )
                    break
            elif not _is_subsequence(delivered, offered):
                failures.append(
                    f"per_flow_fifo: flow {flow_id}'s deliveries are not a "
                    "subsequence of its arrivals"
                )
                break

    if checks.no_stranded_state:
        for gauge, value in result.residual.items():
            if value:
                failures.append(
                    f"no_stranded_state: residual {gauge} = {value} after drain"
                )

    if checks.min_transmitted and result.transmitted < checks.min_transmitted:
        failures.append(
            f"min_transmitted: {result.transmitted} < {checks.min_transmitted}"
        )
    if checks.max_drop_fraction is not None and result.offered:
        fraction = result.dropped / result.offered
        if fraction > checks.max_drop_fraction:
            failures.append(
                f"max_drop_fraction: {fraction:.4f} > {checks.max_drop_fraction}"
            )
    telemetry = result.telemetry
    if checks.min_mops is not None and telemetry is not None:
        if telemetry.bottleneck_cycles > 0:
            seconds = telemetry.bottleneck_cycles / spec.topology.cycles_per_second
            mops = result.transmitted / seconds / 1e6
            if mops < checks.min_mops:
                failures.append(f"min_mops: {mops:.3f} < {checks.min_mops}")
    if checks.max_stall_fraction is not None and telemetry is not None:
        ticks = sum(core.stats.ticks for core in telemetry.ingress)
        stalled = sum(core.stats.stalled_ticks for core in telemetry.ingress)
        if ticks:
            fraction = stalled / ticks
            if fraction > checks.max_stall_fraction:
                failures.append(
                    f"max_stall_fraction: {fraction:.4f} > {checks.max_stall_fraction}"
                )
    if checks.p99_latency_ns is not None and telemetry is not None:
        # Guaranteed present: validation requires latency_histograms armed.
        e2e = telemetry.latency["e2e"]
        if e2e.count:
            p99 = e2e.quantile(0.99)
            if p99 > checks.p99_latency_ns:
                failures.append(
                    f"p99_latency_ns: {p99} > {checks.p99_latency_ns}"
                )
    return failures


# -- fabric kind -------------------------------------------------------------


def _run_fabric(compiled: CompiledScenario) -> ScenarioResult:
    from ..netsim import FabricConfig, FabricExperimentConfig, run_figure19

    spec = compiled.spec
    config = FabricExperimentConfig(
        fabric=FabricConfig(
            num_leaves=spec.topology.num_leaves,
            num_spines=spec.topology.num_spines,
            hosts_per_leaf=spec.topology.hosts_per_leaf,
            edge_rate_bps=spec.topology.edge_rate_bps,
            core_rate_bps=spec.topology.core_rate_bps,
            link_propagation_ns=spec.topology.link_propagation_ns,
        ),
        workload=spec.traffic.workload,
        num_flows=spec.traffic.num_flows,
        # FlowWorkload's documented contract already derives its three
        # sub-streams from one seed, so the scenario seed maps verbatim.
        seed=spec.seed,
    )
    fabric = run_figure19(
        list(spec.traffic.loads), schemes=list(spec.policy.schemes), config=config
    )
    result = ScenarioResult(spec=spec, kind="fabric", fabric=fabric)
    result.failures = _evaluate_fabric_assertions(spec, result)
    return result


def _evaluate_fabric_assertions(
    spec: ScenarioSpec, result: ScenarioResult
) -> List[str]:
    checks = spec.assertions
    failures: List[str] = []
    fabric = result.fabric or {}

    if checks.min_completion_rate is not None:
        for scheme, runs in fabric.items():
            for run in runs:
                rate = run.completion_rate()
                if rate < checks.min_completion_rate:
                    failures.append(
                        f"min_completion_rate: {scheme}@load={run.load} "
                        f"completed {rate:.3f} < {checks.min_completion_rate}"
                    )
    if checks.fct_small_flow_advantage:
        pfabric = fabric["pfabric"][-1]
        dctcp = fabric["dctcp"][-1]
        if not pfabric.small_flow_avg() < dctcp.small_flow_avg():
            failures.append(
                "fct_small_flow_advantage: pFabric small-flow FCT "
                f"{pfabric.small_flow_avg():.3f} not below DCTCP's "
                f"{dctcp.small_flow_avg():.3f} at load {pfabric.load}"
            )
    if checks.fct_approx_tolerance is not None:
        exact = fabric["pfabric"][-1]
        approx = fabric["pfabric_approx"][-1]
        tolerance = checks.fct_approx_tolerance
        gap = abs(approx.small_flow_avg() - exact.small_flow_avg())
        if gap > max(tolerance, tolerance * exact.small_flow_avg()):
            failures.append(
                f"fct_approx_tolerance: |approx - exact| = {gap:.3f} exceeds "
                f"{tolerance} (abs or relative) at load {exact.load}"
            )
    return failures


# -- bess kind ---------------------------------------------------------------


def _run_bess(compiled: CompiledScenario) -> ScenarioResult:
    from .figures import run_batching_sweep_from_spec, run_figure13_from_spec

    spec = compiled.spec
    result = ScenarioResult(
        spec=spec,
        kind="bess",
        series=run_figure13_from_spec(spec),
        sweep=run_batching_sweep_from_spec(spec),
    )
    result.failures = _evaluate_bess_assertions(spec, result)
    return result


def _evaluate_bess_assertions(
    spec: ScenarioSpec, result: ScenarioResult
) -> List[str]:
    checks = spec.assertions
    failures: List[str] = []
    if checks.batch_amortises_at is not None and result.sweep is not None:
        for name, by_size in result.sweep["queues"].items():
            baseline = by_size["1"]["drain_cycles_per_packet"]
            for size in result.sweep["batch_sizes"]:
                if size < checks.batch_amortises_at:
                    continue
                batched = by_size[str(size)]["drain_cycles_per_packet"]
                if not batched < baseline:
                    failures.append(
                        f"batch_amortises_at: {name} batch={size} drain "
                        f"({batched:.1f}) not below per-packet path ({baseline:.1f})"
                    )
    return failures


# -- entry points ------------------------------------------------------------


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Validate and bind a spec; returns a ready-to-run scenario.

    Raises a typed :class:`~repro.scenario.spec.ScenarioSpecError` subclass
    (naming the offending field) for any invalid spec — nothing is built
    from a spec that would fail mid-run.
    """
    validate(spec)
    if spec.topology.kind == "runtime":
        runtime, source = _build_runtime(spec)
        return CompiledScenario(
            spec=spec, runtime=runtime, source=source, _runner=_run_runtime
        )
    if spec.topology.kind == "fabric":
        return CompiledScenario(spec=spec, _runner=_run_fabric)
    return CompiledScenario(spec=spec, _runner=_run_bess)


def run_scenario(spec: ScenarioSpec, check: bool = True) -> ScenarioResult:
    """Compile, run and (by default) enforce a spec's assertion blocks."""
    result = compile_scenario(spec).run()
    return result.check() if check else result


__all__ = [
    "CompiledScenario",
    "ScenarioAssertionError",
    "ScenarioResult",
    "compile_scenario",
    "run_scenario",
]
