"""Unit tests for the analysis helpers and Table 1 data."""

import pytest

from repro.analysis import (
    Cdf,
    FEATURE_MATRIX,
    Series,
    Table,
    feature_matrix_rows,
    format_feature_matrix,
    format_series,
    format_table,
    normalized_fct,
    percentile,
    summarize,
)


class TestPercentileAndCdf:
    def test_percentile_basics(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile(values, 50) == pytest.approx(50.5)
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_cdf(self):
        cdf = Cdf([5.0, 1.0, 3.0])
        assert cdf.median() == 3.0
        assert cdf.at(3.0) == pytest.approx(2 / 3)
        assert cdf.quantile(1.0) == 5.0
        points = cdf.points(num=3)
        assert points[0][0] == 1.0
        assert points[-1][0] == 5.0
        with pytest.raises(ValueError):
            Cdf([])

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["count"] == 4

    def test_normalized_fct(self):
        # A flow finishing in exactly its ideal time normalises to 1.
        ideal = 0.001 + 100_000 * 8 / 10e9
        assert normalized_fct(ideal, 100_000, 10e9, 0.001) == pytest.approx(1.0)
        assert normalized_fct(2 * ideal, 100_000, 10e9, 0.001) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            normalized_fct(1.0, 0, 10e9, 0.001)


class TestTablesAndSeries:
    def test_series(self):
        series = Series(name="x")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert len(series) == 2

    def test_table_row_validation(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_table_contains_values(self):
        table = Table(title="My table", columns=["name", "value"])
        table.add_row("fq", 14.0)
        rendered = format_table(table)
        assert "My table" in rendered
        assert "fq" in rendered
        assert "14" in rendered

    def test_format_series_merges_x_axes(self):
        a = Series(name="a", x=[1, 2], y=[10.0, 20.0])
        b = Series(name="b", x=[2, 3], y=[200.0, 300.0])
        rendered = format_series("fig", [a, b], x_label="flows", y_label="Mbps")
        assert "fig" in rendered
        assert "flows" in rendered
        assert "-" in rendered  # missing value placeholder


class TestFeatureMatrix:
    def test_eiffel_row_claims(self):
        eiffel = next(e for e in FEATURE_MATRIX if e.system == "Eiffel")
        assert eiffel.efficiency == "O(1)"
        assert eiffel.work_conserving and eiffel.shaping
        assert eiffel.placement == "SW"

    def test_carousel_not_work_conserving(self):
        carousel = next(e for e in FEATURE_MATRIX if e.system == "Carousel")
        assert not carousel.work_conserving

    def test_rows_and_formatting(self):
        rows = feature_matrix_rows()
        assert len(rows) == 6
        rendered = format_feature_matrix()
        assert "Eiffel" in rendered and "PIFO" in rendered

    def test_claims_match_implementations(self):
        # The implemented timing wheel (Carousel substrate) indeed lacks
        # ExtractMin-style eligibility, while the Eiffel queues provide it.
        from repro.core.queues import BucketSpec, CircularFFSQueue, TimingWheel

        wheel = TimingWheel(num_slots=16)
        assert not hasattr(wheel, "extract_min")
        cffs = CircularFFSQueue(BucketSpec(num_buckets=16))
        assert hasattr(cffs, "extract_min")
