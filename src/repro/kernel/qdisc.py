"""Qdisc framework: the event-driven kernel substrate for Use Case 1.

A queueing discipline (qdisc) sits between the TCP stack and the NIC driver.
The simulation models the parts of that environment that dominate the CPU
comparison in Figures 9 and 10:

* every enqueue and every dequeue happens under the **global qdisc lock**;
* shaping qdiscs program an **hrtimer** for the next transmission time and do
  their dequeue work in softirq context when it fires;
* the TCP stack limits the number of in-flight packets per socket (**TSQ**),
  so the qdisc backlog stays bounded;
* every packet also pays a fixed "rest of the networking stack" overhead.

Concrete qdiscs (:mod:`repro.kernel.fq_pacing`, :mod:`repro.kernel.carousel`,
:mod:`repro.kernel.eiffel_qdisc`) implement ``enqueue_packet``,
``dequeue_due`` and ``soonest_deadline_ns``; the :class:`KernelSimulation`
drives arrivals and timers and charges every operation to a per-qdisc
:class:`~repro.cpu.cost_model.CostModel` split into "system" (enqueue path)
and "softirq" (timer path) accounts, which is exactly the breakdown of
Figure 10.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

from .timer import HrTimer
from ..core.model.packet import Packet
from ..cpu import CostModel, CpuMeter


@dataclass
class QdiscStats:
    """Packet-level counters of one qdisc."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    timer_fires: int = 0
    timer_programs: int = 0
    backlog_peak: int = 0


class Qdisc(abc.ABC):
    """Base class for simulated queueing disciplines."""

    name: str = "qdisc"

    def __init__(self, timer_granularity_ns: int = 1) -> None:
        self.timer = HrTimer(granularity_ns=timer_granularity_ns)
        self.stats = QdiscStats()
        #: Separate cost accounts for the enqueue path ("system") and the
        #: timer path ("softirq"), merged for the Figure 9 total.
        self.system_cost = CostModel()
        self.softirq_cost = CostModel()

    # -- abstract surface -----------------------------------------------------------

    @abc.abstractmethod
    def enqueue_packet(self, packet: Packet, now_ns: int) -> None:
        """Admit one packet (called in process/system context)."""

    @abc.abstractmethod
    def dequeue_due(self, now_ns: int, budget: int = 1 << 30) -> List[Packet]:
        """Release every packet whose transmission time has passed."""

    @abc.abstractmethod
    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        """Next time the qdisc needs to run (``None`` when idle)."""

    # -- shared accounting helpers -----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Packets currently queued (subclasses keep ``_backlog`` updated)."""
        return getattr(self, "_backlog", 0)

    def total_cycles(self) -> float:
        """Cycles charged across both contexts."""
        return self.system_cost.total_cycles + self.softirq_cost.total_cycles

    def reset_costs(self) -> None:
        """Zero both cost accounts (used between measurement intervals)."""
        self.system_cost.reset()
        self.softirq_cost.reset()


@dataclass
class IntervalSample:
    """CPU usage measured over one sampling interval (one dstat line)."""

    start_ns: int
    duration_ns: int
    packets: int
    system_cycles: float
    softirq_cycles: float

    @property
    def total_cycles(self) -> float:
        """Cycles across both contexts."""
        return self.system_cycles + self.softirq_cycles

    def cores_used(self, meter: CpuMeter) -> float:
        """Total cores used during the interval."""
        return meter.cores_used(self.total_cycles, self.duration_ns / 1e9)

    def system_cores(self, meter: CpuMeter) -> float:
        """Cores spent in system (enqueue-path) context."""
        return meter.cores_used(self.system_cycles, self.duration_ns / 1e9)

    def softirq_cores(self, meter: CpuMeter) -> float:
        """Cores spent servicing timers (softirq context)."""
        return meter.cores_used(self.softirq_cycles, self.duration_ns / 1e9)


class KernelSimulation:
    """Drives a qdisc with arrival events and timers, collecting CPU samples.

    Args:
        qdisc: the queueing discipline under test.
        tsq_limit: maximum packets a single flow may have queued (TCP Small
            Queues); arrivals beyond the limit are deferred by the stack and
            re-offered after the flow drains, modelled here as a drop +
            re-enqueue charge on the sender.
        link_rate_bps: NIC line rate; released packets are serialised at this
            rate but the NIC itself costs no scheduler CPU.
        meter: converts cycles to cores for reporting.
    """

    def __init__(
        self,
        qdisc: Qdisc,
        tsq_limit: int = 2,
        link_rate_bps: float = 25e9,
        meter: Optional[CpuMeter] = None,
    ) -> None:
        if tsq_limit <= 0:
            raise ValueError("tsq_limit must be positive")
        self.qdisc = qdisc
        self.tsq_limit = tsq_limit
        self.link_rate_bps = link_rate_bps
        self.meter = meter or CpuMeter()
        self._per_flow_backlog: Dict[int, int] = {}
        self.transmitted: int = 0
        self.deferred: int = 0

    # -- core event processing -------------------------------------------------------

    def _charge_enqueue(self, now_ns: int) -> None:
        cost = self.qdisc.system_cost
        cost.charge("lock")
        cost.charge("packet_overhead")

    def _run_timer(self, now_ns: int) -> List[Packet]:
        """Fire the qdisc timer and dequeue due packets in softirq context."""
        cost = self.qdisc.softirq_cost
        cost.charge("timer_fire")
        cost.charge("lock")
        self.qdisc.stats.timer_fires += 1
        released = self.qdisc.dequeue_due(now_ns)
        for packet in released:
            packet.departure_ns = now_ns
            self._per_flow_backlog[packet.flow_id] = max(
                0, self._per_flow_backlog.get(packet.flow_id, 1) - 1
            )
        self.transmitted += len(released)
        self._reprogram_timer(now_ns)
        return released

    def _reprogram_timer(self, now_ns: int) -> None:
        deadline = self.qdisc.soonest_deadline_ns(now_ns)
        if deadline is None:
            self.qdisc.timer.cancel()
            return
        self.qdisc.softirq_cost.charge("timer_program")
        self.qdisc.stats.timer_programs += 1
        self.qdisc.timer.program(max(deadline, now_ns + 1))

    def run_interval(
        self,
        arrivals: List[tuple[int, Packet]],
        start_ns: int,
        duration_ns: int,
    ) -> IntervalSample:
        """Process one measurement interval and return its CPU sample.

        ``arrivals`` must be sorted by arrival time and fall within the
        interval.  Between arrivals the timer is fired whenever it is due.
        """
        self.qdisc.reset_costs()
        end_ns = start_ns + duration_ns
        index = 0
        now = start_ns
        packets_processed = 0
        while now < end_ns:
            next_arrival = arrivals[index][0] if index < len(arrivals) else end_ns
            timer_expiry = (
                self.qdisc.timer.expiry_ns if self.qdisc.timer.armed else None
            )
            if timer_expiry is not None and timer_expiry <= min(next_arrival, end_ns):
                now = timer_expiry
                self.qdisc.timer.fire()
                self._run_timer(now)
                continue
            if index >= len(arrivals):
                break
            now, packet = arrivals[index]
            index += 1
            if now >= end_ns:
                break
            backlog = self._per_flow_backlog.get(packet.flow_id, 0)
            if backlog >= self.tsq_limit:
                # TSQ defers the packet inside the TCP stack; it will be
                # offered again later and costs the stack (not the qdisc).
                self.deferred += 1
                continue
            self._charge_enqueue(now)
            self.qdisc.enqueue_packet(packet, now)
            self._per_flow_backlog[packet.flow_id] = backlog + 1
            self.qdisc.stats.enqueued += 1
            self.qdisc.stats.backlog_peak = max(
                self.qdisc.stats.backlog_peak, self.qdisc.backlog
            )
            packets_processed += 1
            # The qdisc watchdog is re-armed when the new packet's deadline
            # precedes the currently programmed expiry (or nothing is armed).
            deadline = self.qdisc.soonest_deadline_ns(now)
            if deadline is not None and (
                not self.qdisc.timer.armed or deadline < self.qdisc.timer.expiry_ns
            ):
                self._reprogram_timer(now)
        # Drain any timer work still due before the interval closes.
        while self.qdisc.timer.armed and self.qdisc.timer.expiry_ns <= end_ns:
            now = self.qdisc.timer.fire()
            self._run_timer(now)
        return IntervalSample(
            start_ns=start_ns,
            duration_ns=duration_ns,
            packets=packets_processed,
            system_cycles=self.qdisc.system_cost.total_cycles,
            softirq_cycles=self.qdisc.softirq_cost.total_cycles,
        )

    # -- closed-loop (saturated senders) mode ----------------------------------------

    def _offer_packet(self, flow_id: int, size_bytes: int, now_ns: int) -> None:
        """Enqueue one packet for ``flow_id`` (the TCP stack handing over skb)."""
        packet = Packet(flow_id=flow_id, size_bytes=size_bytes, arrival_ns=now_ns)
        self._charge_enqueue(now_ns)
        self.qdisc.enqueue_packet(packet, now_ns)
        self._per_flow_backlog[flow_id] = self._per_flow_backlog.get(flow_id, 0) + 1
        self.qdisc.stats.enqueued += 1
        deadline = self.qdisc.soonest_deadline_ns(now_ns)
        if deadline is not None and (
            not self.qdisc.timer.armed or deadline < self.qdisc.timer.expiry_ns
        ):
            self._reprogram_timer(now_ns)

    def run_closed_loop_interval(
        self,
        flow_ids: List[int],
        start_ns: int,
        duration_ns: int,
        packet_bytes: int = 1500,
    ) -> IntervalSample:
        """One measurement interval with saturated senders (the paper's setup).

        Every flow always has ``tsq_limit`` packets inside the qdisc: whenever
        one of its packets is transmitted, the TCP stack immediately offers
        the next one (this is how 20k ``neper`` flows behind TSQ behave).
        All transmissions are therefore timer-driven, and the achieved
        aggregate rate equals the sum of the per-flow pacing rates.
        """
        self.qdisc.reset_costs()
        end_ns = start_ns + duration_ns
        packets_processed = 0
        # Top up every flow to its TSQ allowance.
        for flow_id in flow_ids:
            while self._per_flow_backlog.get(flow_id, 0) < self.tsq_limit:
                self._offer_packet(flow_id, packet_bytes, start_ns)
                packets_processed += 1
        if not self.qdisc.timer.armed:
            self._reprogram_timer(start_ns)
        while self.qdisc.timer.armed and self.qdisc.timer.expiry_ns <= end_ns:
            now = self.qdisc.timer.fire()
            cost = self.qdisc.softirq_cost
            cost.charge("timer_fire")
            cost.charge("lock")
            self.qdisc.stats.timer_fires += 1
            released = self.qdisc.dequeue_due(now)
            self.transmitted += len(released)
            for packet in released:
                packet.departure_ns = now
                self._per_flow_backlog[packet.flow_id] = max(
                    0, self._per_flow_backlog.get(packet.flow_id, 1) - 1
                )
                self._offer_packet(packet.flow_id, packet_bytes, now)
                packets_processed += 1
            self._reprogram_timer(now)
        return IntervalSample(
            start_ns=start_ns,
            duration_ns=duration_ns,
            packets=packets_processed,
            system_cycles=self.qdisc.system_cost.total_cycles,
            softirq_cycles=self.qdisc.softirq_cost.total_cycles,
        )


__all__ = ["IntervalSample", "KernelSimulation", "Qdisc", "QdiscStats"]
