"""Kernel substrate: event-driven qdisc simulation with CPU accounting."""

from .carousel import CarouselQdisc
from .eiffel_qdisc import EiffelQdisc
from .experiment import (
    ShapingExperimentConfig,
    ShapingExperimentResult,
    build_multiqueue_eiffel,
    build_qdiscs,
    run_shaping_experiment,
)
from .fq_pacing import FQPacingQdisc
from .qdisc import IntervalSample, KernelSimulation, Qdisc, QdiscStats
from .timer import HrTimer

__all__ = [
    "CarouselQdisc",
    "EiffelQdisc",
    "FQPacingQdisc",
    "HrTimer",
    "IntervalSample",
    "KernelSimulation",
    "Qdisc",
    "QdiscStats",
    "ShapingExperimentConfig",
    "ShapingExperimentResult",
    "build_multiqueue_eiffel",
    "build_qdiscs",
    "run_shaping_experiment",
]
