#!/usr/bin/env python3
"""Use Case 3 at fabric scale: pFabric vs DCTCP on a leaf-spine datacenter.

Runs the packet-level network simulator on a small leaf-spine fabric with the
web-search flow-size distribution, comparing DCTCP, pFabric with an exact
priority queue, and pFabric with Eiffel's approximate gradient queue at the
switches (the Figure 19 setup, scaled down so it finishes in about a minute).

Run:  python examples/pfabric_datacenter.py
"""

from repro.netsim import FabricConfig, FabricExperimentConfig, run_fabric_experiment


def main() -> None:
    config = FabricExperimentConfig(
        fabric=FabricConfig(num_leaves=2, num_spines=2, hosts_per_leaf=3),
        num_flows=120,
        seed=42,
    )
    load = 0.6
    print(f"websearch workload, {config.num_flows} flows, load {load:.0%}, "
          f"{config.fabric.num_hosts}-host leaf-spine\n")
    print(f"{'scheme':>16s} {'small avg':>10s} {'small p99':>10s} {'large avg':>10s} "
          f"{'completed':>10s} {'drops':>7s}")
    for scheme in ("dctcp", "pfabric", "pfabric_approx"):
        result = run_fabric_experiment(scheme, load, config)
        print(
            f"{scheme:>16s} {result.small_flow_avg():10.2f} "
            f"{result.small_flow_p99():10.2f} {result.large_flow_avg():10.2f} "
            f"{result.completion_rate():9.0%} {result.drops:7d}"
        )
    print("\nNormalized FCT = measured completion time / unloaded ideal time.")
    print("pFabric keeps short flows near the ideal; DCTCP queues delay them;")
    print("and the approximate queue tracks exact pFabric closely (the paper's claim).")


if __name__ == "__main__":
    main()
