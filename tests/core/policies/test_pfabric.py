"""Unit tests for the two pFabric scheduler implementations."""

import random

import pytest

from repro.core.model import Packet
from repro.core.policies import EiffelPFabricScheduler, HeapPFabricScheduler

IMPLEMENTATIONS = [EiffelPFabricScheduler, HeapPFabricScheduler]


def packet(flow_id, remaining, size=1500):
    return Packet(flow_id=flow_id, size_bytes=size).annotate(
        remaining_packets=remaining
    )


@pytest.mark.parametrize("scheduler_cls", IMPLEMENTATIONS)
class TestPFabricCommon:
    def test_smallest_remaining_flow_first(self, scheduler_cls):
        scheduler = scheduler_cls()
        scheduler.enqueue(packet(1, remaining=100))
        scheduler.enqueue(packet(2, remaining=3))
        scheduler.enqueue(packet(3, remaining=50))
        assert scheduler.dequeue().flow_id == 2
        assert scheduler.dequeue().flow_id == 3
        assert scheduler.dequeue().flow_id == 1

    def test_flow_fifo_order(self, scheduler_cls):
        scheduler = scheduler_cls()
        packets = [packet(1, remaining=10 - i) for i in range(5)]
        for item in packets:
            scheduler.enqueue(item)
        drained = [scheduler.dequeue().packet_id for _ in range(5)]
        assert drained == [p.packet_id for p in packets]

    def test_rank_tracks_minimum_remaining(self, scheduler_cls):
        # A flow that is almost done (small remaining) must preempt a flow
        # that arrived earlier with a larger remaining size.
        scheduler = scheduler_cls()
        scheduler.enqueue(packet(1, remaining=1000))
        scheduler.enqueue(packet(2, remaining=999))
        scheduler.enqueue(packet(2, remaining=1))  # flow 2 nearly finished
        assert scheduler.dequeue().flow_id == 2

    def test_on_dequeue_rerank_follows_figure14(self, scheduler_cls):
        # Figure 14: on dequeue, f.rank = min(p.rank, f.front().rank).  A flow
        # that was nearly finished keeps its small rank even if a new, larger
        # message queues behind it, so it completes before other flows.
        scheduler = scheduler_cls()
        scheduler.enqueue(packet(1, remaining=1))
        scheduler.enqueue(packet(1, remaining=10_000))
        scheduler.enqueue(packet(2, remaining=100))
        assert scheduler.dequeue().flow_id == 1
        assert scheduler.dequeue().flow_id == 1
        assert scheduler.dequeue().flow_id == 2

    def test_on_dequeue_rerank_head_dominates(self, scheduler_cls):
        # When the departing packet carried a *larger* remaining size than the
        # head (the normal monotonic case), the flow's rank becomes the
        # head's remaining size.
        scheduler = scheduler_cls()
        scheduler.enqueue(packet(1, remaining=500))
        scheduler.enqueue(packet(1, remaining=499))
        scheduler.enqueue(packet(2, remaining=499))
        first = scheduler.dequeue()
        assert first.flow_id in (1, 2)
        drained = [scheduler.dequeue().flow_id, scheduler.dequeue().flow_id]
        assert sorted(drained + [first.flow_id]) == [1, 1, 2]

    def test_conservation(self, scheduler_cls):
        rng = random.Random(3)
        scheduler = scheduler_cls()
        total = 0
        for flow in range(20):
            for index in range(rng.randrange(1, 10)):
                scheduler.enqueue(packet(flow, remaining=rng.randrange(1, 1000)))
                total += 1
        drained = 0
        while scheduler.dequeue() is not None:
            drained += 1
        assert drained == total
        assert scheduler.empty

    def test_unannotated_packets_fall_back_to_backlog(self, scheduler_cls):
        scheduler = scheduler_cls()
        scheduler.enqueue(Packet(flow_id=1))
        scheduler.enqueue(Packet(flow_id=1))
        scheduler.enqueue(Packet(flow_id=2))
        drained = [scheduler.dequeue() for _ in range(3)]
        assert all(p is not None for p in drained)


class TestImplementationEquivalence:
    def test_same_flow_service_order(self):
        # With a bucket granularity of one, the Eiffel implementation orders
        # flows exactly like the heap baseline.
        rng = random.Random(11)
        eiffel = EiffelPFabricScheduler(max_remaining=1024, buckets=1024)
        heap = HeapPFabricScheduler(max_remaining=1024)
        remainings = rng.sample(range(5, 1000), 10)
        events = list(enumerate(remainings))
        for flow, remaining in events:
            eiffel.enqueue(packet(flow, remaining))
            heap.enqueue(packet(flow, remaining))
        eiffel_order = [eiffel.dequeue().flow_id for _ in range(len(events))]
        heap_order = [heap.dequeue().flow_id for _ in range(len(events))]
        assert eiffel_order == heap_order

    def test_heap_counts_reheapify_work(self):
        heap = HeapPFabricScheduler()
        for flow in range(50):
            heap.enqueue(packet(flow, remaining=flow + 1))
        assert heap.heap_operations > 50
        before = heap.heap_operations
        while heap.dequeue() is not None:
            pass
        assert heap.heap_operations > before

    def test_active_flow_counters(self):
        eiffel = EiffelPFabricScheduler()
        for flow in range(5):
            eiffel.enqueue(packet(flow, remaining=10))
        assert eiffel.active_flows == 5
        heap = HeapPFabricScheduler()
        for flow in range(5):
            heap.enqueue(packet(flow, remaining=10))
        assert heap.active_flows == 5
