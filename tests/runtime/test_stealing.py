"""Work-stealing tests: channel, donor/acceptor protocol, differential runs.

The contract under test (see ``repro.runtime.stealing``): an idle shard may
take over a busy sibling's due window under a flow-ownership lease, and no
combination of stealing, rebalancing, pacing, or ingress pattern may ever
reorder a flow — only *where* and *when* packets are released may change,
never *in what order*.
"""

import random

import pytest

from repro.core.model.packet import Packet
from repro.runtime import (
    FlowLease,
    FlowSharder,
    ShardRebalancer,
    ShardWorker,
    ShardedRuntime,
    StealChannel,
    StealRequest,
)
from repro.traffic import ZipfFlowSampler

RATE_BPS = 10e9  # 1500 B => 1.2 us spacing
QUANTUM_NS = 10_000


def _packets(flow_ids, size_bytes=1500):
    packets = []
    per_flow: dict = {}
    for flow_id in flow_ids:
        index = per_flow.get(flow_id, 0)
        per_flow[flow_id] = index + 1
        packets.append(
            Packet(flow_id=flow_id, size_bytes=size_bytes).annotate(arrival_index=index)
        )
    return packets


def _flow_sequences(transmit_log, key="arrival_index"):
    sequences: dict = {}
    for _now, packet in transmit_log:
        sequences.setdefault(packet.flow_id, []).append(packet.metadata[key])
    return sequences


class TestStealChannel:
    def test_fifo_and_dedup(self):
        channel = StealChannel()
        assert channel.post(StealRequest(1, 0)) == "accepted"
        assert channel.post(StealRequest(2, 5)) == "accepted"
        assert channel.post(StealRequest(1, 9)) == "duplicate"
        assert len(channel) == 2
        assert channel.peek().thief_shard == 1
        assert channel.pop().thief_shard == 1
        # After popping, the same thief may park again.
        assert channel.post(StealRequest(1, 12)) == "accepted"
        assert [channel.pop().thief_shard for _ in range(2)] == [2, 1]
        assert channel.empty

    def test_capacity_bound_drops(self):
        channel = StealChannel(capacity=2)
        assert channel.post(StealRequest(1, 0)) == "accepted"
        assert channel.post(StealRequest(2, 0)) == "accepted"
        assert channel.post(StealRequest(3, 0)) == "full"
        assert channel.stats.dropped_full == 1
        channel.pop()
        assert channel.post(StealRequest(3, 1)) == "accepted"

    def test_stats(self):
        channel = StealChannel()
        channel.post(StealRequest(1, 0))
        channel.post(StealRequest(1, 0))
        channel.pop()
        stats = channel.stats
        assert stats.posted == 1
        assert stats.duplicates == 1
        assert stats.popped == 1
        assert stats.as_dict()["posted"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StealChannel(capacity=0)


class TestDonorSide:
    """Direct exercise of the ShardWorker donor API (grant/defer/end)."""

    def _loaded_worker(self, count=6, rate=None):
        worker = ShardWorker(0, default_rate_bps=rate)
        worker.mailbox.push_batch(_packets([7] * count))
        worker.ingest(now_ns=0)
        return worker

    def test_grant_takes_stamp_ordered_prefix_and_marks_loan(self):
        worker = self._loaded_worker(6)
        lease = worker.grant_lease(1, thief_shard=1, now_ns=0, max_packets=4, horizon_ns=0)
        assert isinstance(lease, FlowLease)
        assert [p.metadata["arrival_index"] for _s, p in lease.packets] == [0, 1, 2, 3]
        assert lease.flow_ids == (7,)
        assert worker.loaned_flows() == {7: 1}
        assert worker.flows_on_loan == 1
        assert worker.backlog == 2
        assert worker.steal.leases_granted == 1
        assert worker.steal.packets_lent == 4

    def test_single_outstanding_lease_per_donor(self):
        worker = self._loaded_worker(6)
        assert worker.grant_lease(1, 1, 0, 2, 0) is not None
        assert worker.grant_lease(2, 1, 0, 2, 0) is None

    def test_nothing_stealable_returns_none(self):
        worker = ShardWorker(0)
        assert worker.grant_lease(1, 1, 0, 8, 0) is None
        paced = self._loaded_worker(2, rate=1e6)  # 12 ms spacing
        paced.drain_due(0)  # release the head; the next stamp is 12 ms out
        assert paced.grant_lease(1, 1, now_ns=0, max_packets=8, horizon_ns=10_000) is None

    def test_drain_defers_on_loan_flow_until_lease_ends(self):
        worker = self._loaded_worker(6)
        lease = worker.grant_lease(1, 1, 0, 3, 0)
        # The flow's remaining due packets must not overtake the lease.
        assert worker.drain_due(now_ns=0) == []
        assert worker.steal.drains_deferred == 3
        assert worker.pending == 3
        flushed = worker.end_lease(lease, now_ns=0)
        assert [p.metadata["arrival_index"] for p in flushed] == [3, 4, 5]
        assert worker.pending == 0
        assert worker.loaned_flows() == {}
        assert worker.steal.leases_returned == 1

    def test_ingest_defers_arrivals_and_shaper_travels(self):
        worker = self._loaded_worker(4, rate=RATE_BPS)
        assert 7 in worker.pacing
        lease = worker.grant_lease(1, 1, now_ns=0, max_packets=8, horizon_ns=10_000)
        assert lease is not None
        # The pacing state left with the lease.
        assert 7 not in worker.pacing
        assert 7 in lease.shapers
        # New arrivals must wait for the shaper to come home before stamping.
        worker.mailbox.push_batch(_packets([7] * 2))
        assert worker.ingest(now_ns=5_000) == 0
        assert worker.steal.ingests_deferred == 2
        assert worker.pending == 2
        next_free_before = lease.shapers[7].next_free_ns
        worker.end_lease(lease, now_ns=5_000)
        # Shaper back home; deferred arrivals stamped with the pacing chain
        # carried on from where the lease left it.
        assert 7 in worker.pacing
        assert worker.backlog == 2
        assert worker.pacing.next_free_ns(7) >= next_free_before
        send_ats = [send_at for send_at, _p in [worker.queue.peek_min()]]
        assert send_ats[0] >= next_free_before

    def test_unpaced_flow_grants_without_shaper(self):
        worker = self._loaded_worker(3)
        lease = worker.grant_lease(1, 1, 0, 8, 0)
        assert lease.shapers == {}
        worker.end_lease(lease, 0)
        assert worker.loaned_flows() == {}


class TestAcceptorSide:
    def test_accept_splices_with_preserved_stamps_and_charges_cycles(self):
        victim = ShardWorker(0, default_rate_bps=RATE_BPS)
        victim.mailbox.push_batch(_packets([3] * 8))
        victim.ingest(now_ns=0)
        lease = victim.grant_lease(1, 1, now_ns=0, max_packets=8, horizon_ns=100_000)
        stamps = [send_at for send_at, _p in lease.packets]
        thief = ShardWorker(1)
        before = thief.cost.total_cycles
        assert thief.accept_lease(lease, now_ns=0) == len(lease.packets)
        assert thief.cost.total_cycles > before
        assert thief.steal.cycles_stolen == pytest.approx(thief.cost.total_cycles - before)
        assert thief.steal.packets_stolen == len(lease.packets)
        assert thief.backlog == len(lease.packets)
        assert thief.leases_held == 1
        # Release order and times follow the victim's stamps exactly.
        released = thief.drain_due(now_ns=stamps[-1])
        assert [p.metadata["arrival_index"] for p in released] == list(range(len(stamps)))
        assert all(p.metadata["stolen_from"] == 0 for p in released)
        thief.finish_held_lease()
        assert thief.leases_held == 0

    def test_holder_cannot_donate(self):
        victim = ShardWorker(0)
        victim.mailbox.push_batch(_packets([3] * 4))
        victim.ingest(now_ns=0)
        lease = victim.grant_lease(1, 1, 0, 2, 0)
        thief = ShardWorker(1)
        thief.accept_lease(lease, now_ns=0)
        # The thief's queue holds another shard's packets: no re-lending.
        assert thief.grant_lease(2, 2, 0, 2, 0) is None


class TestSharderOwnershipView:
    def test_lend_restore_and_lookup(self):
        sharder = FlowSharder(4)
        sharder.lend(9, 2)
        assert sharder.loan_shard(9) == 2
        assert sharder.loaned_flows() == {9: 2}
        assert sharder.stats.loans == 1
        sharder.restore(9)
        assert sharder.loan_shard(9) is None

    def test_lend_validates_shard(self):
        with pytest.raises(ValueError):
            FlowSharder(2).lend(1, 5)

    def test_rebalancer_skips_on_loan_flows(self):
        sharder = FlowSharder(2)
        for flow, shard in ((1, 0), (2, 0), (3, 1)):
            sharder.pin(flow, shard)
        sharder.record(1, 0, packets=60)
        sharder.record(2, 0, packets=40)
        sharder.record(3, 1, packets=10)
        # Without loans flow 2 would migrate (see test_sharding.py); with its
        # due window out on lease it must stay put.
        sharder.lend(2, 0)
        plan = ShardRebalancer(sharder, imbalance_threshold=1.1).plan()
        assert all(migration.flow_id != 2 for migration in plan)


def _elephant_runtime(**kwargs):
    """Two shards; flow 5 pinned to shard 0 so shard 1 is a pure thief."""
    sharder = FlowSharder(2)
    sharder.pin(5, 0)
    defaults = dict(
        sharder=sharder,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        steal_enabled=True,
        steal_min_backlog=1,
    )
    defaults.update(kwargs)
    return ShardedRuntime(2, **defaults)


class TestRuntimeStealing:
    def test_idle_shard_steals_and_fifo_holds(self):
        runtime = _elephant_runtime()
        runtime.submit_batch(_packets([5] * 40))
        runtime.run()
        telemetry = runtime.telemetry()
        assert telemetry.transmitted == 40
        assert telemetry.steals_succeeded > 0
        assert telemetry.packets_stolen > 0
        assert telemetry.steal_cycles > 0
        # The thief actually transmitted part of the elephant flow.
        assert runtime.workers[1].stats.transmitted > 0
        assert runtime.workers[1].steal.packets_stolen > 0
        sequences = _flow_sequences(runtime.transmit_log)
        assert sequences[5] == list(range(40))

    def test_stolen_packets_keep_pacing(self):
        runtime = _elephant_runtime()
        runtime.submit_batch(_packets([5] * 30))
        runtime.run()
        assert runtime.telemetry().packets_stolen > 0
        times = [now for now, _packet in runtime.transmit_log]
        spacing_ns = int(1500 * 8 / RATE_BPS * 1e9)
        for earlier, later in zip(times, times[1:]):
            # Quantum quantisation may delay a release but stealing must
            # never let the flow beat its configured rate.
            assert later - earlier >= spacing_ns - QUANTUM_NS

    def test_lease_returns_and_state_comes_home(self):
        runtime = _elephant_runtime()
        runtime.submit_batch(_packets([5] * 24))
        runtime.run()
        victim, thief = runtime.workers
        assert victim.flows_on_loan == 0
        assert thief.leases_held == 0
        assert runtime._open_leases == {}
        assert runtime.sharder.loaned_flows() == {}
        assert victim.steal.leases_granted == thief.steal.leases_received
        assert victim.steal.leases_returned == victim.steal.leases_granted
        assert victim.steal.packets_lent == thief.steal.packets_stolen

    def test_steal_disabled_means_no_steals(self):
        runtime = _elephant_runtime(steal_enabled=False)
        runtime.submit_batch(_packets([5] * 40))
        runtime.run()
        telemetry = runtime.telemetry()
        assert telemetry.steals_attempted == 0
        assert telemetry.steals_succeeded == 0
        assert runtime.workers[1].stats.transmitted == 0

    def test_single_shard_never_steals(self):
        runtime = ShardedRuntime(
            1, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS,
            steal_enabled=True, steal_min_backlog=1,
        )
        runtime.submit_batch(_packets([1, 2, 3] * 10))
        runtime.run()
        assert runtime.transmitted == 30
        assert runtime.telemetry().steals_attempted == 0

    def test_stale_request_dropped_when_thief_finds_work(self):
        runtime = _elephant_runtime()
        runtime.submit_batch(_packets([5] * 20))
        # Run both time-zero wake ticks: the victim's ingest, then the idle
        # thief's tick, which parks a request.  The thief then receives its
        # own traffic before the victim reaches its next grant point.
        runtime.run(max_events=2)
        assert len(runtime._steal_channels[0]) == 1
        runtime.sharder.pin(9, 1)
        runtime.submit_batch(_packets([9] * 4))
        runtime.run()
        assert runtime.transmitted == 24
        assert runtime.workers[1].steal.requests_stale > 0
        sequences = _flow_sequences(runtime.transmit_log)
        assert sequences[5] == list(range(20))
        assert sequences[9] == list(range(4))

    def test_busy_shards_do_not_volunteer(self):
        # Both shards loaded: nobody is empty, so nobody steals.
        sharder = FlowSharder(2)
        sharder.pin(5, 0)
        sharder.pin(9, 1)
        runtime = ShardedRuntime(
            2, sharder=sharder, default_rate_bps=RATE_BPS, quantum_ns=QUANTUM_NS,
            steal_enabled=True, steal_min_backlog=1,
        )
        runtime.submit_batch(_packets([5, 9] * 20))
        runtime.run()
        assert runtime.transmitted == 40
        assert runtime.telemetry().steals_succeeded == 0

    def test_telemetry_dict_includes_steal_counters(self):
        runtime = _elephant_runtime()
        runtime.submit_batch(_packets([5] * 40))
        runtime.run()
        payload = runtime.telemetry().as_dict()
        assert payload["packets_stolen"] > 0
        assert payload["steals_succeeded"] > 0
        assert "steals" in payload["shards"][0]
        assert payload["shards"][1]["steals"]["packets_stolen"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedRuntime(2, steal_batch=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, steal_horizon_ns=-1)
        with pytest.raises(ValueError):
            ShardedRuntime(2, steal_min_backlog=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, steal_channel_capacity=0)


class TestStealDifferential:
    """Stealing may move packets across shards and shift release times, but
    per-flow delivery sequences must be byte-for-byte identical to the
    steal-off run."""

    NUM_PACKETS = 2_000
    NUM_FLOWS = 64
    BURST = 128

    def _drive(self, steal: bool, num_shards: int = 8):
        runtime = ShardedRuntime(
            num_shards,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            rebalance_interval_ns=16 * QUANTUM_NS,
            steal_enabled=steal,
            steal_min_backlog=1,
        )
        rng = random.Random(20_190_226)
        flow_ids = ZipfFlowSampler(self.NUM_FLOWS, skew=1.2, rng=rng).sample_flows(
            self.NUM_PACKETS
        )
        packets = _packets(flow_ids)
        quanta_per_burst = self.BURST // 16
        for index in range(0, self.NUM_PACKETS, self.BURST):
            chunk = packets[index : index + self.BURST]
            when_ns = (index // self.BURST) * quanta_per_burst * QUANTUM_NS

            def offer(chunk=chunk):
                runtime.submit_batch(chunk)

            runtime.simulator.schedule_at(when_ns, offer)
        runtime.run()
        assert runtime.transmitted == self.NUM_PACKETS
        return runtime

    def test_eight_shard_zipf_sequences_identical(self):
        baseline = self._drive(steal=False)
        stolen = self._drive(steal=True)
        # The comparison is only meaningful if stealing actually happened.
        assert stolen.telemetry().packets_stolen > 0
        assert _flow_sequences(stolen.transmit_log) == _flow_sequences(
            baseline.transmit_log
        )

    def test_stolen_run_spreads_residency(self):
        stolen = self._drive(steal=True)
        shards = {
            packet.metadata["shard"] for _now, packet in stolen.transmit_log
        }
        stolen_from = {
            packet.metadata.get("stolen_from")
            for _now, packet in stolen.transmit_log
        } - {None}
        assert stolen_from, "no packet records a steal"
        assert len(shards) > 1


class TestStealTuner:
    """Adaptive steal sizing: EWMA of lease sizes drives batch and horizon."""

    def test_starts_at_the_configured_ceiling(self):
        from repro.runtime import StealTuner

        tuner = StealTuner(base_batch=64, base_horizon_ns=10_000)
        assert tuner.batch == 64
        assert tuner.horizon_ns == 10_000

    def test_small_leases_shrink_both_knobs(self):
        from repro.runtime import StealTuner

        tuner = StealTuner(base_batch=64, base_horizon_ns=10_000)
        for _ in range(40):
            tuner.observe(4)
        # EWMA converges to ~4, so the batch settles at ~2x that...
        assert tuner.batch == 8
        # ...and the horizon scales with the batch ratio.
        assert tuner.horizon_ns == 10_000 * 8 // 64
        assert tuner.observations == 40

    def test_full_leases_recover_the_ceiling(self):
        from repro.runtime import StealTuner

        tuner = StealTuner(base_batch=64, base_horizon_ns=10_000)
        for _ in range(40):
            tuner.observe(2)
        assert tuner.batch < 64
        for _ in range(40):
            tuner.observe(64)
        assert tuner.batch == 64
        assert tuner.horizon_ns == 10_000

    def test_floors_never_pin_stealing_off(self):
        from repro.runtime import StealTuner

        tuner = StealTuner(base_batch=16, base_horizon_ns=8_000)
        for _ in range(100):
            tuner.observe(0)
        assert tuner.batch >= 1
        # min_horizon_ns defaults to an eighth of the ceiling.
        assert tuner.horizon_ns >= 1_000

    def test_validation(self):
        from repro.runtime import StealTuner

        with pytest.raises(ValueError):
            StealTuner(base_batch=0, base_horizon_ns=1)
        with pytest.raises(ValueError):
            StealTuner(base_batch=4, base_horizon_ns=-1)
        with pytest.raises(ValueError):
            StealTuner(base_batch=4, base_horizon_ns=1, alpha=0.0)
        with pytest.raises(ValueError):
            StealTuner(base_batch=4, base_horizon_ns=1, min_batch=5)
        with pytest.raises(ValueError):
            StealTuner(base_batch=4, base_horizon_ns=1).observe(-1)


class TestAdaptiveStealDifferential:
    """``steal_adaptive=True`` may change lease sizes and release times, but
    per-flow delivery order must stay byte-for-byte the submission order —
    shrinking a lease only shortens the stolen prefix, never reorders it."""

    NUM_PACKETS = 2_000
    NUM_FLOWS = 64
    BURST = 128

    def _drive(self, steal: bool, adaptive: bool, num_shards: int = 8):
        runtime = ShardedRuntime(
            num_shards,
            default_rate_bps=RATE_BPS,
            quantum_ns=QUANTUM_NS,
            rebalance_interval_ns=16 * QUANTUM_NS,
            steal_enabled=steal,
            steal_adaptive=adaptive,
            steal_min_backlog=1,
        )
        rng = random.Random(20_190_226)
        flow_ids = ZipfFlowSampler(self.NUM_FLOWS, skew=1.2, rng=rng).sample_flows(
            self.NUM_PACKETS
        )
        packets = _packets(flow_ids)
        quanta_per_burst = self.BURST // 16
        for index in range(0, self.NUM_PACKETS, self.BURST):
            chunk = packets[index : index + self.BURST]
            when_ns = (index // self.BURST) * quanta_per_burst * QUANTUM_NS

            def offer(chunk=chunk):
                runtime.submit_batch(chunk)

            runtime.simulator.schedule_at(when_ns, offer)
        runtime.run()
        assert runtime.transmitted == self.NUM_PACKETS
        return runtime

    def test_adaptive_preserves_per_flow_fifo(self):
        baseline = self._drive(steal=False, adaptive=False)
        adaptive = self._drive(steal=True, adaptive=True)
        assert adaptive.telemetry().packets_stolen > 0, "adaptive mode never stole"
        assert adaptive._steal_tuner is not None
        assert adaptive._steal_tuner.observations > 0
        assert _flow_sequences(adaptive.transmit_log) == _flow_sequences(
            baseline.transmit_log
        )

    def test_adaptive_tracks_observed_lease_sizes(self):
        adaptive = self._drive(steal=True, adaptive=True)
        tuner = adaptive._steal_tuner
        assert tuner is not None and tuner.observations > 0
        # After real observations the knobs sit at or below their ceilings
        # and on the tuner's own law (2x the EWMA, clamped).
        expected = max(1, min(tuner.base_batch, round(2.0 * tuner.ewma)))
        assert tuner.batch == expected
        assert tuner.horizon_ns <= tuner.base_horizon_ns

    def test_adaptive_off_leaves_configured_knobs(self):
        plain = self._drive(steal=True, adaptive=False)
        assert plain._steal_tuner is None
        assert plain._steal_params() == (plain.steal_batch, plain.steal_horizon_ns)
