"""Eiffel shaping qdisc — cFFS-backed timestamps with exact timer programming.

The Eiffel qdisc of Use Case 1 matches the rate-limiting features of the
FQ/pacing qdisc (per-flow ``SO_MAX_PACING_RATE`` plus a fallback pacing rate)
but stores packets in a circular hierarchical FFS queue indexed by
transmission timestamp.  Because the cFFS supports ``SoonestDeadline()`` in a
handful of word operations, the qdisc programs its hrtimer for exactly the
next packet's release time instead of polling every slot — the key difference
from Carousel that Figure 10 (right) isolates — and its per-packet enqueue /
dequeue cost is a constant independent of the number of flows — the key
difference from FQ that Figure 9 shows.

The paper's configuration is preserved by default: 20k buckets over a
2-second horizon, with per-socket rate state kept outside the qdisc (the
paper modified ``sock.h``; here the rate map plays that role).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .fq_pacing import charge_stats_delta
from .qdisc import Qdisc
from ..core.model.packet import Packet
from ..core.model.transactions import RateLimit, ShapingTransaction
from ..core.queues import BucketSpec, CircularFFSQueue, IntegerPriorityQueue, QueueStats


class EiffelQdisc(Qdisc):
    """Shaping qdisc backed by a cFFS timestamp queue.

    Args:
        flow_rates: per-flow ``SO_MAX_PACING_RATE`` (bits/second).
        default_rate_bps: pacing rate applied to unconfigured flows.
        horizon_ns: shaping horizon (2 s, as in the paper's deployment).
        num_buckets: timestamp buckets (20k, as in the paper's deployment).
        queue: optionally inject a different integer queue (the approximate
            gradient queue, for ablations); defaults to cFFS.
    """

    name = "eiffel"

    def __init__(
        self,
        flow_rates: Optional[Dict[int, float]] = None,
        default_rate_bps: Optional[float] = None,
        horizon_ns: int = 2_000_000_000,
        num_buckets: int = 20_000,
        queue: Optional[IntegerPriorityQueue] = None,
        timer_granularity_ns: Optional[int] = None,
    ) -> None:
        if horizon_ns <= 0 or num_buckets <= 0:
            raise ValueError("horizon_ns and num_buckets must be positive")
        granularity = max(1, horizon_ns // num_buckets)
        # The timer cannot usefully be finer than a bucket: all packets in a
        # bucket share one deadline, so one fire per occupied bucket suffices.
        super().__init__(timer_granularity_ns=timer_granularity_ns or granularity)
        self.flow_rates = dict(flow_rates or {})
        self.default_rate_bps = default_rate_bps
        self._queue = queue or CircularFFSQueue(
            BucketSpec(num_buckets=num_buckets, granularity=granularity)
        )
        self._queue_snapshot = QueueStats()
        self._shapers: Dict[int, ShapingTransaction] = {}
        self._backlog = 0

    # -- configuration ---------------------------------------------------------------

    def set_flow_rate(self, flow_id: int, rate_bps: float) -> None:
        """Configure ``SO_MAX_PACING_RATE`` for ``flow_id``."""
        self.flow_rates[flow_id] = rate_bps
        self._shapers.pop(flow_id, None)

    def _shaper_for(self, flow_id: int) -> Optional[ShapingTransaction]:
        rate = self.flow_rates.get(flow_id, self.default_rate_bps)
        if rate is None:
            return None
        shaper = self._shapers.get(flow_id)
        if shaper is None:
            shaper = ShapingTransaction(f"flow-{flow_id}", RateLimit(rate))
            self._shapers[flow_id] = shaper
        return shaper

    # -- qdisc interface ----------------------------------------------------------------

    def enqueue_packet(self, packet: Packet, now_ns: int) -> None:
        self.system_cost.charge("flow_lookup")
        shaper = self._shaper_for(packet.flow_id)
        send_at = now_ns if shaper is None else shaper.stamp(packet, now_ns)
        packet.metadata["send_at_ns"] = send_at
        self._queue.enqueue(send_at, packet)
        self._backlog += 1
        self._queue_snapshot = charge_stats_delta(
            self.system_cost, self._queue.stats, self._queue_snapshot
        )

    def dequeue_due(self, now_ns: int, budget: int = 1 << 30) -> List[Packet]:
        # One batched drain per timer fire: the cFFS amortises its tree
        # walks across the whole batch instead of paying peek + extract
        # per packet, and the charged stats delta reflects that.
        drained = self._queue.extract_due(now_ns, limit=budget)
        released: List[Packet] = [packet for _send_at, packet in drained]
        self._backlog -= len(released)
        self.stats.dequeued += len(released)
        self._queue_snapshot = charge_stats_delta(
            self.softirq_cost, self._queue.stats, self._queue_snapshot
        )
        return released

    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        """Exact next-packet deadline via the cFFS ``peek_min``."""
        if self._backlog == 0:
            return None
        send_at, _packet = self._queue.peek_min()
        return max(send_at, now_ns)

    @property
    def queue_occupancy(self) -> int:
        """Packets currently held in the timestamp queue."""
        return self._backlog

    # -- work-stealing surface (the mq root's donor/acceptor protocol) -----

    def grant_due_window(
        self, now_ns: int, max_packets: int, horizon_ns: int
    ) -> Optional[tuple[List[tuple[int, Packet]], QueueStats]]:
        """Donor side: extract the window due by ``now + horizon`` for a thief.

        Returns ``(pairs, queue_delta)`` — the stamp-ordered ``(send_at,
        packet)`` prefix of each touched flow, plus the queue-operation
        delta of the extraction, which is *not* charged here: on real
        hardware the thief core performs these pops, so the delta rides to
        the acceptor (see :meth:`splice_due_window`) and the donor pays only
        the cross-core handoff lock.  Per-flow pacing state stays on this
        qdisc — unlike the sharded runtime's flow leases, flows keep hashing
        to this child, and the shaper's ``next_free_ns`` already lies past
        every stolen stamp, so later arrivals stamp (and therefore release)
        after the stolen window without any deferral machinery.

        Returns ``None`` when there is nothing stealable.
        """
        if max_packets <= 0 or self._backlog == 0:
            return None
        stolen = self._queue.extract_due(now_ns + horizon_ns, limit=max_packets)
        delta = self._queue.stats.diff(self._queue_snapshot)
        self._queue_snapshot = self._queue.stats.snapshot()
        if not stolen:
            # The peek that found nothing stealable is still this core's work.
            self.softirq_cost.charge_queue_stats(delta.as_dict())
            return None
        self._backlog -= len(stolen)
        self.softirq_cost.charge("lock")
        return stolen, delta

    def splice_due_window(
        self, pairs: List[tuple[int, Packet]], queue_delta: QueueStats
    ) -> int:
        """Acceptor side: adopt a stolen window, stamps preserved.

        The packets re-enter through one batched enqueue and release via the
        normal timer-driven drain at exactly the times the victim would have
        released them.  The victim's measured extraction delta plus this
        re-enqueue and the handoff lock are charged to *this* child's
        softirq account — the cycles stealing moves off the bottleneck core.
        """
        cost = self.softirq_cost
        cost.charge("lock")
        cost.charge_queue_stats(queue_delta.as_dict())
        before = len(self._queue)
        try:
            self._queue.enqueue_batch(pairs)
        finally:
            # Backlog follows the queue's actual growth even if a
            # fixed-range ablation queue rejects a stamp mid-batch.
            self._backlog += len(self._queue) - before
            self._queue_snapshot = charge_stats_delta(
                cost, self._queue.stats, self._queue_snapshot
            )
        return len(pairs)


__all__ = ["EiffelQdisc"]
