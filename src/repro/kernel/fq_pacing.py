"""FQ/pacing qdisc baseline — the Linux ``fq`` qdisc, simplified but faithful
to its costs.

The real FQ qdisc keeps active flows in a red-black tree keyed by each flow's
next transmission time, hashes incoming packets to their flow, paces flows at
``SO_MAX_PACING_RATE`` (or a rate derived from the congestion window), and
periodically garbage-collects idle flows.  Those are precisely the costs the
Eiffel paper attributes to its poor showing in Figure 9: "its complicated
data structure ... keeps track internally of active and inactive flows and
requires continuous garbage collection ... it relies on RB-trees which
increases the overhead of reordering flows on every enqueue and dequeue".

This module reproduces that structure: per-flow FIFOs, an
:class:`~repro.core.queues.comparison.RBTreeQueue` of flows keyed by next
transmission time (nanoseconds), and a periodic GC sweep, with every tree
operation charged to the qdisc's cost accounts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .qdisc import Qdisc
from ..core.model.packet import Packet
from ..core.queues import QueueStats, RBTreeQueue
from ..cpu import CostModel
from ..cpu.cost_model import QUEUE_STATS_COSTS


def charge_stats_delta(
    cost: CostModel,
    stats: QueueStats,
    snapshot: QueueStats,
    overrides: Dict[str, str] | None = None,
) -> QueueStats:
    """Charge the counters accumulated since ``snapshot``; returns the new one.

    ``overrides`` remaps a counter to a different cost-table operation; the
    FQ qdisc uses it to charge red-black tree node visits as cache-missing
    pointer chases rather than array bucket lookups.
    """
    delta = stats.diff(snapshot).as_dict()
    mapping = dict(QUEUE_STATS_COSTS)
    if overrides:
        mapping.update(overrides)
    for counter, operation in mapping.items():
        count = delta.get(counter, 0)
        if count > 0:
            cost.charge(operation, count)
    return stats.snapshot()


#: Counter remapping for red-black tree structures: a node visit is a pointer
#: chase into an arbitrarily located node, not an indexed array access.
RB_TREE_COST_OVERRIDES = {"bucket_lookups": "rb_node_visit"}


class _FQFlow:
    """Per-flow state of the FQ qdisc."""

    __slots__ = ("flow_id", "packets", "time_next_packet", "rate_bps", "last_active_ns")

    def __init__(self, flow_id: int, rate_bps: Optional[float]) -> None:
        self.flow_id = flow_id
        self.packets: Deque[Packet] = deque()
        self.time_next_packet = 0
        self.rate_bps = rate_bps
        self.last_active_ns = 0


class FQPacingQdisc(Qdisc):
    """The FQ/pacing baseline qdisc.

    Args:
        flow_rates: per-flow ``SO_MAX_PACING_RATE`` in bits/second.
        default_rate_bps: pacing rate for flows without an explicit limit.
        gc_interval_packets: run a garbage-collection sweep over the flow
            table every this many enqueued packets (the FQ qdisc's periodic
            housekeeping).
        gc_idle_ns: flows idle for longer than this are reclaimed.
    """

    name = "fq_pacing"

    def __init__(
        self,
        flow_rates: Optional[Dict[int, float]] = None,
        default_rate_bps: Optional[float] = None,
        gc_interval_packets: int = 1024,
        gc_idle_ns: int = 100_000_000,
        timer_granularity_ns: int = 1_000,
    ) -> None:
        super().__init__(timer_granularity_ns=timer_granularity_ns)
        self.flow_rates = dict(flow_rates or {})
        self.default_rate_bps = default_rate_bps
        self.gc_interval_packets = gc_interval_packets
        self.gc_idle_ns = gc_idle_ns
        self._flows: Dict[int, _FQFlow] = {}
        self._tree = RBTreeQueue()
        self._in_tree: Dict[int, bool] = {}
        self._tree_snapshot = QueueStats()
        self._backlog = 0
        self._since_gc = 0

    # -- configuration ------------------------------------------------------------

    def set_flow_rate(self, flow_id: int, rate_bps: float) -> None:
        """Configure ``SO_MAX_PACING_RATE`` for ``flow_id``."""
        self.flow_rates[flow_id] = rate_bps

    def _rate_for(self, flow_id: int) -> Optional[float]:
        return self.flow_rates.get(flow_id, self.default_rate_bps)

    # -- helpers -------------------------------------------------------------------

    def _flow(self, packet: Packet, now_ns: int) -> _FQFlow:
        self.system_cost.charge("flow_lookup")
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            flow = _FQFlow(packet.flow_id, self._rate_for(packet.flow_id))
            self._flows[packet.flow_id] = flow
        flow.last_active_ns = now_ns
        return flow

    def _maybe_garbage_collect(self, now_ns: int) -> None:
        self._since_gc += 1
        if self._since_gc < self.gc_interval_packets:
            return
        self._since_gc = 0
        reclaimed = []
        for flow_id, flow in self._flows.items():
            self.system_cost.charge("gc_scan")
            if not flow.packets and now_ns - flow.last_active_ns > self.gc_idle_ns:
                reclaimed.append(flow_id)
        for flow_id in reclaimed:
            del self._flows[flow_id]
            self._in_tree.pop(flow_id, None)

    # -- qdisc interface ----------------------------------------------------------------

    def enqueue_packet(self, packet: Packet, now_ns: int) -> None:
        flow = self._flow(packet, now_ns)
        flow.packets.append(packet)
        self._backlog += 1
        self.system_cost.charge("enqueue")
        if not self._in_tree.get(flow.flow_id):
            key = max(now_ns, flow.time_next_packet)
            self._tree.enqueue(key, flow)
            self._in_tree[flow.flow_id] = True
            self._tree_snapshot = charge_stats_delta(
                self.system_cost,
                self._tree.stats,
                self._tree_snapshot,
                overrides=RB_TREE_COST_OVERRIDES,
            )
        self._maybe_garbage_collect(now_ns)

    def dequeue_due(self, now_ns: int, budget: int = 1 << 30) -> List[Packet]:
        released: List[Packet] = []
        while len(self._tree) and len(released) < budget:
            key, flow = self._tree.peek_min()
            if key > now_ns:
                break
            self._tree.extract_min()
            self._in_tree[flow.flow_id] = False
            if not flow.packets:
                continue
            packet = flow.packets.popleft()
            self._backlog -= 1
            self.softirq_cost.charge("dequeue")
            released.append(packet)
            self.stats.dequeued += 1
            rate = flow.rate_bps
            if rate:
                # Pace from the credited transmission time (the tree key), not
                # from the sweep time, so batched dequeues keep the flow at
                # its configured rate.
                flow.time_next_packet = key + int(
                    packet.size_bytes * 8 / rate * 1e9
                )
            else:
                flow.time_next_packet = now_ns
            if flow.packets:
                self._tree.enqueue(flow.time_next_packet, flow)
                self._in_tree[flow.flow_id] = True
        self._tree_snapshot = charge_stats_delta(
            self.softirq_cost,
            self._tree.stats,
            self._tree_snapshot,
            overrides=RB_TREE_COST_OVERRIDES,
        )
        return released

    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        if not len(self._tree):
            return None
        key, _flow = self._tree.peek_min()
        return max(key, now_ns)

    @property
    def active_flows(self) -> int:
        """Flows currently tracked by the qdisc (backlogged or recently idle)."""
        return len(self._flows)


__all__ = ["FQPacingQdisc", "RB_TREE_COST_OVERRIDES", "charge_stats_delta"]
