"""Unit and integration tests for the ingress-core subsystem.

Covers the RX ring mechanics, the three admission policies, the pull loop's
backpressure behaviour (stall on a paused mailbox, resume on the ``on_low``
edge), the runtime wiring (``ingress_cores=N``), and the telemetry rows the
bottleneck analysis reads.
"""

import pytest

from repro.core.model.packet import Packet
from repro.runtime import (
    CoDelPolicy,
    FlowFairDropPolicy,
    FlowSharder,
    IngressCore,
    Mailbox,
    RxRing,
    ShardedRuntime,
    TailDropPolicy,
    make_admission_factory,
)

QUANTUM_NS = 10_000


def _packets(flow_ids, size_bytes=1500):
    return [Packet(flow_id=flow_id, size_bytes=size_bytes) for flow_id in flow_ids]


def _flow_sequences(transmit_log):
    sequences = {}
    for _now, packet in transmit_log:
        sequences.setdefault(packet.flow_id, []).append(packet.packet_id)
    return sequences


class TestRxRing:
    def test_fifo_and_flow_counts(self):
        ring = RxRing(capacity=4)
        for index, flow in enumerate([1, 2, 1, 1]):
            ring.push(index, Packet(flow_id=flow))
        assert len(ring) == 4
        assert ring.flow_count(1) == 3
        assert ring.fattest_flow() == 1
        arrival, packet = ring.pop()
        assert (arrival, packet.flow_id) == (0, 1)
        assert ring.flow_count(1) == 2

    def test_drop_newest_keeps_order_of_survivors(self):
        ring = RxRing(capacity=8)
        packets = _packets([1, 2, 1, 3, 1])
        for index, packet in enumerate(packets):
            ring.push(index, packet)
        dropped = ring.drop_newest(1)
        assert dropped is packets[4]  # the tail-most packet of flow 1
        order = [ring.pop()[1] for _ in range(len(ring))]
        assert order == [packets[0], packets[1], packets[2], packets[3]]
        assert ring.drop_newest(99) is None

    def test_growth_and_peak(self):
        ring = RxRing(capacity=2)
        for index in range(5):
            ring.push(index, Packet(flow_id=index))
        assert ring.over_capacity
        assert ring.peak == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RxRing(capacity=0)


class TestAdmissionPolicies:
    def test_tail_drop_bounds_the_ring(self):
        policy = TailDropPolicy()
        ring = RxRing(capacity=2)
        for index in range(2):
            admit, evicted = policy.on_arrival(ring, Packet(flow_id=index), 0)
            assert admit and evicted is None
            ring.push(0, Packet(flow_id=index))
        admit, evicted = policy.on_arrival(ring, Packet(flow_id=9), 0)
        assert not admit and evicted is None

    def test_fair_drop_evicts_the_fattest_flow(self):
        policy = FlowFairDropPolicy()
        ring = RxRing(capacity=4)
        for index, flow in enumerate([7, 7, 7, 8]):
            ring.push(index, Packet(flow_id=flow))
        # A mouse arrival displaces the elephant's newest packet.
        admit, evicted = policy.on_arrival(ring, Packet(flow_id=9), 4)
        assert admit
        assert evicted is not None and evicted.flow_id == 7
        assert ring.flow_count(7) == 2

    def test_fair_drop_elephant_is_its_own_victim(self):
        policy = FlowFairDropPolicy()
        ring = RxRing(capacity=3)
        for index, flow in enumerate([7, 7, 8]):
            ring.push(index, Packet(flow_id=flow))
        admit, evicted = policy.on_arrival(ring, Packet(flow_id=7), 3)
        assert not admit and evicted is None
        assert len(ring) == 3

    def test_codel_leaves_good_queues_alone(self):
        policy = CoDelPolicy(target_ns=1_000, interval_ns=10_000)
        ring = RxRing(capacity=8)
        # Sojourn below target: never a drop, state resets.
        for now in range(0, 100_000, 10_000):
            assert not policy.on_head(ring, 500, now)

    def test_codel_drops_after_a_full_interval_above_target(self):
        policy = CoDelPolicy(target_ns=1_000, interval_ns=10_000)
        ring = RxRing(capacity=8)
        assert not policy.on_head(ring, 5_000, 0)  # arms first_above
        assert not policy.on_head(ring, 5_000, 5_000)  # interval not over
        assert policy.on_head(ring, 5_000, 10_000)  # dropping starts
        # The control law schedules the next drop interval/sqrt(count) out.
        assert not policy.on_head(ring, 5_000, 10_001)
        assert policy.on_head(ring, 5_000, 30_000)

    def test_codel_exits_dropping_when_sojourn_recovers(self):
        policy = CoDelPolicy(target_ns=1_000, interval_ns=10_000)
        ring = RxRing(capacity=8)
        policy.on_head(ring, 5_000, 0)
        assert policy.on_head(ring, 5_000, 10_000)
        assert not policy.on_head(ring, 100, 10_500)  # below target: reset
        assert not policy.on_head(ring, 5_000, 11_000)  # must re-arm first

    def test_codel_validation(self):
        with pytest.raises(ValueError):
            CoDelPolicy(target_ns=0)
        with pytest.raises(ValueError):
            CoDelPolicy(interval_ns=0)

    def test_factory_normalisation(self):
        assert make_admission_factory(None) is None
        assert isinstance(make_admission_factory("tail_drop")(), TailDropPolicy)
        assert isinstance(make_admission_factory("fair_drop")(), FlowFairDropPolicy)
        assert isinstance(make_admission_factory("codel")(), CoDelPolicy)
        custom = make_admission_factory(lambda: CoDelPolicy(1, 2))
        assert isinstance(custom(), CoDelPolicy)
        with pytest.raises(ValueError):
            make_admission_factory("red")  # not implemented


class TestIngressCorePull:
    def _deliver_all(self, core, mailboxes, now=0):
        sharder = FlowSharder(len(mailboxes))
        return core.pull(
            now,
            sharder.shard_for,
            mailboxes,
            lambda shard, group: mailboxes[shard].push_batch(group),
        )

    def test_classify_groups_and_delivers_in_ring_order(self):
        core = IngressCore(0, ring_capacity=64, pull_batch=64)
        flows = [5, 9, 5, 9, 5]
        core.offer(_packets(flows), now_ns=0)
        mailboxes = [Mailbox(), Mailbox()]
        delivered = self._deliver_all(core, mailboxes)
        assert delivered == 5
        assert core.stats.classified == 5
        drained = [p.flow_id for mb in mailboxes for p in mb.drain()]
        # Per-flow order inside each mailbox follows ring order.
        assert sorted(drained) == sorted(flows)
        assert core.ring.empty

    def test_pull_budget_bounds_one_tick(self):
        core = IngressCore(0, ring_capacity=64, pull_batch=3)
        core.offer(_packets([1] * 10), now_ns=0)
        mailboxes = [Mailbox()]
        assert self._deliver_all(core, mailboxes) == 3
        assert len(core.ring) == 7

    def test_stall_on_paused_mailbox_keeps_head(self):
        core = IngressCore(0, ring_capacity=64, pull_batch=64)
        core.offer(_packets([1] * 6), now_ns=0)
        mailbox = Mailbox(capacity=8, high_watermark=4, low_watermark=1)
        delivered = core.pull(
            0, lambda _flow: 0, [mailbox],
            lambda shard, group: mailbox.push_batch(group),
        )
        # The pull stops once delivery would land occupancy at the high
        # watermark: exactly 4 delivered, mailbox paused, 2 left in the ring.
        assert delivered == 4
        assert mailbox.paused
        assert core.stalled
        assert core.stats.stalled_ticks == 1
        assert core.stats.stall_cycles > 0
        assert len(core.ring) == 2

    def test_cycles_charged_per_packet_and_per_handoff(self):
        core = IngressCore(0, ring_capacity=64, pull_batch=64)
        core.offer(_packets([1, 2, 3]), now_ns=0)
        mailboxes = [Mailbox(), Mailbox()]
        self._deliver_all(core, mailboxes)
        breakdown = core.cost.breakdown()
        assert breakdown["rx_poll"] > 0
        assert breakdown["rx_descriptor"] == 3 * 18.0
        assert breakdown["flow_lookup"] == 3 * 30.0
        assert breakdown["lock"] > 0

    def test_backpressure_off_tail_drops_at_capacity(self):
        core = IngressCore(0, ring_capacity=4, pull_batch=64, backpressure=False)
        admitted = core.offer(_packets(range(6)), now_ns=0)
        assert admitted == 4
        assert core.stats.rx_dropped == 2
        assert not core.ring.over_capacity

    def test_backpressure_grows_the_ring_loss_free(self):
        core = IngressCore(0, ring_capacity=4, pull_batch=64)
        admitted = core.offer(_packets(range(6)), now_ns=0)
        assert admitted == 6
        assert core.stats.rx_dropped == 0
        assert core.stats.ring_grown == 2

    def test_codel_head_drops_count_and_charge(self):
        core = IngressCore(
            0, ring_capacity=8, pull_batch=2,
            admission=CoDelPolicy(target_ns=1_000, interval_ns=2_000),
        )
        core.offer(_packets([1] * 6), now_ns=0)
        mailboxes = [Mailbox()]

        def pull(now):
            return core.pull(
                now, lambda _flow: 0, mailboxes,
                lambda shard, group: mailboxes[shard].push_batch(group),
            )

        # First pull: sojourn 10 us is over target, which only *arms* the
        # interval clock (a burst that drains within an interval is a good
        # queue and is never touched).
        assert pull(10_000) == 2
        assert core.stats.rx_dropped == 0
        # Second pull, a full interval later with sojourn still over target:
        # the dropping state engages at the head.
        pull(13_000)
        assert core.stats.rx_dropped > 0
        assert core.stats.delivered + core.stats.rx_dropped + len(core.ring) == 6

    def test_empty_pull_is_an_idle_tick(self):
        core = IngressCore(0)
        mailboxes = [Mailbox()]
        assert self._deliver_all(core, mailboxes) == 0
        assert core.stats.idle_ticks == 1
        assert not core.stalled

    def test_validation(self):
        with pytest.raises(ValueError):
            IngressCore(0, pull_batch=0)


class TestRuntimeIngressIntegration:
    def test_everything_delivered_once_and_in_order(self):
        runtime = ShardedRuntime(
            4,
            default_rate_bps=10e9,
            quantum_ns=QUANTUM_NS,
            ingress_cores=2,
            mailbox_capacity=32,
            rx_ring_capacity=64,
            rx_burst=32,
        )
        packets = _packets([flow % 24 for flow in range(600)])
        assert runtime.submit_batch(packets) == 600
        runtime.run()
        assert runtime.transmitted == 600
        assert runtime.pending == 0
        assert runtime.ingress_drops == 0
        for flow_id, sequence in _flow_sequences(runtime.transmit_log).items():
            assert sequence == sorted(sequence), f"flow {flow_id} reordered"

    def test_single_submit_goes_through_the_ring(self):
        runtime = ShardedRuntime(2, quantum_ns=QUANTUM_NS, ingress_cores=1)
        assert runtime.submit(Packet(flow_id=3, size_bytes=1500))
        assert runtime.pending == 1  # resident in the RX ring until the pull
        runtime.run()
        assert runtime.transmitted == 1

    def test_flows_stick_to_one_ingress_core(self):
        runtime = ShardedRuntime(2, quantum_ns=QUANTUM_NS, ingress_cores=3)
        runtime.submit_batch(_packets([flow % 12 for flow in range(240)]))
        runtime.run()
        assert runtime.transmitted == 240
        # Replaying the lane hash per flow must match what each core saw:
        # every flow's packets traversed exactly one ring.
        lanes = runtime._ingress_sharder
        per_core = [core.stats.rx_packets for core in runtime.ingress_cores]
        expected = [0, 0, 0]
        for flow in range(12):
            expected[lanes.shard_for(flow)] += 20
        assert per_core == expected

    def test_ingress_telemetry_rows_and_bottleneck(self):
        runtime = ShardedRuntime(
            2, quantum_ns=QUANTUM_NS, ingress_cores=2, mailbox_capacity=64
        )
        runtime.submit_batch(_packets([flow % 16 for flow in range(400)]))
        runtime.run()
        telemetry = runtime.telemetry()
        assert len(telemetry.ingress) == 2
        assert telemetry.max_ingress_cycles > 0
        assert telemetry.bottleneck_cycles == max(
            telemetry.max_shard_cycles, telemetry.max_ingress_cycles
        )
        assert telemetry.total_cycles > sum(s.cycles for s in telemetry.shards)
        payload = telemetry.as_dict()
        assert len(payload["ingress"]) == 2
        assert payload["bottleneck_cycles"] == telemetry.bottleneck_cycles
        row = payload["ingress"][0]
        assert row["delivered"] == row["classified"]
        assert row["mean_sojourn_ns"] >= 0

    def test_backpressure_zero_loss_with_tiny_mailboxes(self):
        runtime = ShardedRuntime(
            2,
            default_rate_bps=1e9,
            quantum_ns=QUANTUM_NS,
            ingress_cores=1,
            mailbox_capacity=4,
            rx_ring_capacity=8,
            rx_burst=16,
            shard_backlog_limit=8,
        )
        runtime.submit_batch(_packets([flow % 8 for flow in range(200)]))
        runtime.run()
        assert runtime.transmitted == 200
        assert runtime.ingress_drops == 0
        assert runtime.telemetry().admission_drops == 0
        # The tiny mailboxes must have exerted real backpressure.
        assert sum(c.stats.stalled_ticks for c in runtime.ingress_cores) > 0
        assert runtime.ingress_cores[0].ring.peak > 8

    def test_admission_by_name_drops_under_ring_pressure(self):
        runtime = ShardedRuntime(
            1,
            default_rate_bps=1e6,  # 12 ms per packet: the shard drains slowly
            quantum_ns=QUANTUM_NS,
            ingress_cores=1,
            admission="tail_drop",
            mailbox_capacity=2,
            rx_ring_capacity=4,
            rx_burst=4,
            shard_backlog_limit=2,
        )
        accepted = runtime.submit_batch(_packets([1] * 40))
        assert accepted < 40
        telemetry = runtime.telemetry()
        assert telemetry.admission_drops == 40 - accepted
        runtime.run()
        assert runtime.transmitted == accepted

    def test_on_low_edge_beats_the_polling_retry(self):
        # A stalled RX core must resume on the mailbox's falling-watermark
        # edge, not wait for its quantum-cadence retry: with the retry a
        # full 50 us out and everything unpaced, the whole run completing
        # well before the first retry proves the on_low wake pulled the
        # stalled pull forward.
        runtime = ShardedRuntime(
            1,
            quantum_ns=QUANTUM_NS,
            ingress_cores=1,
            ingress_quantum_ns=50_000,
            mailbox_capacity=2,
            rx_burst=8,
        )
        runtime.submit_batch(_packets([1] * 6))
        runtime.run()
        assert runtime.transmitted == 6
        assert runtime.ingress_cores[0].stats.stalled_ticks > 0
        assert runtime.simulator.now_ns < 50_000

    def test_stop_cancels_ingress_timers(self):
        runtime = ShardedRuntime(2, quantum_ns=QUANTUM_NS, ingress_cores=2)
        runtime.submit_batch(_packets([flow % 6 for flow in range(100)]))
        runtime.run(max_events=1)
        assert runtime.simulator.pending_events > 0
        runtime.stop()
        assert runtime.simulator.pending_events == 0

    def test_ingress_composes_with_stealing_and_rebalancing(self):
        runtime = ShardedRuntime(
            4,
            default_rate_bps=10e9,
            quantum_ns=QUANTUM_NS,
            ingress_cores=2,
            mailbox_capacity=32,
            rebalance_interval_ns=4 * QUANTUM_NS,
            steal_enabled=True,
            steal_min_backlog=1,
        )
        flows = ([1, 1, 1, 2] * 40 + [3, 4, 5, 6, 7] * 8)[:200]
        for _round in range(5):
            runtime.submit_batch(_packets(flows))
            runtime.run(until_ns=runtime.simulator.now_ns + 4 * QUANTUM_NS)
        runtime.run()
        assert runtime.transmitted == 5 * len(flows)
        assert runtime.sharder.loaned_flows() == {}
        for flow_id, sequence in _flow_sequences(runtime.transmit_log).items():
            assert sequence == sorted(sequence), f"flow {flow_id} reordered"

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedRuntime(2, ingress_cores=-1)
        with pytest.raises(ValueError):
            ShardedRuntime(2, ingress_cores=1, rx_ring_capacity=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, ingress_cores=1, rx_burst=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, ingress_cores=1, ingress_quantum_ns=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, ingest_per_quantum=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, shard_backlog_limit=0)
        with pytest.raises(ValueError):
            ShardedRuntime(2, ingress_cores=1, admission="unknown")
