"""Chaos fuzzing: random valid specs × random fault schedules.

The fault plane's payoff mirrors the scenario layer's: a fault schedule is
now *data* inside the spec, so Hypothesis can compose random whole-system
configurations with random failures — shard crashes, stalls, handoff drops,
ingress wedges, watchdog deadlines — and every drawn scenario must still
uphold the runtime-wide invariant net *through injection and recovery*:

* **packet conservation** — transmitted + dropped == offered, where
  injected losses (crash casualties, dropped handoffs) are counted drops;
* **per-flow FIFO** — a crash may lose a packet of a re-homed flow, never
  reorder one;
* **no stranded state** — after drain and recovery: no orphaned lease,
  mailbox entry, ring slot, or flow-table loan.

``SCENARIO_FUZZ_EXAMPLES`` caps the example count (CI's chaos smoke sets a
small cap; every example runs a full workload plus recovery).
"""

import os

from hypothesis import HealthCheck, given, settings

from repro.scenario import ScenarioAssertionError, compile_scenario, run_scenario
from repro.scenario.fuzz import chaos_scenario_specs

MAX_EXAMPLES = int(os.environ.get("SCENARIO_FUZZ_EXAMPLES", "25"))

FUZZ_SETTINGS = dict(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**FUZZ_SETTINGS)
@given(spec=chaos_scenario_specs())
def test_random_faulty_scenarios_uphold_runtime_invariants(spec):
    result = run_scenario(spec, check=False)
    if result.failures:
        raise ScenarioAssertionError(spec.name, result.failures)
    assert result.offered == spec.traffic.total_packets
    # An armed plan must actually be armed — the compiler wired it through.
    assert spec.faults.kinds


def _normalized_ledgers(result):
    """Re-key packet ids as per-run offer ordinals (ids are process-global)."""
    ordinal = {
        packet_id: index
        for index, packet_id in enumerate(
            pid for ids in result.offered_by_flow.values() for pid in ids
        )
    }
    offered = {
        flow: [ordinal[pid] for pid in ids]
        for flow, ids in result.offered_by_flow.items()
    }
    delivered = {
        flow: [ordinal[pid] for pid in ids]
        for flow, ids in result.delivered_by_flow.items()
    }
    return offered, delivered


@settings(**FUZZ_SETTINGS)
@given(spec=chaos_scenario_specs())
def test_faults_are_deterministic_from_the_seed(spec):
    """One seed pins workload *and* failure schedule: chaos replays exactly."""
    first = run_scenario(spec, check=False)
    second = run_scenario(spec, check=False)
    assert _normalized_ledgers(first) == _normalized_ledgers(second)
    assert first.transmitted == second.transmitted
    assert first.dropped == second.dropped
    assert (
        first.telemetry.faults == second.telemetry.faults
    ), "fault/recovery telemetry must replay with the seed"


def test_chaos_strategy_only_generates_valid_specs():
    """Compiling (not just validating) a shrunk draw must never raise."""
    from hypothesis import find

    spec = find(chaos_scenario_specs(), lambda _spec: True)
    compiled = compile_scenario(spec)
    assert compiled.spec is spec
    assert spec.faults.kinds
