"""Find-First-Set primitives and the single-word FFS queue.

The paper builds its efficient queues on the Find First Set (FFS) CPU
instruction (Bit-Scan-Forward/Reverse), which returns the index of the first
set bit of a machine word in a handful of cycles.  In Python we emulate the
instruction with integer bit tricks; the CPU cost model (``repro.cpu``)
charges each emulated FFS the instruction cost the paper cites so that
modelled-cycle comparisons stay meaningful.

Two conventions are used throughout:

* bit ``i`` of a word corresponds to bucket ``i`` (bit 0 = lowest priority
  bucket in the word), and
* ``find_first_set`` returns the index of the **least significant** set bit,
  i.e. the highest-priority (minimum-rank) non-empty bucket.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    PriorityOutOfRangeError,
    validate_priority,
)

#: Default machine word width, matching 64-bit x86 BSF/BSR operands.
DEFAULT_WORD_WIDTH = 64


def find_first_set(word: int) -> int:
    """Index of the least-significant set bit of ``word``.

    Equivalent to the x86 ``BSF`` instruction (and to ``__builtin_ffs() - 1``).
    The fast path is the two's-complement isolate ``word & -word``; a Python
    negative int has conceptually infinite sign bits, so negative words are
    rejected rather than silently returning the isolate of their magnitude.

    Raises:
        ValueError: if ``word`` is zero (no bit set) or negative (not a
            machine word).
    """
    if word <= 0:
        if word == 0:
            raise ValueError("find_first_set of zero word")
        raise ValueError(f"find_first_set of negative word {word}")
    return (word & -word).bit_length() - 1


def find_last_set(word: int) -> int:
    """Index of the most-significant set bit of ``word`` (x86 ``BSR``)."""
    if word <= 0:
        if word == 0:
            raise ValueError("find_last_set of zero word")
        raise ValueError(f"find_last_set of negative word {word}")
    return word.bit_length() - 1


def set_bit(word: int, index: int) -> int:
    """Return ``word`` with bit ``index`` set."""
    return word | (1 << index)


def clear_bit(word: int, index: int) -> int:
    """Return ``word`` with bit ``index`` cleared."""
    return word & ~(1 << index)


def test_bit(word: int, index: int) -> bool:
    """True when bit ``index`` of ``word`` is set."""
    return bool((word >> index) & 1)


def count_set_bits(word: int) -> int:
    """Number of set bits in ``word`` (x86 ``POPCNT``).

    Zero is a valid operand (POPCNT of zero is zero); negative words are
    rejected for the same reason as :func:`find_first_set` — a Python
    negative int is not a finite machine word.
    """
    if word < 0:
        raise ValueError(f"count_set_bits of negative word {word}")
    return int(word).bit_count()


def popcount(word: int) -> int:
    """Alias of :func:`count_set_bits`, kept for the x86 mnemonic."""
    return count_set_bits(word)


class Bitmap:
    """A fixed-width occupancy bitmap with FFS lookup.

    This is the "Bitmap Meta Data" row of Figure 2: one bit per bucket,
    one means non-empty.
    """

    __slots__ = ("width", "_word")

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("bitmap width must be positive")
        self.width = width
        self._word = 0

    def set(self, index: int) -> None:
        """Mark bucket ``index`` as non-empty."""
        self._check(index)
        self._word |= 1 << index

    def clear(self, index: int) -> None:
        """Mark bucket ``index`` as empty."""
        self._check(index)
        self._word &= ~(1 << index)

    def test(self, index: int) -> bool:
        """True when bucket ``index`` is marked non-empty."""
        self._check(index)
        return bool((self._word >> index) & 1)

    def first_set(self) -> int:
        """Index of the lowest marked bucket.

        Raises:
            ValueError: when no bucket is marked.
        """
        return find_first_set(self._word)

    def last_set(self) -> int:
        """Index of the highest marked bucket."""
        return find_last_set(self._word)

    @property
    def any(self) -> bool:
        """True when at least one bucket is marked."""
        return self._word != 0

    @property
    def word(self) -> int:
        """Raw integer value of the bitmap."""
        return self._word

    def clear_all(self) -> None:
        """Mark every bucket empty."""
        self._word = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.width:
            raise IndexError(f"bit index {index} outside bitmap of width {self.width}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitmap(width={self.width}, word={self._word:#x})"


class FFSQueue(IntegerPriorityQueue):
    """Single-word FFS-based bucketed priority queue (Figure 2).

    Supports up to ``word_width`` buckets over a *fixed* priority range
    ``[base_priority, base_priority + num_buckets * granularity)``.  The
    minimum non-empty bucket is found with a single FFS over the occupancy
    bitmap, giving O(1) extract-min.

    This queue is the right choice when the number of priority levels is
    small and fixed (e.g. eight 802.1Q priorities, or the ~100 levels of the
    kernel realtime scheduler class the paper mentions).
    """

    __slots__ = ("word_width", "_bitmap", "_buckets")

    def __init__(self, spec: BucketSpec, word_width: int = DEFAULT_WORD_WIDTH) -> None:
        super().__init__(spec)
        if spec.num_buckets > word_width:
            raise ValueError(
                f"FFSQueue supports at most {word_width} buckets; "
                f"got {spec.num_buckets}. Use HierarchicalFFSQueue instead."
            )
        self.word_width = word_width
        self._bitmap = Bitmap(spec.num_buckets)
        self._buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(spec.num_buckets)
        ]

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            raise PriorityOutOfRangeError(
                f"priority {priority} outside fixed range "
                f"[{self.spec.base_priority}, {self.spec.base_priority + self.spec.horizon})"
            )
        bucket = self.spec.bucket_for(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        self._buckets[bucket].append((priority, item))
        self._bitmap.set(bucket)
        self._size += 1

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty FFSQueue")
        self.stats.word_scans += 1
        bucket = self._bitmap.first_set()
        entry = self._buckets[bucket].popleft()
        if not self._buckets[bucket]:
            self._bitmap.clear(bucket)
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty FFSQueue")
        self.stats.word_scans += 1
        bucket = self._bitmap.first_set()
        return self._buckets[bucket][0]

    def occupancy_word(self) -> int:
        """The raw occupancy bitmap word (for tests and inspection)."""
        return self._bitmap.word

    # -- batch operations -------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one bucket lookup and bitmap update per bucket.

        Pairs append straight into their bucket FIFOs on hoisted locals; a
        key set tracks the distinct buckets for the amortised
        ``bucket_lookups`` charge, and counters settle once per batch.  On a
        mid-batch validation error the inserted prefix stays enqueued and
        counted, matching the base class's per-element default.
        """
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        hi = base + spec.horizon
        stats = self.stats
        buckets = self._buckets
        bitmap_set = self._bitmap.set
        seen: set[int] = set()
        seen_add = seen.add
        count = 0
        try:
            for pair in pairs:
                priority = pair[0]
                if type(priority) is not int:
                    priority = validate_priority(priority)
                    pair = (priority, pair[1])
                if priority < base or priority >= hi:
                    raise PriorityOutOfRangeError(
                        f"priority {priority} outside fixed range [{base}, {hi})"
                    )
                bucket = (priority - base) // granularity
                seen_add(bucket)
                entries = buckets[bucket]
                if not entries:
                    bitmap_set(bucket)
                entries.append(pair)
                count += 1
        finally:
            stats.enqueues += count
            stats.bucket_lookups += len(seen)
            self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one FFS per bucket visited, not per element."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        buckets = self._buckets
        bitmap = self._bitmap
        scans = 0
        taken = 0
        while taken < n and self._size:
            scans += 1
            bucket = bitmap.first_set()
            entries = buckets[bucket]
            space = n - taken
            if space >= len(entries):
                take = len(entries)
                batch.extend(entries)
                entries.clear()
                bitmap.clear(bucket)
            else:
                take = space
                popleft = entries.popleft
                for _ in range(take):
                    batch.append(popleft())
            taken += take
            self._size -= take
        stats = self.stats
        stats.word_scans += scans
        stats.dequeues += taken
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        buckets = self._buckets
        bitmap = self._bitmap
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        size = self._size
        scans = 0
        taken = 0
        while size and (limit is None or taken < limit):
            scans += 1
            bucket = bitmap.first_set()
            entries = buckets[bucket]
            # Whole-bucket fast path: every entry in the bucket is due when
            # the bucket's highest representable priority has passed, so the
            # per-element head checks collapse into one extend.
            if (
                base + (bucket + 1) * granularity - 1 <= now
                and (limit is None or limit - taken >= len(entries))
            ):
                count = len(entries)
                taken += count
                size -= count
                released.extend(entries)
                entries.clear()
                bitmap.clear(bucket)
                continue
            while entries and entries[0][0] <= now:
                if limit is not None and taken >= limit:
                    break
                released.append(entries.popleft())
                taken += 1
                size -= 1
            if not entries:
                bitmap.clear(bucket)
                continue
            break  # head not yet due, or the limit was reached
        stats = self.stats
        stats.word_scans += scans
        stats.dequeues += taken
        self._size = size
        return released


class MultiWordFFSQueue(IntegerPriorityQueue):
    """Sequentially-scanned multi-word FFS queue.

    The paper describes this as the scheme used by the Linux realtime
    scheduling class: the bucket occupancy bitmap spans ``M`` machine words
    that are scanned in order until a non-zero word is found.  Efficient for
    very small ``M``; included both as a usable queue and as the stepping
    stone to the hierarchical variant.
    """

    __slots__ = ("word_width", "num_words", "_words", "_buckets")

    def __init__(self, spec: BucketSpec, word_width: int = DEFAULT_WORD_WIDTH) -> None:
        super().__init__(spec)
        self.word_width = word_width
        self.num_words = (spec.num_buckets + word_width - 1) // word_width
        self._words = [0] * self.num_words
        self._buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(spec.num_buckets)
        ]

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            raise PriorityOutOfRangeError(
                f"priority {priority} outside fixed range of MultiWordFFSQueue"
            )
        bucket = self.spec.bucket_for(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        self._buckets[bucket].append((priority, item))
        word_index, bit = divmod(bucket, self.word_width)
        self._words[word_index] = set_bit(self._words[word_index], bit)
        self._size += 1

    def _min_bucket(self) -> int:
        for word_index, word in enumerate(self._words):
            self.stats.word_scans += 1
            if word:
                return word_index * self.word_width + find_first_set(word)
        raise EmptyQueueError("no non-empty bucket")

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty MultiWordFFSQueue")
        bucket = self._min_bucket()
        entry = self._buckets[bucket].popleft()
        if not self._buckets[bucket]:
            word_index, bit = divmod(bucket, self.word_width)
            self._words[word_index] = clear_bit(self._words[word_index], bit)
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty MultiWordFFSQueue")
        bucket = self._min_bucket()
        return self._buckets[bucket][0]

    # -- batch operations -------------------------------------------------

    def _clear_bucket_bit(self, bucket: int) -> None:
        word_index, bit = divmod(bucket, self.word_width)
        self._words[word_index] = clear_bit(self._words[word_index], bit)

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one bucket lookup and bit set per bucket.

        Same direct-append shape as :meth:`FFSQueue.enqueue_batch`: a key
        set tracks distinct buckets, counters settle once, and a mid-batch
        validation error leaves the inserted prefix enqueued and counted.
        """
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        hi = base + spec.horizon
        stats = self.stats
        buckets = self._buckets
        words = self._words
        width = self.word_width
        seen: set[int] = set()
        seen_add = seen.add
        count = 0
        try:
            for pair in pairs:
                priority = pair[0]
                if type(priority) is not int:
                    priority = validate_priority(priority)
                    pair = (priority, pair[1])
                if priority < base or priority >= hi:
                    raise PriorityOutOfRangeError(
                        f"priority {priority} outside fixed range of MultiWordFFSQueue"
                    )
                bucket = (priority - base) // granularity
                seen_add(bucket)
                entries = buckets[bucket]
                if not entries:
                    word_index, bit = divmod(bucket, width)
                    words[word_index] |= 1 << bit
                entries.append(pair)
                count += 1
        finally:
            stats.enqueues += count
            stats.bucket_lookups += len(seen)
            self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one word scan per bucket visited."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        buckets = self._buckets
        taken = 0
        while taken < n and self._size:
            bucket = self._min_bucket()
            entries = buckets[bucket]
            space = n - taken
            if space >= len(entries):
                take = len(entries)
                batch.extend(entries)
                entries.clear()
                self._clear_bucket_bit(bucket)
            else:
                take = space
                popleft = entries.popleft
                for _ in range(take):
                    batch.append(popleft())
            taken += take
            self._size -= take
        self.stats.dequeues += taken
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        buckets = self._buckets
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        size = self._size
        taken = 0
        while size and (limit is None or taken < limit):
            bucket = self._min_bucket()
            entries = buckets[bucket]
            if (
                base + (bucket + 1) * granularity - 1 <= now
                and (limit is None or limit - taken >= len(entries))
            ):
                count = len(entries)
                taken += count
                size -= count
                released.extend(entries)
                entries.clear()
                self._clear_bucket_bit(bucket)
                continue
            while entries and entries[0][0] <= now:
                if limit is not None and taken >= limit:
                    break
                released.append(entries.popleft())
                taken += 1
                size -= 1
            if not entries:
                self._clear_bucket_bit(bucket)
                continue
            break
        self.stats.dequeues += taken
        self._size = size
        return released


__all__ = [
    "Bitmap",
    "DEFAULT_WORD_WIDTH",
    "FFSQueue",
    "MultiWordFFSQueue",
    "clear_bit",
    "count_set_bits",
    "find_first_set",
    "find_last_set",
    "popcount",
    "set_bit",
    "test_bit",
]
