"""Deterministic observability plane: histograms, flight recorder, timeline.

The runtime's telemetry grew up as counters and sums — good enough to spot a
bottleneck shard, useless for the questions a production deployment is
actually judged on: *what is the p99, and what was the system doing when it
spiked?*  This module adds the three instruments that answer them, all
deterministic and replayable from the scenario seed because every timestamp
they ever see is virtual-clock time:

* :class:`LogHistogram` — an HDR-style log2-bucketed latency histogram:
  ``__slots__``, one flat :mod:`array` of counts, an allocation-free
  :meth:`~LogHistogram.record`, mergeable across shards and picklable across
  the process-backend boundary with the same plain-dict wire format the
  ``CounterStatsMixin`` counters use.  The runtime keeps one per latency
  seam (RX-ring sojourn, mailbox wait, shard-queue sojourn, end-to-end
  submit→transmit) instead of unbounded raw-sample lists: memory is constant
  under overload and :meth:`~LogHistogram.quantile` has a documented error
  bound (``estimate - exact <= exact >> precision``).

* :class:`FlightRecorder` — a bounded ring-buffer tracer armed with
  ``ShardedRuntime(tracer=...)``.  Same contract as ``fault_plan``: the
  runtime holds ``None`` by default and every seam guards on one
  ``is not None`` check, so a disarmed run is byte-identical.  Armed, it
  captures virtual-clock events at the existing seams (ingress pull,
  mailbox handoff, drain batch, lease grant/return, rebalance migration,
  fault injection and recovery) and exports Chrome trace-event JSON — one
  track per shard / RX core / supervisor — that opens directly in Perfetto.

* :class:`MetricsTimeline` — a periodic gauge sampler riding the
  supervision cadence: shard backlogs, mailbox occupancy, RX ring depth,
  cycle accounts, live flow slots and open leases snapshotted into a
  time-series, exportable as Prometheus exposition text and JSON.

None of the instruments charge modelled cycles: arming the full plane
changes wall-clock cost only, never the cost model's answers
(``benchmarks/bench_observability.py`` asserts the disarmed cycle accounts
against the committed hot-path artifact and records the armed overhead).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "FlightRecorder",
    "LogHistogram",
    "MetricsTimeline",
]

#: Values above this are clamped on record; keeps the bucket array finite.
MAX_TRACKABLE_NS = (1 << 62) - 1

GaugeValue = Union[int, float, Dict[str, Union[int, float]]]


class LogHistogram:
    """Log2-bucketed latency histogram with linear sub-buckets.

    Values in ``[0, 2**precision)`` land in exact unit-width buckets; above
    that, each power-of-two range splits into ``2**precision`` linear
    sub-buckets, so the bucket width never exceeds ``value >> precision``.
    :meth:`quantile` returns the upper edge of the bucket holding the target
    rank (clamped to the observed maximum), which pins the error bound:

        ``exact <= quantile(q) <= exact + (exact >> precision)``

    i.e. a relative overestimate of at most ``2**-precision`` (0.78% at the
    default ``precision=7``).  :meth:`record` is allocation-free — one
    ``bit_length``, one shift, one array increment — because it sits on the
    per-packet path of every armed seam.

    Histograms ``merge()`` like the counter dataclasses and pickle with the
    same explicit plain-dict wire format (``__slots__`` forfeits the
    ``__dict__`` default), so per-shard histograms cross the process-backend
    boundary inside a ``ShardResult`` exactly like counter snapshots do.
    """

    __slots__ = ("precision", "_sub", "counts", "count", "sum", "min_value", "max_value")

    def __init__(self, precision: int = 7) -> None:
        if not 1 <= precision <= 12:
            raise ValueError("precision must be in [1, 12]")
        self.precision = precision
        self._sub = 1 << precision
        # Max clamped value has bit_length 62 -> top index (63 - p) * 2**p - 1.
        self.counts = array("Q", bytes(8 * (63 - precision) * self._sub))
        self.count = 0
        self.sum = 0
        self.min_value: Optional[int] = None
        self.max_value = 0

    # -- recording ---------------------------------------------------------

    def record(self, value: int) -> None:
        """Record one non-negative sample (negative clamps to zero)."""
        if value < 0:
            value = 0
        elif value > MAX_TRACKABLE_NS:
            value = MAX_TRACKABLE_NS
        if value < self._sub:
            index = value
        else:
            shift = value.bit_length() - 1 - self.precision
            index = shift * self._sub + (value >> shift)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    # -- reading -----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact mean of the recorded samples (sum and count are exact)."""
        return self.sum / self.count if self.count else 0.0

    def _bucket_bounds(self, index: int) -> Tuple[int, int]:
        if index < self._sub:
            return index, index
        shift = index // self._sub - 1
        m = index - shift * self._sub
        return m << shift, ((m + 1) << shift) - 1

    def quantile(self, q: float) -> int:
        """Upper bucket edge at quantile ``q`` in ``[0, 1]`` (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0
        target = min(self.count, max(1, _ceil_rank(q, self.count)))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if cumulative >= target:
                upper = self._bucket_bounds(index)[1]
                return min(upper, self.max_value)
        return self.max_value  # pragma: no cover - unreachable when count > 0

    def nonzero(self) -> Iterable[Tuple[int, int, int]]:
        """Yield ``(lower_edge, upper_edge, count)`` per occupied bucket."""
        for index, bucket_count in enumerate(self.counts):
            if bucket_count:
                lower, upper = self._bucket_bounds(index)
                yield lower, upper, bucket_count

    # -- composition -------------------------------------------------------

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram in place (same precision)."""
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge precision={other.precision} into precision={self.precision}"
            )
        counts = self.counts
        for index, bucket_count in enumerate(other.counts):
            if bucket_count:
                counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min_value is not None and (
            self.min_value is None or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        return self

    def snapshot(self) -> "LogHistogram":
        """An independent copy (for diff-free periodic capture)."""
        clone = LogHistogram(self.precision)
        clone.counts = array("Q", self.counts)
        clone.count = self.count
        clone.sum = self.sum
        clone.min_value = self.min_value
        clone.max_value = self.max_value
        return clone

    def reset(self) -> None:
        """Zero every bucket and counter in place."""
        self.counts = array("Q", bytes(8 * len(self.counts)))
        self.count = 0
        self.sum = 0
        self.min_value = None
        self.max_value = 0

    @classmethod
    def aggregate(cls, histograms: Iterable["LogHistogram"], precision: int = 7) -> "LogHistogram":
        """Merge an iterable of histograms into one fresh instance."""
        total = cls(precision)
        for histogram in histograms:
            total.merge(histogram)
        return total

    # -- wire format -------------------------------------------------------

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-friendly quantile summary (artifact / telemetry row)."""
        return {
            "count": self.count,
            "sum_ns": self.sum,
            "mean_ns": self.mean,
            "min_ns": self.min_value or 0,
            "max_ns": self.max_value,
            "p50_ns": self.quantile(0.50),
            "p90_ns": self.quantile(0.90),
            "p99_ns": self.quantile(0.99),
            "p999_ns": self.quantile(0.999),
        }

    def __getstate__(self) -> Dict[str, Any]:
        # Sparse plain-dict wire format, in the CounterStatsMixin spirit:
        # explicit because __slots__ forfeits the __dict__ pickle default.
        return {
            "precision": self.precision,
            "count": self.count,
            "sum": self.sum,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "counts": {i: c for i, c in enumerate(self.counts) if c},
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["precision"])
        for index, bucket_count in state["counts"].items():
            self.counts[index] = bucket_count
        self.count = state["count"]
        self.sum = state["sum"]
        self.min_value = state["min_value"]
        self.max_value = state["max_value"]

    def __reduce__(self):
        return (_rebuild_histogram, (self.__getstate__(),))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (
            self.precision == other.precision
            and self.count == other.count
            and self.sum == other.sum
            and self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.counts == other.counts
        )

    def __repr__(self) -> str:
        return (
            f"LogHistogram(precision={self.precision}, count={self.count}, "
            f"p50={self.quantile(0.5)}, p99={self.quantile(0.99)}, max={self.max_value})"
        )


def _ceil_rank(q: float, count: int) -> int:
    """``ceil(q * count)`` computed without binary-float edge surprises."""
    scaled = q * count
    rank = int(scaled)
    return rank if rank == scaled else rank + 1


def _rebuild_histogram(state: Dict[str, Any]) -> LogHistogram:
    histogram = LogHistogram.__new__(LogHistogram)
    histogram.__setstate__(state)
    return histogram


class FlightRecorder:
    """Bounded ring-buffer tracer over virtual-clock events.

    The runtime emits one event per interesting seam crossing; the recorder
    keeps the most recent ``capacity`` of them (drop-oldest, with the total
    drop count preserved), so an armed run's memory stays constant no matter
    how long the workload is — a flight recorder, not a full log.

    Events are ``(ts_ns, track, name, args)`` tuples; ``track`` names the
    lane of execution (``"shard-3"``, ``"rx-0"``, ``"supervisor"``) and
    becomes one thread track in the Chrome trace-event export.  Every
    timestamp is simulated time, so the same seed replays the same trace
    byte for byte.
    """

    __slots__ = ("capacity", "recorded", "_events")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.recorded = 0
        self._events: List[Tuple[int, str, str, Optional[Dict[str, Any]]]] = []

    def emit(
        self,
        ts_ns: int,
        track: str,
        name: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event, evicting the oldest past ``capacity``."""
        self.recorded += 1
        events = self._events
        events.append((ts_ns, track, name, args))
        if len(events) > self.capacity:
            del events[0]

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (oldest-first)."""
        return self.recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Tuple[int, str, str, Optional[Dict[str, Any]]]]:
        """The retained events, oldest first."""
        return list(self._events)

    def counts_by_track(self) -> Dict[str, int]:
        """Retained event count per track (artifact summary)."""
        counts: Dict[str, int] = {}
        for _ts, track, _name, _args in self._events:
            counts[track] = counts.get(track, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop every retained event and reset the drop accounting."""
        self.recorded = 0
        self._events.clear()

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (Perfetto-openable).

        One ``pid`` for the whole runtime, one ``tid`` per track in order of
        first appearance (deterministic), each track labelled with a
        ``thread_name`` metadata event, every seam crossing a thread-scoped
        instant event with its virtual-clock timestamp in microseconds.
        """
        tids: Dict[str, int] = {}
        trace_events: List[Dict[str, Any]] = []
        for ts_ns, track, name, args in self._events:
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids)
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": tid,
                        "args": {"name": track},
                    }
                )
            trace_events.append(
                {
                    "name": name,
                    "ph": "i",
                    "ts": ts_ns / 1000.0,
                    "pid": 0,
                    "tid": tid,
                    "s": "t",
                    "args": args or {},
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


class MetricsTimeline:
    """Periodic gauge snapshots into a deterministic time-series.

    The runtime arms one simulator timer per ``interval_ns`` of virtual time
    while work is in flight and hands each tick's gauge readings to
    :meth:`sample`; a gauge is either a scalar or an ``{id: value}`` map
    (per-shard backlogs, per-lane ring depths).  Export the last reading as
    Prometheus exposition text (:meth:`to_prometheus` — what a scrape of the
    live system would see) or the whole series as JSON (:meth:`as_dict`).
    """

    __slots__ = ("interval_ns", "samples")

    def __init__(self, interval_ns: int = 100_000) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.interval_ns = interval_ns
        self.samples: List[Dict[str, Any]] = []

    def sample(self, ts_ns: int, gauges: Dict[str, GaugeValue]) -> None:
        """Append one reading at virtual time ``ts_ns``."""
        self.samples.append({"ts_ns": ts_ns, "gauges": gauges})

    def __len__(self) -> int:
        return len(self.samples)

    def clear(self) -> None:
        self.samples.clear()

    def as_dict(self) -> Dict[str, Any]:
        """The full time-series, JSON-friendly."""
        return {"interval_ns": self.interval_ns, "samples": list(self.samples)}

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus exposition text for the most recent sample.

        Scalar gauges render bare; map-valued gauges render one line per
        ``id`` label.  An empty timeline renders to an empty string.
        """
        if not self.samples:
            return ""
        last = self.samples[-1]
        lines: List[str] = []
        for metric in sorted(last["gauges"]):
            value = last["gauges"][metric]
            lines.append(f"# TYPE {prefix}{metric} gauge")
            if isinstance(value, dict):
                for label in sorted(value, key=str):
                    lines.append(f'{prefix}{metric}{{id="{label}"}} {value[label]}')
            else:
                lines.append(f"{prefix}{metric} {value}")
        return "\n".join(lines) + "\n"
