"""Unit tests for the comparison-based baselines (heap, RB-tree, sorted list)."""

import random

import pytest

from repro.core.queues import (
    BinaryHeapQueue,
    BucketSpec,
    BucketedHeapQueue,
    EmptyQueueError,
    RBTreeQueue,
    SortedListQueue,
)


ALL_COMPARISON_QUEUES = [BinaryHeapQueue, RBTreeQueue, SortedListQueue]


@pytest.mark.parametrize("queue_cls", ALL_COMPARISON_QUEUES)
class TestCommonBehaviour:
    def test_sorted_drain(self, queue_cls):
        rng = random.Random(21)
        queue = queue_cls()
        priorities = [rng.randrange(10_000) for _ in range(500)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_fifo_for_equal_priorities(self, queue_cls):
        queue = queue_cls()
        queue.enqueue(7, "first")
        queue.enqueue(7, "second")
        queue.enqueue(7, "third")
        items = [queue.extract_min()[1] for _ in range(3)]
        assert items == ["first", "second", "third"]

    def test_empty_raises(self, queue_cls):
        queue = queue_cls()
        with pytest.raises(EmptyQueueError):
            queue.extract_min()
        with pytest.raises(EmptyQueueError):
            queue.peek_min()

    def test_peek_then_extract(self, queue_cls):
        queue = queue_cls()
        queue.enqueue(3, "x")
        queue.enqueue(1, "y")
        assert queue.peek_min() == (1, "y")
        assert queue.extract_min() == (1, "y")
        assert len(queue) == 1

    def test_negative_priorities_supported(self, queue_cls):
        queue = queue_cls()
        queue.enqueue(-5, "early")
        queue.enqueue(5, "late")
        assert queue.extract_min() == (-5, "early")

    def test_interleaved_operations(self, queue_cls):
        rng = random.Random(13)
        queue = queue_cls()
        reference = []
        for _ in range(300):
            if reference and rng.random() < 0.4:
                expected = min(reference)
                priority, _ = queue.extract_min()
                assert priority == expected
                reference.remove(expected)
            else:
                priority = rng.randrange(1000)
                queue.enqueue(priority, priority)
                reference.append(priority)


class TestBinaryHeapSpecifics:
    def test_heap_operation_accounting(self):
        queue = BinaryHeapQueue()
        for i in range(100):
            queue.enqueue(i, i)
        assert queue.stats.heap_operations > 0

    def test_reheapify_counts_linear_cost(self):
        queue = BinaryHeapQueue()
        for i in range(64):
            queue.enqueue(i, i)
        before = queue.stats.heap_operations
        queue.reheapify()
        assert queue.stats.heap_operations - before >= 64


class TestRBTreeSpecifics:
    def test_invariants_after_random_workload(self):
        rng = random.Random(31)
        queue = RBTreeQueue()
        for _ in range(2000):
            if len(queue) and rng.random() < 0.45:
                queue.extract_min()
            else:
                queue.enqueue(rng.randrange(500), None)
            queue.check_invariants()

    def test_keys_in_order(self):
        queue = RBTreeQueue()
        for priority in [50, 10, 30, 70, 20]:
            queue.enqueue(priority, None)
        assert list(queue.keys_in_order()) == [10, 20, 30, 50, 70]

    def test_node_count_tracks_distinct_priorities(self):
        queue = RBTreeQueue()
        queue.enqueue(5, "a")
        queue.enqueue(5, "b")
        queue.enqueue(9, "c")
        assert queue.node_count == 2
        queue.extract_min()
        assert queue.node_count == 2  # priority 5 still has one item
        queue.extract_min()
        assert queue.node_count == 1

    def test_full_drain_empties_tree(self):
        rng = random.Random(8)
        queue = RBTreeQueue()
        for _ in range(500):
            queue.enqueue(rng.randrange(100), None)
        list(queue.extract_all())
        assert queue.node_count == 0
        queue.check_invariants()


class TestBucketedHeapQueue:
    def test_sorted_drain(self):
        rng = random.Random(17)
        queue = BucketedHeapQueue(BucketSpec(num_buckets=5000))
        priorities = [rng.randrange(5000) for _ in range(2000)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_lazy_deletion_handles_stale_entries(self):
        queue = BucketedHeapQueue(BucketSpec(num_buckets=100))
        queue.enqueue(10, "a")
        queue.enqueue(10, "b")
        queue.enqueue(20, "c")
        # Drain bucket 10 fully, then reinsert to create potential staleness.
        queue.extract_min()
        queue.extract_min()
        queue.enqueue(10, "d")
        assert queue.extract_min() == (10, "d")
        assert queue.extract_min() == (20, "c")

    def test_heap_operations_counted(self):
        queue = BucketedHeapQueue(BucketSpec(num_buckets=1000))
        for i in range(0, 1000, 7):
            queue.enqueue(i, i)
        list(queue.extract_all())
        assert queue.stats.heap_operations > 0
