"""Fault-recovery benchmark — recovery time and packets-at-risk per fault kind.

The fault plane makes failure a measurable input: every fault kind is
injected into a fixed paced workload and the artifact records what recovery
*cost* — how long the runtime took to detect and repair the failure
(simulated nanoseconds from injection to the recovery sweep) and how many
packets were at risk (lost with the crashed shard's private state, salvaged
from its mailbox, or dropped at the injected seam) — next to the proof that
the run still completed with every packet accounted for.

Two halves:

* **simulated** — ``shard_crash`` / ``shard_stall`` / ``ingress_wedge`` /
  ``handoff_drop`` on the simulated backend: recovery latency comes from the
  runtime's ``recovery_log`` (failure timestamp to recovery sweep, in
  simulated ns), packets-at-risk from ``FaultStats``, and every row asserts
  its conservation law (``transmitted + lost == accepted``).
* **process** — ``child_crash`` / ``shm_corrupt`` / ``child_hang`` on the
  :class:`~repro.runtime.backend.ProcessBackend`: the child really dies (or
  wedges) and the parent's supervised restart replays its schedule; the
  artifact records the wall-clock overhead of the restart against a clean
  run of the same workload, plus the restart log entry (reason, exit code,
  acked watermark).

Results land in ``BENCH_faults.json`` at the repo root.  Run standalone
(``python benchmarks/bench_faults.py``) to regenerate it with full workload
sizes; the pytest entry point runs a smoke-sized workload and asserts the
recovery contract only.
"""

import json
import os
import time
from pathlib import Path

from conftest import report

from repro.core.model.packet import Packet
from repro.runtime import FaultEvent, FaultPlan, ProcessBackend, ShardedRuntime

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

SEED = 20_190_226  # NSDI'19

NUM_SHARDS = 4
NUM_FLOWS = 16
RATE_BPS = 8e6  # 100 B => 100 us spacing: many ticks, many trigger ordinals
PACKET_BYTES = 100

FULL_PACKETS = 2_000
SMOKE_PACKETS = 240

PROC_RATE_BPS = 1e9
PROC_QUANTUM_NS = 10_000
FULL_PROC_BURSTS = 12
SMOKE_PROC_BURSTS = 6
PROC_PER_BURST = 16

#: Single-event schedules, far enough in to catch the pipeline mid-flight.
SIMULATED_PLANS = {
    "shard_crash": FaultPlan([FaultEvent("shard_crash", target=0, at=3)]),
    "shard_stall": FaultPlan([FaultEvent("shard_stall", target=1, at=3)]),
    "ingress_wedge": FaultPlan([FaultEvent("ingress_wedge", target=0, at=2)]),
    "handoff_drop": FaultPlan([FaultEvent("handoff_drop", target=0, count=4)]),
}

PROCESS_FAULTS = {
    "child_crash": {0: ("child_crash", 2)},
    "shm_corrupt": {1: ("shm_corrupt", 2)},
    "child_hang": {0: ("child_hang", 2)},
}


def _simulated_run(num_packets: int, kind: str, plan) -> dict:
    """One paced run with (or without) an armed plan; returns the row."""
    # The wedge needs an RX lane to wedge; everything else keeps the
    # historical synchronous ingress so the seam under test is the only
    # thing that changes between rows.
    ingress_cores = 1 if kind == "ingress_wedge" else 0
    runtime = ShardedRuntime(
        NUM_SHARDS,
        ingress_cores=ingress_cores,
        default_rate_bps=RATE_BPS,
        fault_plan=plan,
    )
    accepted = 0
    for i in range(num_packets):
        if runtime.submit(Packet(flow_id=i % NUM_FLOWS, size_bytes=PACKET_BYTES)):
            accepted += 1
    runtime.run()
    telemetry = runtime.telemetry()
    faults = telemetry.faults
    recoveries = [
        entry["recovered_at_ns"] - entry["failed_at_ns"]
        for entry in faults["recovery_log"]
    ]
    # Injected handoff drops are refused at submit() (never accepted), so
    # the two conservation laws are: what got in is delivered or counted
    # lost, and what did not get in is a counted drop.
    assert runtime.transmitted + faults["packets_lost"] == accepted, (
        f"{kind}: {runtime.transmitted} transmitted "
        f"+ {faults['packets_lost']} lost != {accepted}"
    )
    assert accepted + faults["handoff_drops"] == num_packets, (
        f"{kind}: {accepted} accepted + {faults['handoff_drops']} drops "
        f"!= {num_packets}"
    )
    residual = runtime.residual_state()
    assert all(value == 0 for value in residual.values()), (kind, residual)
    return {
        "offered": num_packets,
        "accepted": accepted,
        "transmitted": runtime.transmitted,
        "drain_ns": runtime.simulator.now_ns,
        "recoveries": len(recoveries),
        "recovery_ns_mean": (sum(recoveries) / len(recoveries)) if recoveries else None,
        "packets_lost": faults["packets_lost"],
        "packets_salvaged": faults["packets_salvaged"],
        "handoff_drops": faults["handoff_drops"],
        "flows_rehomed": faults["flows_rehomed"],
    }


def _process_workload(runtime, bursts: int) -> int:
    offered = 0
    for t in range(bursts):
        runtime.submit_at(
            t * 50_000,
            [Packet(flow_id=f, size_bytes=1500) for f in range(PROC_PER_BURST)],
        )
        offered += PROC_PER_BURST
    return offered


def _process_run(bursts: int, faults) -> dict:
    backend = ProcessBackend(
        restart_backoff_s=0.01,
        hang_timeout_s=0.3,
        faults=faults,
    )
    runtime = ShardedRuntime(
        2,
        default_rate_bps=PROC_RATE_BPS,
        quantum_ns=PROC_QUANTUM_NS,
        backend=backend,
    )
    offered = _process_workload(runtime, bursts)
    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start
    assert runtime.transmitted == offered, (
        f"{runtime.transmitted} transmitted != {offered} offered"
    )
    return {
        "offered": offered,
        "transmitted": runtime.transmitted,
        "wall_sec": elapsed,
        "restart_log": list(backend.restart_log),
    }


def run_fault_sweep(
    num_packets: int = FULL_PACKETS, proc_bursts: int = FULL_PROC_BURSTS
) -> dict:
    """Benchmark every fault kind; assert the recovery contract per row."""
    simulated = {"disarmed": _simulated_run(num_packets, "disarmed", None)}
    for kind, plan in SIMULATED_PLANS.items():
        row = _simulated_run(num_packets, kind, plan)
        row["drain_overhead_ns"] = row["drain_ns"] - simulated["disarmed"]["drain_ns"]
        simulated[kind] = row

    process = {"clean": _process_run(proc_bursts, None)}
    for kind, faults in PROCESS_FAULTS.items():
        row = _process_run(proc_bursts, faults)
        (entry,) = row["restart_log"]
        row["restart_overhead_sec"] = row["wall_sec"] - process["clean"]["wall_sec"]
        row["restart_reason"] = entry["reason"]
        row["exit_code"] = entry["exit_code"]
        process[kind] = row

    return {
        "benchmark": "fault_recovery",
        "description": (
            "Recovery time and packets-at-risk per injected fault kind: "
            "simulated-plane faults (crash/stall/wedge/handoff-drop) report "
            "recovery latency in simulated ns from the runtime recovery log; "
            "process-backend faults (child death/hang/shm corruption) report "
            "the wall-clock overhead of the supervised child restart.  Every "
            "row asserts conservation: transmitted + counted losses == "
            "accepted."
        ),
        "workload": {
            "simulated": {
                "num_packets": num_packets,
                "num_flows": NUM_FLOWS,
                "num_shards": NUM_SHARDS,
                "flow_rate_bps": RATE_BPS,
                "packet_bytes": PACKET_BYTES,
            },
            "process": {
                "bursts": proc_bursts,
                "per_burst": PROC_PER_BURST,
                "num_shards": 2,
                "flow_rate_bps": PROC_RATE_BPS,
                "quantum_ns": PROC_QUANTUM_NS,
            },
            "seed": SEED,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "ci": bool(os.environ.get("CI")),
        },
        "simulated": simulated,
        "process": process,
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_faults.json`` (the fault-recovery artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_sweep(results: dict) -> str:
    lines = [
        f"{'fault kind':<16}{'recoveries':<12}{'recovery':<14}"
        f"{'lost':<7}{'salvaged':<10}{'transmitted':<12}"
    ]
    for kind, row in results["simulated"].items():
        recovery = (
            f"{row['recovery_ns_mean']:.0f} ns"
            if row["recovery_ns_mean"] is not None
            else "-"
        )
        lost = row["packets_lost"] + row["handoff_drops"]
        lines.append(
            f"{kind:<16}{row['recoveries']:<12}{recovery:<14}"
            f"{lost:<7}{row['packets_salvaged']:<10}{row['transmitted']:<12}"
        )
    lines.append("")
    lines.append(f"{'child fault':<16}{'restarts':<10}{'overhead s':<12}{'exit':<6}")
    for kind, row in results["process"].items():
        if kind == "clean":
            continue
        lines.append(
            f"{kind:<16}{len(row['restart_log']):<10}"
            f"{row['restart_overhead_sec']:<12.3f}{row['exit_code']:<6}"
        )
    host = results["host"]
    lines.append(f"host: cpu_count={host['cpu_count']} ci={host['ci']}")
    return "\n".join(lines)


# -- pytest entry point -------------------------------------------------------


def test_fault_recovery_sweep(benchmark, tmp_path):
    results = benchmark.pedantic(
        run_fault_sweep,
        kwargs={"num_packets": SMOKE_PACKETS, "proc_bursts": SMOKE_PROC_BURSTS},
        rounds=1,
        iterations=1,
    )
    # The committed BENCH_faults.json holds the full-size run; the test
    # writes to a scratch path.
    path = write_artifact(results, tmp_path / "BENCH_faults.json")
    report("Fault recovery — latency and packets-at-risk", _format_sweep(results))
    benchmark.extra_info["artifact"] = str(path)
    # The recovery contract per kind: each injected failure was detected
    # and repaired (run_fault_sweep already asserted conservation per row).
    simulated = results["simulated"]
    assert simulated["disarmed"]["recoveries"] == 0
    for kind in SIMULATED_PLANS:
        assert simulated[kind]["recoveries"] >= (0 if kind == "handoff_drop" else 1), kind
    assert simulated["handoff_drop"]["handoff_drops"] == 4
    for kind in PROCESS_FAULTS:
        assert len(results["process"][kind]["restart_log"]) == 1, kind


if __name__ == "__main__":
    sweep = run_fault_sweep()
    artifact = write_artifact(sweep)
    print(_format_sweep(sweep))
    print(f"\nwrote {artifact}")
