"""Comparison-based priority queue baselines.

The systems Eiffel is compared against use classic O(log n) comparison
structures: the FQ/pacing qdisc keeps flows in a red-black tree, hClock and
the pFabric baseline use binary min-heaps.  These baselines are implemented
here with the same ``(priority, item)`` interface as the bucketed queues so
every benchmark can swap implementations freely.

All three structures order ties by insertion sequence, preserving the FIFO
behaviour within a rank that the bucketed queues give for free.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from typing import Any, Iterable, Iterator, Optional

from .base import BucketSpec, EmptyQueueError, IntegerPriorityQueue, validate_priority


class BinaryHeapQueue(IntegerPriorityQueue):
    """Classic binary min-heap (the C++ ``std::priority_queue`` stand-in)."""

    __slots__ = ("_heap", "_counter")

    def __init__(self, spec: Optional[BucketSpec] = None) -> None:
        super().__init__(spec or BucketSpec(num_buckets=1))
        self._heap: list[tuple[int, int, Any]] = []
        self._counter = itertools.count()

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        self.stats.enqueues += 1
        heapq.heappush(self._heap, (priority, next(self._counter), item))
        self.stats.heap_operations += max(1, len(self._heap).bit_length())
        self._size += 1

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty BinaryHeapQueue")
        priority, _seq, item = heapq.heappop(self._heap)
        self.stats.heap_operations += max(1, (len(self._heap) + 1).bit_length())
        self.stats.dequeues += 1
        self._size -= 1
        return priority, item

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty BinaryHeapQueue")
        priority, _seq, item = self._heap[0]
        return priority, item

    def reheapify(self) -> None:
        """Rebuild the heap from scratch (O(n)).

        The pFabric baseline needs this whenever a flow's rank changes, since
        a plain binary heap cannot relocate an arbitrary element cheaply; the
        cost of these calls is what Figure 15 measures.
        """
        heapq.heapify(self._heap)
        self.stats.heap_operations += max(1, len(self._heap))

    # -- batch operations ------------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one O(n) heapify when it beats k pushes.

        Extraction order is fully determined by the ``(priority, seq)`` total
        order, so rebuilding the heap in one pass is observationally identical
        to pushing elements one at a time.
        """
        entries = [
            (validate_priority(priority), next(self._counter), item)
            for priority, item in pairs
        ]
        if not entries:
            return 0
        self.stats.enqueues += len(entries)
        total = len(self._heap) + len(entries)
        if len(entries) * max(1, total.bit_length()) >= total:
            self._heap.extend(entries)
            heapq.heapify(self._heap)
            self.stats.heap_operations += max(1, total)
        else:
            for entry in entries:
                heapq.heappush(self._heap, entry)
                self.stats.heap_operations += max(1, len(self._heap).bit_length())
        self._size += len(entries)
        return len(entries)

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: a full drain sorts in place instead of sifting."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        if n >= self._size and self._size:
            # Draining everything: one O(n log n) sort replaces n pops, each
            # of which would sift the root down the whole heap.
            self._heap.sort()
            drained = [(priority, item) for priority, _seq, item in self._heap]
            self.stats.heap_operations += max(
                1, self._size * max(1, self._size.bit_length()) // 2
            )
            self.stats.dequeues += self._size
            self._heap.clear()
            self._size = 0
            return drained
        batch: list[tuple[int, Any]] = []
        while len(batch) < n and self._size:
            batch.append(self.extract_min())
        return batch


class _RBNode:
    """A red-black tree node keyed by priority, holding a FIFO of items."""

    __slots__ = ("key", "items", "color", "left", "right", "parent")

    RED = 0
    BLACK = 1

    def __init__(self, key: int) -> None:
        self.key = key
        self.items: list[Any] = []
        self.color = _RBNode.RED
        self.left: Optional["_RBNode"] = None
        self.right: Optional["_RBNode"] = None
        self.parent: Optional["_RBNode"] = None


class RBTreeQueue(IntegerPriorityQueue):
    """Red-black tree priority queue (the Linux qdisc data structure).

    Each tree node corresponds to one distinct priority and stores its items
    in FIFO order, mirroring how the FQ qdisc keys its flow tree by next
    transmission time.  Insertion, minimum lookup and deletion are O(log n)
    with the usual rebalancing; the number of rotations and node visits is
    tracked so the CPU cost model can charge them.
    """

    __slots__ = ("_root", "_node_count")

    def __init__(self, spec: Optional[BucketSpec] = None) -> None:
        super().__init__(spec or BucketSpec(num_buckets=1))
        self._root: Optional[_RBNode] = None
        self._node_count = 0

    # -- rotations -------------------------------------------------------------

    def _rotate_left(self, node: _RBNode) -> None:
        self.stats.heap_operations += 1
        pivot = node.right
        assert pivot is not None
        node.right = pivot.left
        if pivot.left is not None:
            pivot.left.parent = node
        pivot.parent = node.parent
        if node.parent is None:
            self._root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
        else:
            node.parent.right = pivot
        pivot.left = node
        node.parent = pivot

    def _rotate_right(self, node: _RBNode) -> None:
        self.stats.heap_operations += 1
        pivot = node.left
        assert pivot is not None
        node.left = pivot.right
        if pivot.right is not None:
            pivot.right.parent = node
        pivot.parent = node.parent
        if node.parent is None:
            self._root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
        else:
            node.parent.left = pivot
        pivot.right = node
        node.parent = pivot

    # -- insertion ----------------------------------------------------------------

    def _find_or_insert_node(self, key: int) -> _RBNode:
        parent = None
        current = self._root
        while current is not None:
            self.stats.bucket_lookups += 1
            parent = current
            if key == current.key:
                return current
            current = current.left if key < current.key else current.right
        node = _RBNode(key)
        node.parent = parent
        if parent is None:
            self._root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._node_count += 1
        self._insert_fixup(node)
        return node

    def _insert_fixup(self, node: _RBNode) -> None:
        while (
            node.parent is not None
            and node.parent.color == _RBNode.RED
            and node.parent.parent is not None
        ):
            grandparent = node.parent.parent
            if node.parent is grandparent.left:
                uncle = grandparent.right
                if uncle is not None and uncle.color == _RBNode.RED:
                    node.parent.color = _RBNode.BLACK
                    uncle.color = _RBNode.BLACK
                    grandparent.color = _RBNode.RED
                    node = grandparent
                else:
                    if node is node.parent.right:
                        node = node.parent
                        self._rotate_left(node)
                    node.parent.color = _RBNode.BLACK
                    grandparent.color = _RBNode.RED
                    self._rotate_right(grandparent)
            else:
                uncle = grandparent.left
                if uncle is not None and uncle.color == _RBNode.RED:
                    node.parent.color = _RBNode.BLACK
                    uncle.color = _RBNode.BLACK
                    grandparent.color = _RBNode.RED
                    node = grandparent
                else:
                    if node is node.parent.left:
                        node = node.parent
                        self._rotate_right(node)
                    node.parent.color = _RBNode.BLACK
                    grandparent.color = _RBNode.RED
                    self._rotate_left(grandparent)
        assert self._root is not None
        self._root.color = _RBNode.BLACK

    # -- minimum + deletion ---------------------------------------------------------

    def _minimum_node(self) -> _RBNode:
        if self._root is None:
            raise EmptyQueueError("RBTreeQueue is empty")
        node = self._root
        while node.left is not None:
            self.stats.bucket_lookups += 1
            node = node.left
        return node

    def _transplant(self, old: _RBNode, new: Optional[_RBNode]) -> None:
        if old.parent is None:
            self._root = new
        elif old is old.parent.left:
            old.parent.left = new
        else:
            old.parent.right = new
        if new is not None:
            new.parent = old.parent

    def _delete_node(self, node: _RBNode) -> None:
        # Since we only ever delete the minimum node (no left child), the
        # full CLRS delete collapses to a transplant plus a fixup walk.
        self.stats.heap_operations += 1
        original_color = node.color
        child = node.right
        child_parent = node.parent
        self._transplant(node, node.right)
        self._node_count -= 1
        if original_color == _RBNode.BLACK:
            self._delete_fixup(child, child_parent)

    def _delete_fixup(
        self, node: Optional[_RBNode], parent: Optional[_RBNode]
    ) -> None:
        while (node is not self._root) and (
            node is None or node.color == _RBNode.BLACK
        ):
            if parent is None:
                break
            if node is parent.left:
                sibling = parent.right
                if sibling is not None and sibling.color == _RBNode.RED:
                    sibling.color = _RBNode.BLACK
                    parent.color = _RBNode.RED
                    self._rotate_left(parent)
                    sibling = parent.right
                if sibling is None:
                    node = parent
                    parent = node.parent
                    continue
                left_black = sibling.left is None or sibling.left.color == _RBNode.BLACK
                right_black = (
                    sibling.right is None or sibling.right.color == _RBNode.BLACK
                )
                if left_black and right_black:
                    sibling.color = _RBNode.RED
                    node = parent
                    parent = node.parent
                else:
                    if right_black:
                        if sibling.left is not None:
                            sibling.left.color = _RBNode.BLACK
                        sibling.color = _RBNode.RED
                        self._rotate_right(sibling)
                        sibling = parent.right
                    assert sibling is not None
                    sibling.color = parent.color
                    parent.color = _RBNode.BLACK
                    if sibling.right is not None:
                        sibling.right.color = _RBNode.BLACK
                    self._rotate_left(parent)
                    node = self._root
                    parent = None
            else:
                sibling = parent.left
                if sibling is not None and sibling.color == _RBNode.RED:
                    sibling.color = _RBNode.BLACK
                    parent.color = _RBNode.RED
                    self._rotate_right(parent)
                    sibling = parent.left
                if sibling is None:
                    node = parent
                    parent = node.parent
                    continue
                left_black = sibling.left is None or sibling.left.color == _RBNode.BLACK
                right_black = (
                    sibling.right is None or sibling.right.color == _RBNode.BLACK
                )
                if left_black and right_black:
                    sibling.color = _RBNode.RED
                    node = parent
                    parent = node.parent
                else:
                    if left_black:
                        if sibling.right is not None:
                            sibling.right.color = _RBNode.BLACK
                        sibling.color = _RBNode.RED
                        self._rotate_left(sibling)
                        sibling = parent.left
                    assert sibling is not None
                    sibling.color = parent.color
                    parent.color = _RBNode.BLACK
                    if sibling.left is not None:
                        sibling.left.color = _RBNode.BLACK
                    self._rotate_right(parent)
                    node = self._root
                    parent = None
        if node is not None:
            node.color = _RBNode.BLACK

    # -- queue interface ---------------------------------------------------------------

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        self.stats.enqueues += 1
        node = self._find_or_insert_node(priority)
        node.items.append(item)
        self._size += 1

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty RBTreeQueue")
        node = self._minimum_node()
        item = node.items.pop(0)
        priority = node.key
        if not node.items:
            self._delete_node(node)
        self.stats.dequeues += 1
        self._size -= 1
        return priority, item

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty RBTreeQueue")
        node = self._minimum_node()
        return node.key, node.items[0]

    # -- batch operations -------------------------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one tree descent per distinct priority."""
        grouped: dict[int, list[Any]] = {}
        count = 0
        for priority, item in pairs:
            grouped.setdefault(validate_priority(priority), []).append(item)
            count += 1
        self.stats.enqueues += count
        for priority, items in grouped.items():
            node = self._find_or_insert_node(priority)
            node.items.extend(items)
        self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one minimum walk per node drained."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        while len(batch) < n and self._size:
            node = self._minimum_node()
            take = min(n - len(batch), len(node.items))
            batch.extend((node.key, item) for item in node.items[:take])
            del node.items[:take]
            if not node.items:
                self._delete_node(node)
            self.stats.dequeues += take
            self._size -= take
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        while self._size and (limit is None or len(released) < limit):
            node = self._minimum_node()
            if node.key > now:
                break
            take = len(node.items)
            if limit is not None:
                take = min(take, limit - len(released))
            released.extend((node.key, item) for item in node.items[:take])
            del node.items[:take]
            if not node.items:
                self._delete_node(node)
            self.stats.dequeues += take
            self._size -= take
        return released

    # -- invariants (used by property-based tests) -----------------------------------------

    @property
    def node_count(self) -> int:
        """Number of distinct priorities currently in the tree."""
        return self._node_count

    def check_invariants(self) -> None:
        """Verify the red-black invariants; raises AssertionError on violation."""
        if self._root is None:
            return
        assert self._root.color == _RBNode.BLACK, "root must be black"
        self._check_subtree(self._root)

    def _check_subtree(self, node: Optional[_RBNode]) -> int:
        if node is None:
            return 1
        if node.color == _RBNode.RED:
            for child in (node.left, node.right):
                assert child is None or child.color == _RBNode.BLACK, (
                    "red node with red child"
                )
        if node.left is not None:
            assert node.left.key < node.key, "BST order violated (left)"
            assert node.left.parent is node, "broken parent pointer (left)"
        if node.right is not None:
            assert node.right.key > node.key, "BST order violated (right)"
            assert node.right.parent is node, "broken parent pointer (right)"
        left_height = self._check_subtree(node.left)
        right_height = self._check_subtree(node.right)
        assert left_height == right_height, "black-height mismatch"
        return left_height + (1 if node.color == _RBNode.BLACK else 0)

    def keys_in_order(self) -> Iterator[int]:
        """Yield the distinct priorities in ascending order."""

        def walk(node: Optional[_RBNode]) -> Iterator[int]:
            if node is None:
                return
            yield from walk(node.left)
            yield node.key
            yield from walk(node.right)

        yield from walk(self._root)


class SortedListQueue(IntegerPriorityQueue):
    """Insertion-sorted list baseline (the "linear search" queue in ns-2 pFabric)."""

    __slots__ = ("_entries", "_counter")

    def __init__(self, spec: Optional[BucketSpec] = None) -> None:
        super().__init__(spec or BucketSpec(num_buckets=1))
        self._entries: list[tuple[int, int, Any]] = []
        self._counter = itertools.count()

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        self.stats.enqueues += 1
        entry = (priority, next(self._counter), item)
        # Linear scan from the tail (new packets usually have late ranks).
        index = len(self._entries)
        while index > 0 and self._entries[index - 1][:2] > entry[:2]:
            index -= 1
            self.stats.linear_scans += 1
        self._entries.insert(index, entry)
        self._size += 1

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty SortedListQueue")
        priority, _seq, item = self._entries.pop(0)
        self.stats.dequeues += 1
        self._size -= 1
        return priority, item

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty SortedListQueue")
        priority, _seq, item = self._entries[0]
        return priority, item

    # -- batch operations -----------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one sorted merge instead of k linear insertions.

        The final list is ordered by the ``(priority, seq)`` total order, the
        same invariant the per-element insertion maintains.
        """
        entries = [
            (validate_priority(priority), next(self._counter), item)
            for priority, item in pairs
        ]
        if not entries:
            return 0
        self.stats.enqueues += len(entries)
        self._entries.extend(entries)
        self._entries.sort(key=lambda entry: entry[:2])
        # Modelled as one merge pass over the combined list.
        self.stats.linear_scans += len(self._entries)
        self._size += len(entries)
        return len(entries)

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one front slice instead of n O(n) pops."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        take = min(n, self._size)
        if take == 0:
            return []
        batch = [(priority, item) for priority, _seq, item in self._entries[:take]]
        del self._entries[:take]
        self.stats.dequeues += take
        self._size -= take
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        if self._size == 0:
            return []
        cutoff = bisect.bisect_right(self._entries, now, key=lambda entry: entry[0])
        self.stats.linear_scans += max(1, len(self._entries).bit_length())
        if limit is not None:
            cutoff = min(cutoff, limit)
        if cutoff == 0:
            return []
        released = [(priority, item) for priority, _seq, item in self._entries[:cutoff]]
        del self._entries[:cutoff]
        self.stats.dequeues += cutoff
        self._size -= cutoff
        return released


__all__ = ["BinaryHeapQueue", "RBTreeQueue", "SortedListQueue"]
