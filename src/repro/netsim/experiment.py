"""Figure 19 experiment: pFabric (exact and approximate) vs DCTCP FCTs.

The paper replaces only the priority-queue implementation inside the pFabric
switches of its ns-2 setup with the approximate gradient queue and shows the
normalized flow completion times are essentially unchanged; DCTCP is included
to anchor the comparison.  Three statistics are reported per load point:

* average normalized FCT of (0, 100 kB] flows,
* 99th-percentile normalized FCT of (0, 100 kB] flows,
* average normalized FCT of (10 MB, inf) flows.

Normalization divides each flow's completion time by the time it would take
on an idle fabric (propagation + serialisation), as in the pFabric paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .elements import (
    DropTailEcnQueue,
    PFabricPortQueue,
    approx_pfabric_queue_factory,
)
from .simulator import Simulator
from .topology import FabricConfig, LeafSpineFabric
from .transport import DctcpTransport, FlowRecord, PFabricTransport
from ..analysis import normalized_fct, percentile
from ..traffic import FlowWorkload

SMALL_FLOW_BYTES = 100_000
LARGE_FLOW_BYTES = 10_000_000


@dataclass
class FabricExperimentConfig:
    """Parameters of one Figure 19 simulation run."""

    fabric: FabricConfig = field(default_factory=FabricConfig)
    workload: str = "websearch"
    num_flows: int = 300
    seed: int = 7
    max_events: int = 4_000_000
    drain_ns: int = 200_000_000


#: Scheme name -> (queue factory, transport class).
SCHEMES: Dict[str, tuple] = {
    "dctcp": (lambda: DropTailEcnQueue(), DctcpTransport),
    "pfabric": (lambda: PFabricPortQueue(), PFabricTransport),
    "pfabric_approx": (
        lambda: PFabricPortQueue(queue_factory=approx_pfabric_queue_factory),
        PFabricTransport,
    ),
}


def multiqueue_pfabric_scheme(num_shards: int, approx: bool = False) -> tuple:
    """A multi-queue pFabric scheme: per-port priority rings behind RSS.

    Every switch port becomes a
    :class:`~repro.runtime.adapters.ShardedPortQueue` of ``num_shards``
    pFabric sub-queues under **priority TX arbitration**: each ring keeps
    pFabric's shallowest-remaining-first order internally, and the arbiter
    serves the ring whose head packet ranks best, so strict priority holds
    across rings too.  (Round-robin arbitration demonstrably collapses the
    small-flow FCTs — mice wait behind an elephant's ring turns — which is
    exactly what the Figure 19 multi-core reproduction guards against.)
    """
    # Imported here: repro.runtime.adapters pulls in the kernel qdisc base,
    # which would cycle if imported while this package initialises.
    from ..runtime.adapters import ShardedPortQueue

    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if approx:
        def sub_queue(shard: int) -> PFabricPortQueue:
            return PFabricPortQueue(queue_factory=approx_pfabric_queue_factory)
    else:
        def sub_queue(shard: int) -> PFabricPortQueue:
            return PFabricPortQueue()
    return (
        lambda: ShardedPortQueue(num_shards, sub_queue, arbiter="priority"),
        PFabricTransport,
    )


@dataclass
class FabricRunResult:
    """Completed flow records plus the configuration that produced them."""

    scheme: str
    load: float
    config: FabricExperimentConfig
    flows: List[FlowRecord] = field(default_factory=list)
    drops: int = 0

    def _normalized(self, record: FlowRecord) -> float:
        return normalized_fct(
            record.fct_seconds,
            record.size_bytes,
            self.config.fabric.edge_rate_bps,
            self.config.fabric.base_rtt_seconds(),
        )

    def completed(self) -> List[FlowRecord]:
        """Flows that finished within the simulation horizon."""
        return [record for record in self.flows if record.completed]

    def normalized_fcts(
        self, min_bytes: int = 0, max_bytes: Optional[int] = None
    ) -> List[float]:
        """Normalized FCTs of completed flows within a size band."""
        values = []
        for record in self.completed():
            if record.size_bytes <= min_bytes:
                continue
            if max_bytes is not None and record.size_bytes > max_bytes:
                continue
            values.append(self._normalized(record))
        return values

    def small_flow_avg(self) -> float:
        """Average normalized FCT of (0, 100 kB] flows."""
        values = self.normalized_fcts(0, SMALL_FLOW_BYTES)
        return sum(values) / len(values) if values else float("nan")

    def small_flow_p99(self) -> float:
        """99th-percentile normalized FCT of (0, 100 kB] flows."""
        values = self.normalized_fcts(0, SMALL_FLOW_BYTES)
        return percentile(values, 99) if values else float("nan")

    def large_flow_avg(self) -> float:
        """Average normalized FCT of (10 MB, inf) flows."""
        values = self.normalized_fcts(LARGE_FLOW_BYTES, None)
        return sum(values) / len(values) if values else float("nan")

    def completion_rate(self) -> float:
        """Fraction of generated flows that completed."""
        if not self.flows:
            return 0.0
        return len(self.completed()) / len(self.flows)


def run_fabric_experiment(
    scheme: str,
    load: float,
    config: FabricExperimentConfig = FabricExperimentConfig(),
    scheme_impl: Optional[tuple] = None,
) -> FabricRunResult:
    """Run one scheme at one load point and return the flow records.

    ``scheme_impl`` lets a caller supply an unregistered ``(queue_factory,
    transport_cls)`` pair (e.g. from :func:`multiqueue_pfabric_scheme`)
    under an ad-hoc name without mutating the global :data:`SCHEMES` table.
    """
    if scheme_impl is not None:
        queue_factory, transport_cls = scheme_impl
    else:
        try:
            queue_factory, transport_cls = SCHEMES[scheme]
        except KeyError as exc:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose from {sorted(SCHEMES)}"
            ) from exc
    simulator = Simulator()
    fabric = LeafSpineFabric(simulator, config.fabric, queue_factory)
    workload = FlowWorkload(
        num_hosts=config.fabric.num_hosts,
        link_bps=config.fabric.edge_rate_bps,
        target_load=load,
        workload=config.workload,
        seed=config.seed,
    )
    arrivals = workload.generate(config.num_flows)
    result = FabricRunResult(scheme=scheme, load=load, config=config)

    def complete(record: FlowRecord) -> None:
        pass  # records are shared; completion time is written by the transport

    for arrival in arrivals:
        record = FlowRecord(
            flow_id=arrival.flow_id,
            src=arrival.src,
            dst=arrival.dst,
            size_bytes=arrival.size_bytes,
            start_ns=arrival.arrival_ns,
        )
        result.flows.append(record)
        transport = transport_cls(simulator, fabric, record, complete)
        simulator.schedule_at(arrival.arrival_ns, transport.start)

    horizon = arrivals[-1].arrival_ns + config.drain_ns if arrivals else config.drain_ns
    simulator.run(until_ns=horizon, max_events=config.max_events)
    result.drops = fabric.total_drops()
    return result


def run_figure19(
    loads: List[float],
    schemes: Optional[List[str]] = None,
    config: FabricExperimentConfig = FabricExperimentConfig(),
) -> Dict[str, List[FabricRunResult]]:
    """Run the full Figure 19 sweep: every scheme at every load point."""
    selected = schemes or list(SCHEMES)
    results: Dict[str, List[FabricRunResult]] = {name: [] for name in selected}
    for load in loads:
        for name in selected:
            results[name].append(run_fabric_experiment(name, load, config))
    return results


__all__ = [
    "FabricExperimentConfig",
    "FabricRunResult",
    "LARGE_FLOW_BYTES",
    "SCHEMES",
    "SMALL_FLOW_BYTES",
    "multiqueue_pfabric_scheme",
    "run_fabric_experiment",
    "run_figure19",
]
