"""Scheduler modules for the BESS pipeline: hClock, pFabric, and BESS ``tc``.

Each module wraps one of the policy implementations from
:mod:`repro.core.policies` and charges its data-structure work to the
pipeline's cost model:

* the Eiffel variants charge the operation counters of their bucketed integer
  queues (FFS word scans, bucket lookups, O(1) relocations);
* the heap baselines charge their ``heap_operations`` counters (heapify /
  percolation element moves);
* the BESS ``tc`` stand-in charges a per-class traversal per packet, which is
  what instantiating "a module corresponding to every flow" costs and why
  that series collapses first in Figure 12.

A module processes a batch by enqueueing every packet and then dequeueing as
many packets as the policy allows at the batch's (virtual) timestamp.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .module import Module
from ..core.model.packet import Packet
from ..core.policies import (
    EiffelHClockScheduler,
    EiffelPFabricScheduler,
    HClockClass,
    HeapHClockScheduler,
    HeapPFabricScheduler,
    PacketScheduler,
)
from ..core.queues import QueueStats


class SchedulerModule(Module):
    """Base class for modules that wrap a :class:`PacketScheduler`."""

    def __init__(self, scheduler: PacketScheduler, virtual_link_bps: float = 10e9) -> None:
        super().__init__()
        self.scheduler = scheduler
        self.virtual_link_bps = virtual_link_bps
        self._virtual_now_ns = 0

    # -- cost hooks ------------------------------------------------------------------

    def charge_per_packet(self, packet: Packet) -> None:
        """Cost of admitting one packet, charged before the scheduler runs."""
        self.charge("flow_lookup")

    def charge_scheduler_work(self) -> None:
        """Cost of the scheduler's internal data-structure work for the batch."""

    # -- batch processing -------------------------------------------------------------

    def _advance_virtual_time(self, batch: List[Packet]) -> None:
        # The busy-polling core serialises packets onto a virtual link; the
        # scheduler observes time advancing accordingly, which matters for
        # rate-limited (non-work-conserving) policies.
        bits = sum(packet.size_bits for packet in batch)
        if bits:
            self._virtual_now_ns += int(bits / self.virtual_link_bps * 1e9)

    def process_batch(self, batch: List[Packet], now_ns: int) -> List[Packet]:
        self._advance_virtual_time(batch)
        now = self._virtual_now_ns
        for packet in batch:
            self.charge_per_packet(packet)
        # The whole batch moves through the policy's amortised batch paths:
        # one admit call and one bounded drain per module invocation.
        self.scheduler.enqueue_batch(batch, now)
        released = self.scheduler.dequeue_due(now, limit=len(batch))
        self.charge_scheduler_work()
        return released

    def drain(self, now_ns: Optional[int] = None) -> List[Packet]:
        """Dequeue everything still eligible (end of run)."""
        now = self._virtual_now_ns if now_ns is None else now_ns
        drained: List[Packet] = []
        while True:
            packet = self.scheduler.dequeue(now)
            if packet is None:
                break
            drained.append(packet)
        return drained


class _BucketQueueChargingMixin:
    """Charges the counter deltas of a set of bucketed integer queues."""

    def _init_snapshots(self, queues) -> None:
        self._charged_queues = list(queues)
        self._snapshots = [QueueStats() for _ in self._charged_queues]

    def charge_scheduler_work(self) -> None:  # type: ignore[override]
        if self.cost is None:
            return
        for index, queue in enumerate(self._charged_queues):
            delta = queue.stats.diff(self._snapshots[index])
            self.cost.charge_queue_stats(delta.as_dict())
            self._snapshots[index] = queue.stats.snapshot()


class HClockEiffelModule(_BucketQueueChargingMixin, SchedulerModule):
    """hClock implemented with Eiffel's bucketed queues."""

    name = "hclock_eiffel"

    def __init__(
        self,
        num_flows: int,
        class_config: Optional[Dict[int, HClockClass]] = None,
        virtual_link_bps: float = 10e9,
    ) -> None:
        scheduler = EiffelHClockScheduler()
        for flow_id, config in (class_config or {}).items():
            scheduler.configure_class(flow_id, config)
        super().__init__(scheduler, virtual_link_bps)
        self.num_flows = num_flows
        self._init_snapshots(
            [
                scheduler._reservation_pifo.queue,
                scheduler._share_pifo.queue,
            ]
        )


class HClockHeapModule(SchedulerModule):
    """hClock baseline: min-heaps re-heapified on every tag update."""

    name = "hclock_heap"

    def __init__(
        self,
        num_flows: int,
        class_config: Optional[Dict[int, HClockClass]] = None,
        virtual_link_bps: float = 10e9,
    ) -> None:
        scheduler = HeapHClockScheduler()
        for flow_id, config in (class_config or {}).items():
            scheduler.configure_class(flow_id, config)
        super().__init__(scheduler, virtual_link_bps)
        self.num_flows = num_flows
        self._charged_heap_ops = 0

    def charge_scheduler_work(self) -> None:
        scheduler: HeapHClockScheduler = self.scheduler  # type: ignore[assignment]
        delta = scheduler.heap_operations - self._charged_heap_ops
        if delta > 0:
            self.charge("heap_operation", delta)
            self._charged_heap_ops = scheduler.heap_operations


class PFabricEiffelModule(_BucketQueueChargingMixin, SchedulerModule):
    """pFabric implemented with Eiffel's per-flow bucketed queue."""

    name = "pfabric_eiffel"

    def __init__(self, max_remaining: int = 1 << 20, virtual_link_bps: float = 10e9) -> None:
        scheduler = EiffelPFabricScheduler(max_remaining=max_remaining)
        super().__init__(scheduler, virtual_link_bps)
        self._init_snapshots([scheduler._transaction.pifo.queue])


class PFabricHeapModule(SchedulerModule):
    """pFabric baseline: binary heap of flows, re-heapified on rank change."""

    name = "pfabric_heap"

    def __init__(self, max_remaining: int = 1 << 20, virtual_link_bps: float = 10e9) -> None:
        scheduler = HeapPFabricScheduler(max_remaining=max_remaining)
        super().__init__(scheduler, virtual_link_bps)
        self._charged_heap_ops = 0

    def charge_scheduler_work(self) -> None:
        scheduler: HeapPFabricScheduler = self.scheduler  # type: ignore[assignment]
        delta = scheduler.heap_operations - self._charged_heap_ops
        if delta > 0:
            self.charge("heap_operation", delta)
            self._charged_heap_ops = scheduler.heap_operations


class BessTcModule(SchedulerModule):
    """Stand-in for BESS's native traffic-class (``tc``) scheduling.

    Replicating hClock with BESS ``tc`` "requires instantiating a module
    corresponding to every flow which incurs a large overhead for a large
    number of flows": every scheduling decision walks the per-flow module
    tree, so the per-packet cost grows linearly with the number of classes.
    """

    name = "bess_tc"

    def __init__(
        self,
        num_flows: int,
        class_config: Optional[Dict[int, HClockClass]] = None,
        virtual_link_bps: float = 10e9,
    ) -> None:
        scheduler = HeapHClockScheduler()
        for flow_id, config in (class_config or {}).items():
            scheduler.configure_class(flow_id, config)
        super().__init__(scheduler, virtual_link_bps)
        self.num_flows = num_flows

    def charge_per_packet(self, packet: Packet) -> None:
        super().charge_per_packet(packet)
        # Walking the per-flow module hierarchy to pick the next class.
        self.charge("batch_overhead", max(1, self.num_flows // 64))

    def charge_scheduler_work(self) -> None:
        scheduler: HeapHClockScheduler = self.scheduler  # type: ignore[assignment]
        if scheduler.heap_operations:
            self.charge("heap_operation", scheduler.heap_operations)
            scheduler.heap_operations = 0


__all__ = [
    "BessTcModule",
    "HClockEiffelModule",
    "HClockHeapModule",
    "PFabricEiffelModule",
    "PFabricHeapModule",
    "SchedulerModule",
]
