"""Property-based tests for the batched queue operations.

Every queue type must satisfy the batch contract: ``enqueue_batch``,
``extract_min_batch`` and ``extract_due`` are observationally equivalent to N
repeated single-element operations — same elements, same order — while
charging their index-maintenance counters per batch instead of per element.
The equivalence tests run a batched queue and a reference queue side by side
over hypothesis-generated workloads; the amortisation tests check that the
modelled CPU cost of a batched drain is strictly below the per-packet
peek + extract path, which is the acceptance bar of the batching benchmark.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.queues import (
    ApproximateGradientQueue,
    BinaryHeapQueue,
    BucketSpec,
    BucketedHeapQueue,
    CircularApproximateGradientQueue,
    CircularFFSQueue,
    CircularGradientQueue,
    FFSQueue,
    GradientQueue,
    HierarchicalFFSQueue,
    MultiWordFFSQueue,
    RBTreeQueue,
    SortedListQueue,
)
from repro.cpu import CostModel

NUM_BUCKETS = 128

#: Every queue type in the library, as (name, zero-argument factory) pairs.
QUEUE_FACTORIES = [
    ("ffs", lambda: FFSQueue(BucketSpec(num_buckets=NUM_BUCKETS), word_width=NUM_BUCKETS)),
    ("multiword_ffs", lambda: MultiWordFFSQueue(BucketSpec(num_buckets=NUM_BUCKETS), word_width=32)),
    ("hierarchical_ffs", lambda: HierarchicalFFSQueue(BucketSpec(num_buckets=NUM_BUCKETS), word_width=8)),
    ("circular_ffs", lambda: CircularFFSQueue(BucketSpec(num_buckets=NUM_BUCKETS), word_width=8)),
    ("gradient", lambda: GradientQueue(BucketSpec(num_buckets=NUM_BUCKETS))),
    ("approx_gradient", lambda: ApproximateGradientQueue(BucketSpec(num_buckets=NUM_BUCKETS), alpha=16)),
    ("circular_gradient", lambda: CircularGradientQueue(BucketSpec(num_buckets=NUM_BUCKETS))),
    ("circular_approx", lambda: CircularApproximateGradientQueue(BucketSpec(num_buckets=NUM_BUCKETS), alpha=16)),
    ("bucketed_heap", lambda: BucketedHeapQueue(BucketSpec(num_buckets=NUM_BUCKETS))),
    ("binary_heap", lambda: BinaryHeapQueue()),
    ("rb_tree", lambda: RBTreeQueue()),
    ("sorted_list", lambda: SortedListQueue()),
]

priorities_lists = st.lists(
    st.integers(min_value=0, max_value=NUM_BUCKETS - 1), min_size=0, max_size=120
)
#: cFFS-style moving-range workloads also exercise overflow + rotation.
wide_priorities_lists = st.lists(
    st.integers(min_value=0, max_value=4 * NUM_BUCKETS), min_size=0, max_size=120
)
batch_sizes = st.integers(min_value=1, max_value=40)


def _fill_single(queue, priorities):
    for index, priority in enumerate(priorities):
        queue.enqueue(priority, (priority, index))


def _fill_batch(queue, priorities, chunk):
    pairs = [(priority, (priority, index)) for index, priority in enumerate(priorities)]
    for start in range(0, len(pairs), chunk):
        queue.enqueue_batch(pairs[start : start + chunk])


def _drain_single(queue):
    drained = []
    while not queue.empty:
        drained.append(queue.extract_min())
    return drained


def _drain_batched(queue, chunk):
    drained = []
    while not queue.empty:
        batch = queue.extract_min_batch(chunk)
        assert batch, "extract_min_batch returned nothing on a non-empty queue"
        drained.extend(batch)
    return drained


@pytest.mark.parametrize("name,factory", QUEUE_FACTORIES)
@given(priorities=priorities_lists, chunk=batch_sizes)
@settings(max_examples=25, deadline=None)
def test_enqueue_batch_matches_repeated_single_enqueues(name, factory, priorities, chunk):
    reference = factory()
    batched = factory()
    _fill_single(reference, priorities)
    _fill_batch(batched, priorities, chunk)
    assert len(batched) == len(reference) == len(priorities)
    assert _drain_single(batched) == _drain_single(reference), name


@pytest.mark.parametrize("name,factory", QUEUE_FACTORIES)
@given(priorities=priorities_lists, chunk=batch_sizes)
@settings(max_examples=25, deadline=None)
def test_extract_min_batch_matches_repeated_single_extracts(name, factory, priorities, chunk):
    reference = factory()
    batched = factory()
    _fill_single(reference, priorities)
    _fill_single(batched, priorities)
    assert _drain_batched(batched, chunk) == _drain_single(reference), name
    assert batched.empty


@pytest.mark.parametrize("name,factory", QUEUE_FACTORIES)
@given(
    priorities=priorities_lists,
    now=st.integers(min_value=-1, max_value=NUM_BUCKETS),
)
@settings(max_examples=25, deadline=None)
def test_extract_due_matches_single_peek_extract_loop(name, factory, priorities, now):
    reference = factory()
    batched = factory()
    _fill_single(reference, priorities)
    _fill_single(batched, priorities)

    expected = []
    while not reference.empty:
        priority, _item = reference.peek_min()
        if priority > now:
            break
        expected.append(reference.extract_min())

    assert batched.extract_due(now) == expected, name
    assert len(batched) == len(reference)


@pytest.mark.parametrize("name,factory", QUEUE_FACTORIES)
@given(priorities=priorities_lists, limit=st.integers(min_value=0, max_value=50))
@settings(max_examples=25, deadline=None)
def test_extract_due_respects_limit(name, factory, priorities, limit):
    batched = factory()
    _fill_single(batched, priorities)
    released = batched.extract_due(NUM_BUCKETS, limit=limit)
    assert len(released) <= limit
    assert len(batched) == len(priorities) - len(released)


CIRCULAR_FACTORIES = [
    ("circular_ffs", lambda: CircularFFSQueue(BucketSpec(num_buckets=64), word_width=8)),
    ("circular_gradient", lambda: CircularGradientQueue(BucketSpec(num_buckets=64))),
    ("circular_approx", lambda: CircularApproximateGradientQueue(BucketSpec(num_buckets=64), alpha=16)),
]


@pytest.mark.parametrize("name,factory", CIRCULAR_FACTORIES)
@given(priorities=wide_priorities_lists, chunk=batch_sizes)
@settings(max_examples=25, deadline=None)
def test_circular_batch_equivalence_across_rotations(name, factory, priorities, chunk):
    # Moving-range workload: overflow enqueues, rotations and overflow
    # re-dispatch must behave identically on the batched and single paths.
    reference = factory()
    batched = factory()
    _fill_single(reference, priorities)
    _fill_batch(batched, priorities, chunk)
    assert _drain_batched(batched, chunk) == _drain_single(reference), name


def _modelled_cycles(stats_dict):
    model = CostModel()
    model.charge_queue_stats(stats_dict)
    return model.total_cycles


# BucketedHeapQueue is excluded: its heap index is maintained lazily (ops are
# only charged when a bucket drains), so batching cuts Python call overhead
# but not its modelled operation count.
AMORTISING_FACTORIES = [
    entry
    for entry in QUEUE_FACTORIES
    if entry[0]
    in {"ffs", "multiword_ffs", "hierarchical_ffs", "circular_ffs", "gradient",
        "approx_gradient"}
]


@pytest.mark.parametrize("name,factory", AMORTISING_FACTORIES)
@pytest.mark.parametrize("chunk", [8, 32, 64])
def test_batched_drain_modelled_cycles_strictly_below_per_packet_path(name, factory, chunk):
    # The acceptance bar of the batching work: at batch >= 8 the modelled
    # cycles/packet of a batched drain must be strictly below the per-packet
    # peek + extract path on the same workload.
    priorities = [(i * 7) % 64 for i in range(256)]

    single = factory()
    _fill_single(single, priorities)
    single.stats.reset()
    while not single.empty:
        single.peek_min()
        single.extract_min()
    single_cycles = _modelled_cycles(single.stats.as_dict())

    batched = factory()
    _fill_single(batched, priorities)
    batched.stats.reset()
    while not batched.empty:
        batched.extract_min_batch(chunk)
    batched_cycles = _modelled_cycles(batched.stats.as_dict())

    assert batched_cycles < single_cycles, (
        f"{name}: batched drain ({batched_cycles:.0f} cycles) not below "
        f"per-packet path ({single_cycles:.0f} cycles) at batch={chunk}"
    )
