"""The decoupled shaper (Section 3.2.2, Figures 7 and 8).

A flexible scheduler must support a rate limit on *any* node of a policy
hierarchy.  Attaching a separate queue to every rate-limited node is correct
but expensive; Eiffel instead uses **one** timestamp-indexed priority queue
for the whole hierarchy.  Every packet subject to one or more rate limits is
stamped with a transmission timestamp (from the innermost applicable
:class:`~repro.core.model.transactions.ShapingTransaction`) and inserted into
the shared shaper; when its timestamp passes, the packet is handed to a
*continuation* that enqueues it into the next stage — either the next
scheduling queue up the hierarchy (possibly together with another shaper pass
at the next rate limit), or final transmission.

The shaper is deliberately agnostic of what a "stage" is: it stores
``(timestamp, packet, continuation)`` and calls ``continuation(packet, now)``
on release.  The scheduler (``repro.core.model.scheduler``) builds these
continuations from the policy tree, reproducing the step-by-step journey of
Figure 8.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from .packet import Packet
from .pifo import QueueFactory
from ..queues import BucketSpec, CircularFFSQueue, IntegerPriorityQueue

#: Called when a shaped packet's transmission time is reached.
Continuation = Callable[[Packet, int], None]


def default_shaper_queue(spec: BucketSpec) -> IntegerPriorityQueue:
    """Default shaper backing queue: cFFS over a moving timestamp range."""
    return CircularFFSQueue(spec)


class DecoupledShaper:
    """Single shared shaper covering every rate limit in a policy hierarchy.

    Args:
        horizon_ns: how far into the future transmission timestamps may
            reach; timestamps beyond the horizon are still accepted but lose
            fine-grained ordering (cFFS overflow bucket), mirroring the
            paper's kernel configuration of a 2-second horizon.
        granularity_ns: timestamp granularity of one bucket.  The paper's
            kernel deployment uses 20k buckets over 2 seconds (100 us each).
        queue_factory: backing integer queue (cFFS by default).
        start_ns: initial clock value.
    """

    def __init__(
        self,
        horizon_ns: int = 2_000_000_000,
        granularity_ns: int = 100_000,
        queue_factory: QueueFactory = default_shaper_queue,
        start_ns: int = 0,
    ) -> None:
        if horizon_ns <= 0 or granularity_ns <= 0:
            raise ValueError("horizon_ns and granularity_ns must be positive")
        num_buckets = max(1, horizon_ns // granularity_ns)
        spec = BucketSpec(
            num_buckets=num_buckets,
            granularity=granularity_ns,
            base_priority=(start_ns // granularity_ns) * granularity_ns,
        )
        self.spec = spec
        self.queue = queue_factory(spec)
        self.granularity_ns = granularity_ns
        self.horizon_ns = horizon_ns
        self._size = 0

    # -- insertion ---------------------------------------------------------------

    def schedule(
        self,
        packet: Packet,
        send_at_ns: int,
        continuation: Continuation,
    ) -> None:
        """Hold ``packet`` until ``send_at_ns``, then run ``continuation``."""
        self.queue.enqueue(send_at_ns, (packet, continuation))
        self._size += 1

    def schedule_batch(
        self, entries: Iterable[tuple[Packet, int, Continuation]]
    ) -> int:
        """Batched :meth:`schedule`: one amortised queue insert for the batch."""
        pairs = [
            (send_at_ns, (packet, continuation))
            for packet, send_at_ns, continuation in entries
        ]
        count = self.queue.enqueue_batch(pairs)
        self._size += count
        return count

    # -- release -------------------------------------------------------------------

    def release_due(self, now_ns: int) -> list[Packet]:
        """Release every packet whose timestamp has passed.

        Due packets are drained from the backing queue in one batched
        ``extract_due`` call per round — this is the timer-fire hot path, so
        the bitmap/tree maintenance is amortised across the whole batch
        instead of paying a peek + extract walk per packet.  Continuations
        run in timestamp order within a round; a continuation may re-insert
        the packet into this same shaper (the next rate limit of Figure 8),
        and such re-inserted packets are released by a subsequent round of
        the same call while their new timestamp is still ``<= now_ns``.

        Returns the packets whose continuations ran (in release order).
        """
        released: list[Packet] = []
        while self._size:
            batch = self.queue.extract_due(now_ns)
            if not batch:
                break
            self._size -= len(batch)
            for timestamp, (packet, continuation) in batch:
                # The continuation observes the time the timer would have
                # fired (the packet's own timestamp), not the sweep time:
                # downstream shaping stages must pace from the moment the
                # packet actually cleared this gate.
                continuation(packet, max(timestamp, 0))
                released.append(packet)
        return released

    def next_event_ns(self) -> Optional[int]:
        """Timestamp of the earliest held packet (``SoonestDeadline``)."""
        if self._size == 0:
            return None
        timestamp, _entry = self.queue.peek_min()
        return timestamp

    def __len__(self) -> int:
        return self._size

    @property
    def empty(self) -> bool:
        """True when no packets are being held."""
        return self._size == 0


class ShaperChain:
    """Helper building Figure 8-style continuation chains.

    A packet subject to rate limits ``[leaf ... root]`` and finally a
    delivery function traverses:

    1. shaper at limit[0]'s timestamp →
    2. enqueue into stage[0] and shaper at limit[1]'s timestamp →
    3. ... →
    4. delivery.

    ``build`` returns the first continuation of that chain, to be used as the
    target of the initial :meth:`DecoupledShaper.schedule` call.
    """

    def __init__(self, shaper: DecoupledShaper) -> None:
        self.shaper = shaper

    def build(
        self,
        stages: list[tuple[Callable[[Packet, int], None], Optional[Any]]],
        deliver: Callable[[Packet, int], None],
    ) -> Continuation:
        """Build a chained continuation.

        Args:
            stages: list of ``(enqueue_fn, shaping_transaction)`` pairs walked
                in order.  ``enqueue_fn(packet, now)`` inserts the packet into
                that stage's scheduling queue; when ``shaping_transaction`` is
                not ``None`` the packet is also re-inserted into the shaper
                stamped by that transaction before the *next* stage runs.
            deliver: final delivery function run after the last stage.
        """

        def make_step(index: int) -> Continuation:
            def step(packet: Packet, now_ns: int) -> None:
                if index >= len(stages):
                    deliver(packet, now_ns)
                    return
                enqueue_fn, shaping = stages[index]
                enqueue_fn(packet, now_ns)
                next_step = make_step(index + 1)
                if shaping is None:
                    next_step(packet, now_ns)
                else:
                    send_at = shaping.stamp(packet, now_ns)
                    self.shaper.schedule(packet, send_at, next_step)

            return step

        return make_step(0)


__all__ = ["Continuation", "DecoupledShaper", "ShaperChain", "default_shaper_queue"]
