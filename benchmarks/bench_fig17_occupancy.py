"""Figure 17: queue throughput vs fraction of non-empty buckets.

Same methodology as Figure 16 (fill, then drain), but the fill covers only a
fraction of the buckets.  As occupancy falls the approximate gradient queue's
estimate errs more often and pays linear-search fallbacks, so its throughput
degrades towards the exact queues' — the trade-off the paper quantifies.
"""

import random
import time

from conftest import modelled_cycles_per_op, report

from repro.analysis import Table, format_table
from repro.core.queues import (
    ApproximateGradientQueue,
    BucketSpec,
    BucketedHeapQueue,
    CircularFFSQueue,
)
from repro.core.queues.gradient import fit_bucket_spec

OCCUPANCY = [0.7, 0.8, 0.9, 0.99]
BUCKET_COUNTS = [5000, 10000]


def build_queue(kind: str, num_buckets: int):
    if kind == "bh":
        return BucketedHeapQueue(BucketSpec(num_buckets=num_buckets))
    if kind == "cffs":
        return CircularFFSQueue(BucketSpec(num_buckets=num_buckets))
    if kind == "approx":
        # Configured as the paper's guidance recommends: alpha = 16 and a
        # coarsened granularity so the requested priority levels fit the
        # approximate queue's capacity (~520 buckets).
        return ApproximateGradientQueue(fit_bucket_spec(num_buckets, alpha=16), alpha=16)
    raise ValueError(kind)


def fill_to_occupancy(queue, num_buckets: int, occupancy: float, rng: random.Random) -> int:
    occupied = rng.sample(range(num_buckets), int(num_buckets * occupancy))
    for bucket in occupied:
        queue.enqueue(bucket, bucket)
    return len(occupied)


def drain(queue, operations: int) -> None:
    for _ in range(operations):
        queue.extract_min()


def measure(kind: str, num_buckets: int, occupancy: float) -> tuple[float, float]:
    """Return (wall-clock Mpps, modelled Mpps at 3 GHz) for one drain."""
    rng = random.Random(29)
    queue = build_queue(kind, num_buckets)
    operations = fill_to_occupancy(queue, num_buckets, occupancy, rng)
    queue.stats.reset()
    start = time.perf_counter()
    drain(queue, operations)
    elapsed = time.perf_counter() - start
    wall_mpps = operations / elapsed / 1e6
    cycles = modelled_cycles_per_op(queue, operations)
    return wall_mpps, 3.0e9 / cycles / 1e6


def test_fig17_occupancy(benchmark):
    table = Table(
        title="Drain throughput vs fraction of non-empty buckets "
        "(modelled Mpps at 3 GHz, wall-clock Mpps in parentheses)",
        columns=["buckets", "occupancy", "BH", "Approx", "cFFS"],
    )
    modelled = {}
    for num_buckets in BUCKET_COUNTS:
        for occupancy in OCCUPANCY:
            row = []
            for kind in ("bh", "approx", "cffs"):
                wall, model = measure(kind, num_buckets, occupancy)
                modelled[(kind, num_buckets, occupancy)] = model
                row.append(f"{model:.1f} ({wall:.2f})")
            table.add_row(num_buckets, occupancy, *row)
    report("Figure 17 — occupancy sweep", format_table(table))
    benchmark.extra_info["modelled_mpps"] = {
        f"{kind}/{buckets}/{occ}": round(value, 2)
        for (kind, buckets, occ), value in modelled.items()
    }

    def fill_and_drain():
        rng = random.Random(5)
        queue = build_queue("approx", 1000)
        operations = fill_to_occupancy(queue, 1000, 0.9, rng)
        drain(queue, operations)

    benchmark(fill_and_drain)

    # Shape checks (modelled): the approximate queue improves as occupancy
    # rises, and the bucketed Eiffel queues beat the bucketed-heap index.
    assert (
        modelled[("approx", 10000, 0.99)] >= modelled[("approx", 10000, 0.7)] * 0.95
    )
    assert modelled[("cffs", 10000, 0.9)] > modelled[("bh", 10000, 0.9)]
