"""Leaf-spine fabric construction for the Figure 19 experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from .elements import Host, Link, PortQueue, Switch
from .simulator import Simulator
from ..core.model.packet import Packet

#: Builds a fresh port queue for every link in the fabric.
QueueFactory = Callable[[], PortQueue]


@dataclass(frozen=True)
class FabricConfig:
    """Dimensions and speeds of the simulated leaf-spine fabric.

    The paper simulates a 144-host leaf-spine; the defaults here are a scaled
    fabric with the same 4:1 host:leaf ratio and the same edge/core speed
    ratio so queueing dynamics (where contention happens) are preserved.
    """

    num_leaves: int = 4
    num_spines: int = 4
    hosts_per_leaf: int = 4
    edge_rate_bps: float = 10e9
    core_rate_bps: float = 40e9
    link_propagation_ns: int = 200

    @property
    def num_hosts(self) -> int:
        """Total number of hosts in the fabric."""
        return self.num_leaves * self.hosts_per_leaf

    def leaf_of(self, host_id: int) -> int:
        """Index of the leaf switch a host attaches to."""
        return host_id // self.hosts_per_leaf

    def base_rtt_seconds(self) -> float:
        """Unloaded round-trip time across the fabric (for FCT normalisation).

        One MTU-sized data packet crosses host->leaf->spine->leaf->host (two
        edge hops at the edge rate, two core hops at the core rate) and a
        40-byte ACK returns the same way.
        """
        one_way_hops = 4  # host->leaf->spine->leaf->host
        propagation = 2 * one_way_hops * self.link_propagation_ns / 1e9
        data_serialisation = 2 * (1500 * 8 / self.edge_rate_bps) + 2 * (
            1500 * 8 / self.core_rate_bps
        )
        ack_serialisation = 2 * (40 * 8 / self.edge_rate_bps) + 2 * (
            40 * 8 / self.core_rate_bps
        )
        return propagation + data_serialisation + ack_serialisation


class LeafSpineFabric:
    """A leaf-spine fabric of hosts, leaf switches and spine switches."""

    def __init__(
        self,
        simulator: Simulator,
        config: FabricConfig,
        queue_factory: QueueFactory,
    ) -> None:
        self.simulator = simulator
        self.config = config
        self.queue_factory = queue_factory
        self.hosts: List[Host] = []
        self.leaves: List[Switch] = []
        self.spines: List[Switch] = []
        self._build()

    # -- routing ----------------------------------------------------------------

    def _route_from_leaf(self, switch: Switch, packet: Packet) -> str:
        dst = packet.metadata["dst"]
        leaf_index = int(switch.name.split("-")[1])
        if self.config.leaf_of(dst) == leaf_index:
            return f"host-{dst}"
        spine_index = hash((packet.flow_id, leaf_index)) % self.config.num_spines
        return f"spine-{spine_index}"

    def _route_from_spine(self, switch: Switch, packet: Packet) -> str:
        dst = packet.metadata["dst"]
        return f"leaf-{self.config.leaf_of(dst)}"

    # -- construction ------------------------------------------------------------

    def _connect(self, src, dst_name: str, deliver, rate_bps: float) -> None:
        link = Link(
            self.simulator,
            rate_bps=rate_bps,
            propagation_ns=self.config.link_propagation_ns,
            deliver=deliver,
            queue=self.queue_factory(),
        )
        src.attach_link(dst_name, link)

    def _build(self) -> None:
        config = self.config
        self.leaves = [
            Switch(f"leaf-{i}", self.simulator, self._route_from_leaf)
            for i in range(config.num_leaves)
        ]
        self.spines = [
            Switch(f"spine-{i}", self.simulator, self._route_from_spine)
            for i in range(config.num_spines)
        ]
        self.hosts = [
            Host(f"host-{i}", self.simulator, host_id=i)
            for i in range(config.num_hosts)
        ]
        for host in self.hosts:
            leaf = self.leaves[config.leaf_of(host.host_id)]
            self._connect(host, leaf.name, leaf.receive, config.edge_rate_bps)
            self._connect(leaf, host.name, host.receive, config.edge_rate_bps)
        for leaf in self.leaves:
            for spine in self.spines:
                self._connect(leaf, spine.name, spine.receive, config.core_rate_bps)
                self._connect(spine, leaf.name, leaf.receive, config.core_rate_bps)

    # -- accessors --------------------------------------------------------------------

    def host(self, host_id: int) -> Host:
        """Host by id."""
        return self.hosts[host_id]

    def all_port_queues(self) -> List[PortQueue]:
        """Every port queue in the fabric (for drop/occupancy statistics)."""
        queues = []
        for node in [*self.hosts, *self.leaves, *self.spines]:
            for link in node.links.values():
                queues.append(link.queue)
        return queues

    def total_drops(self) -> int:
        """Packets dropped fabric-wide."""
        return sum(queue.drops for queue in self.all_port_queues())


__all__ = ["FabricConfig", "LeafSpineFabric", "QueueFactory"]
