"""Unit tests for the decoupled shaper and shaper chains (Figures 7/8)."""

import pytest

from repro.core.model import DecoupledShaper, Packet, RateLimit, ShaperChain, ShapingTransaction


class TestDecoupledShaper:
    def test_release_due_runs_continuations_in_order(self):
        shaper = DecoupledShaper(horizon_ns=1_000_000, granularity_ns=1_000)
        released_order = []

        def record(packet, now):
            released_order.append(packet.flow_id)

        shaper.schedule(Packet(flow_id=2), send_at_ns=500_000, continuation=record)
        shaper.schedule(Packet(flow_id=1), send_at_ns=100_000, continuation=record)
        shaper.schedule(Packet(flow_id=3), send_at_ns=900_000, continuation=record)
        released = shaper.release_due(now_ns=600_000)
        assert released_order == [1, 2]
        assert len(released) == 2
        assert len(shaper) == 1

    def test_next_event(self):
        shaper = DecoupledShaper(horizon_ns=1_000_000, granularity_ns=1_000)
        assert shaper.next_event_ns() is None
        shaper.schedule(Packet(flow_id=1), 42_000, lambda p, n: None)
        assert shaper.next_event_ns() == 42_000

    def test_reinsertion_from_continuation_released_same_call(self):
        # A continuation may re-schedule the packet (the next rate limit); if
        # the new timestamp is already due it is released in the same pass.
        shaper = DecoupledShaper(horizon_ns=1_000_000, granularity_ns=1_000)
        journey = []

        def second_stage(packet, now):
            journey.append("second")

        def first_stage(packet, now):
            journey.append("first")
            shaper.schedule(packet, now, second_stage)

        shaper.schedule(Packet(flow_id=1), 10_000, first_stage)
        shaper.release_due(now_ns=20_000)
        assert journey == ["first", "second"]
        assert shaper.empty

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            DecoupledShaper(horizon_ns=0)
        with pytest.raises(ValueError):
            DecoupledShaper(granularity_ns=0)


class TestShaperChain:
    def test_figure8_two_limits_and_pacing(self):
        # The Figure 7 policy: a leaf limited to 7 Mbps inside a node limited
        # to 10 Mbps, with the aggregate paced.  Verify the packet's journey
        # passes through every stage in order and the final delivery time is
        # governed by the slowest constraint encountered.
        shaper = DecoupledShaper(horizon_ns=10_000_000_000, granularity_ns=10_000)
        chain = ShaperChain(shaper)
        leaf_limit = ShapingTransaction("leaf", RateLimit(7e6))
        node_limit = ShapingTransaction("node", RateLimit(10e6))
        pacing = ShapingTransaction("root", RateLimit(20e6))
        journey = []
        delivered = []

        stages = [
            (lambda p, now: journey.append(("pq2", now)), node_limit),
            (lambda p, now: journey.append(("pq1", now)), pacing),
        ]
        deliver = lambda p, now: delivered.append(p)

        # Send a burst of packets through the chain; the first shaping stage
        # (7 Mbps) is applied by the caller, as in step 1 of Figure 8.
        packets = [Packet(flow_id=1, size_bytes=1500) for _ in range(5)]
        for packet in packets:
            continuation = chain.build(stages, deliver)
            send_at = leaf_limit.stamp(packet, 0)
            shaper.schedule(packet, send_at, continuation)

        # 1500 B at 7 Mbps is ~1.71 ms per packet; after 10 ms all five
        # packets have cleared every stage.
        shaper.release_due(now_ns=10_000_000)
        assert len(delivered) == 5
        stage_names = [name for name, _ in journey]
        assert stage_names.count("pq2") == 5
        assert stage_names.count("pq1") == 5

    def test_empty_stage_list_delivers_directly(self):
        shaper = DecoupledShaper(horizon_ns=1_000_000, granularity_ns=1_000)
        chain = ShaperChain(shaper)
        delivered = []
        continuation = chain.build([], lambda p, now: delivered.append(p))
        continuation(Packet(flow_id=1), 0)
        assert len(delivered) == 1

    def test_stage_without_shaping_continues_immediately(self):
        shaper = DecoupledShaper(horizon_ns=1_000_000, granularity_ns=1_000)
        chain = ShaperChain(shaper)
        order = []
        stages = [(lambda p, now: order.append("stage"), None)]
        continuation = chain.build(stages, lambda p, now: order.append("deliver"))
        continuation(Packet(flow_id=1), 0)
        assert order == ["stage", "deliver"]
