"""Network elements: port queues, links, switches and hosts.

The Figure 19 experiment compares three fabrics that differ only in what the
switch output ports do:

* **DCTCP** — drop-tail queues with ECN marking above a threshold;
* **pFabric** — small priority queues that serve the packet with the lowest
  remaining-flow-size first and, when full, drop the packet with the highest
  remaining size (priority dropping);
* **pFabric-Approx** — the same, but the priority index is the approximate
  gradient queue instead of an exact priority queue.

Every port queue exposes the same three operations (``enqueue``, ``dequeue``,
``__len__``) so switches are agnostic of the variant.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .simulator import Simulator
from ..core.model.packet import Packet
from ..core.queues import (
    ApproximateGradientQueue,
    BucketSpec,
    EmptyQueueError,
    SortedListQueue,
)


class PortQueue:
    """Base class for switch output-port queues."""

    def __init__(self, capacity_packets: int) -> None:
        if capacity_packets <= 0:
            raise ValueError("capacity_packets must be positive")
        self.capacity_packets = capacity_packets
        self.drops = 0
        self.enqueued = 0

    def enqueue(self, packet: Packet) -> bool:
        """Admit a packet; returns False when it was dropped."""
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        """Next packet to transmit, or ``None`` when empty."""
        raise NotImplementedError

    def enqueue_batch(self, packets: List[Packet]) -> int:
        """Admit a burst of packets; returns how many were accepted."""
        return sum(1 for packet in packets if self.enqueue(packet))

    def dequeue_batch(self, n: int) -> List[Packet]:
        """Pull up to ``n`` packets in one NIC-pull; default is n dequeues."""
        batch: List[Packet] = []
        while len(batch) < n:
            packet = self.dequeue()
            if packet is None:
                break
            batch.append(packet)
        return batch

    def __len__(self) -> int:
        raise NotImplementedError


class DropTailEcnQueue(PortQueue):
    """FIFO queue with tail drop and DCTCP-style ECN marking."""

    def __init__(self, capacity_packets: int = 250, ecn_threshold: int = 65) -> None:
        super().__init__(capacity_packets)
        self.ecn_threshold = ecn_threshold
        self._queue: Deque[Packet] = deque()

    def enqueue(self, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity_packets:
            self.drops += 1
            return False
        if len(self._queue) >= self.ecn_threshold:
            packet.metadata["ecn"] = True
        self._queue.append(packet)
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class PFabricPortQueue(PortQueue):
    """pFabric port: serve lowest remaining size, drop highest when full.

    The port admits at most ``capacity_packets`` resident packets.  Dequeue
    order is decided by a pluggable priority index — an exact priority queue
    by default, or the approximate gradient queue for the Figure 19 "Approx"
    variant.  When the port is full, the resident packet with the *largest*
    remaining size is evicted in favour of an arriving packet with a smaller
    one (pFabric's priority dropping); eviction uses lazy deletion so it
    works with any index implementation.

    Args:
        capacity_packets: pFabric uses shallow buffers (~2 BDP).
        queue_factory: builds the priority index from a
            :class:`~repro.core.queues.base.BucketSpec`.
        max_priority: remaining-size priority levels (one per MTU).
    """

    def __init__(
        self,
        capacity_packets: int = 36,
        queue_factory: Optional[Callable[[BucketSpec], object]] = None,
        max_priority: int = 100_000,
    ) -> None:
        super().__init__(capacity_packets)
        self.max_priority = max_priority
        spec = BucketSpec(num_buckets=max_priority)
        factory = queue_factory or (lambda s: SortedListQueue(s))
        self._queue = factory(spec)
        # The backing index may cover fewer priority levels than requested
        # (the approximate gradient queue has a bounded bucket count); clamp
        # priorities into whatever range it actually supports.
        backing_spec = getattr(self._queue, "spec", spec)
        self._priority_levels = min(max_priority, backing_spec.num_buckets)
        self._resident: List[Packet] = []

    def _priority(self, packet: Packet) -> int:
        remaining = packet.metadata.get("remaining_bytes", self.max_priority - 1)
        # Priority granularity of one MTU keeps the bucket count bounded.
        return min(self._priority_levels - 1, int(remaining) // 1500)

    def enqueue(self, packet: Packet) -> bool:
        priority = self._priority(packet)
        if len(self._resident) >= self.capacity_packets:
            # Priority dropping: evict the worst resident packet if the
            # arriving one outranks it, otherwise drop the arrival.
            worst = max(self._resident, key=self._priority)
            if self._priority(worst) <= priority:
                self.drops += 1
                return False
            self._resident.remove(worst)
            worst.metadata["pfabric_evicted"] = True
            self.drops += 1
        self._resident.append(packet)
        self._queue.enqueue(priority, packet)
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        while len(self._queue):
            try:
                _priority, packet = self._queue.extract_min()
            except EmptyQueueError:  # pragma: no cover - defensive
                return None
            if packet.metadata.pop("pfabric_evicted", None):
                continue  # lazily discard evicted packets
            self._resident.remove(packet)
            return packet
        return None

    def dequeue_batch(self, n: int) -> List[Packet]:
        """Batched NIC pull through the priority index's amortised path."""
        batch: List[Packet] = []
        while len(batch) < n and len(self._queue):
            for _priority, packet in self._queue.extract_min_batch(n - len(batch)):
                if packet.metadata.pop("pfabric_evicted", None):
                    continue  # lazily discard evicted packets
                self._resident.remove(packet)
                batch.append(packet)
        return batch

    def head_priority(self) -> Optional[int]:
        """Priority of the next packet to transmit (``None`` when empty).

        The arbitration hint a priority-aware multi-queue TX arbiter
        (:class:`~repro.runtime.adapters.ShardedPortQueue` with
        ``arbiter="priority"``) compares across rings.  Lazily evicted
        packets surfacing at the index minimum are discarded here, exactly
        as :meth:`dequeue` discards them — a corpse's stale priority could
        otherwise outrank the ring's real head and invert the cross-ring
        priority order the arbiter exists to provide.
        """
        if not self._resident:
            return None
        while len(self._queue):
            priority, packet = self._queue.peek_min()
            if packet.metadata.pop("pfabric_evicted", None):
                self._queue.extract_min()  # discard the corpse, as dequeue does
                continue
            return priority
        return None

    def __len__(self) -> int:
        return len(self._resident)


def approx_pfabric_queue_factory(spec: BucketSpec):
    """Factory for the pFabric-Approx port index (Figure 19)."""
    bounded = BucketSpec(num_buckets=min(spec.num_buckets, 480), granularity=1)
    return ApproximateGradientQueue(bounded, alpha=16)


class Link:
    """A unidirectional link: serialisation at ``rate_bps`` plus propagation.

    Args:
        burst_packets: how many packets one NIC pull takes from the port
            queue.  With the default of 1 every transmission completion
            schedules one pull per packet; a larger burst drains the queue
            through its batched ``dequeue_batch`` path and schedules a single
            completion event for the whole burst, amortising the per-call
            overhead exactly as a real NIC TX burst does.  Serialisation
            timing is preserved: each packet in the burst is delivered at its
            own position within the burst's serialisation schedule.
    """

    def __init__(
        self,
        simulator: Simulator,
        rate_bps: float,
        propagation_ns: int,
        deliver: Callable[[Packet], None],
        queue: PortQueue,
        burst_packets: int = 1,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if burst_packets <= 0:
            raise ValueError("burst_packets must be positive")
        self.simulator = simulator
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.deliver = deliver
        self.queue = queue
        self.burst_packets = burst_packets
        self._busy = False
        self.transmitted_packets = 0
        self.transmitted_bytes = 0

    def send(self, packet: Packet) -> None:
        """Enqueue a packet for transmission over this link."""
        if not self.queue.enqueue(packet):
            return
        if not self._busy:
            self._transmit_next()

    def _serialisation_ns(self, packet: Packet) -> int:
        return int(packet.size_bytes * 8 / self.rate_bps * 1e9)

    def _transmit_next(self) -> None:
        if self.burst_packets > 1:
            self._transmit_burst()
            return
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        serialisation_ns = self._serialisation_ns(packet)
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size_bytes

        def delivered(packet=packet) -> None:
            self.deliver(packet)

        self.simulator.schedule(serialisation_ns + self.propagation_ns, delivered)
        self.simulator.schedule(serialisation_ns, self._transmit_next)

    def _transmit_burst(self) -> None:
        batch = self.queue.dequeue_batch(self.burst_packets)
        if not batch:
            self._busy = False
            return
        self._busy = True
        elapsed_ns = 0
        for packet in batch:
            elapsed_ns += self._serialisation_ns(packet)
            self.transmitted_packets += 1
            self.transmitted_bytes += packet.size_bytes

            def delivered(packet=packet) -> None:
                self.deliver(packet)

            self.simulator.schedule(elapsed_ns + self.propagation_ns, delivered)
        self.simulator.schedule(elapsed_ns, self._transmit_next)

    @property
    def utilization_bytes(self) -> int:
        """Total bytes pushed onto the wire."""
        return self.transmitted_bytes


class Node:
    """Base class for switches and hosts: receives packets, forwards them."""

    def __init__(self, name: str, simulator: Simulator) -> None:
        self.name = name
        self.simulator = simulator
        self.links: Dict[str, Link] = {}

    def attach_link(self, destination: str, link: Link) -> None:
        """Register the outgoing link towards ``destination``."""
        self.links[destination] = link

    def receive(self, packet: Packet) -> None:
        """Handle an incoming packet."""
        raise NotImplementedError


class Switch(Node):
    """A switch forwarding packets according to a static routing function."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        route: Callable[["Switch", Packet], str],
    ) -> None:
        super().__init__(name, simulator)
        self.route = route
        self.forwarded = 0

    def receive(self, packet: Packet) -> None:
        next_hop = self.route(self, packet)
        link = self.links.get(next_hop)
        if link is None:
            raise KeyError(f"{self.name}: no link towards {next_hop!r}")
        self.forwarded += 1
        link.send(packet)


class Host(Node):
    """An end host: delivers packets to its transport endpoints.

    Delivery is dispatched by flow id so that fabrics with thousands of flows
    do not pay a linear scan over every registered endpoint per packet;
    ``register_receiver`` remains available for taps that want every packet.
    """

    def __init__(self, name: str, simulator: Simulator, host_id: int) -> None:
        super().__init__(name, simulator)
        self.host_id = host_id
        self._receivers: List[Callable[[Packet], None]] = []
        self._flow_receivers: Dict[int, List[Callable[[Packet], None]]] = {}

    def register_receiver(self, receiver: Callable[[Packet], None]) -> None:
        """Add a callback invoked for every packet delivered to this host."""
        self._receivers.append(receiver)

    def register_flow_receiver(
        self, flow_id: int, receiver: Callable[[Packet], None]
    ) -> None:
        """Add a callback invoked only for packets of ``flow_id``."""
        self._flow_receivers.setdefault(flow_id, []).append(receiver)

    def receive(self, packet: Packet) -> None:
        for receiver in self._flow_receivers.get(packet.flow_id, ()):
            receiver(packet)
        for receiver in self._receivers:
            receiver(packet)

    def uplink(self) -> Link:
        """The host's single outgoing link (to its leaf switch)."""
        if len(self.links) != 1:
            raise RuntimeError(f"host {self.name} must have exactly one uplink")
        return next(iter(self.links.values()))


__all__ = [
    "DropTailEcnQueue",
    "Host",
    "Link",
    "Node",
    "PFabricPortQueue",
    "PortQueue",
    "Switch",
    "approx_pfabric_queue_factory",
]
