"""Shared helpers for the benchmark harness.

Every ``bench_fig*`` module reproduces one table or figure of the paper.  The
actual numbers are printed to stdout (run pytest with ``-s`` to see them live)
and attached to the pytest-benchmark ``extra_info`` so they appear in
``--benchmark-json`` output.
"""

import sys
from pathlib import Path

# Keep the in-tree sources importable when benchmarks run standalone.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def report(title: str, text: str) -> None:
    """Print a figure/table reproduction block."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}\n{text}\n")


def modelled_cycles_per_op(queue, operations: int) -> float:
    """Modelled CPU cycles per operation from a queue's operation counters.

    Wall-clock Python timings are dominated by interpreter overhead (and by
    whether a structure happens to be backed by a C-implemented library such
    as ``heapq``), so the shape comparisons use the per-operation cost model:
    the same accounting the kernel and BESS substrates use.  Red-black tree
    node visits are charged as cache-missing pointer chases.
    """
    from repro.core.queues import RBTreeQueue
    from repro.cpu import CostModel

    model = CostModel()
    stats = queue.stats.as_dict()
    if isinstance(queue, RBTreeQueue):
        visits = stats.pop("bucket_lookups", 0)
        if visits:
            model.charge("rb_node_visit", visits)
    model.charge_queue_stats(stats)
    return model.total_cycles / max(1, operations)
