"""The PIFO building block, generalised over Eiffel's integer queues.

A Push-In-First-Out (PIFO) queue admits elements at arbitrary rank positions
but only releases the head (the minimum-rank element).  The hardware PIFO of
Sivaraman et al. implements this with parallel comparisons and is limited to
~2048 flows; Eiffel's insight is that a software PIFO backed by a bucketed
integer priority queue gives the same abstraction with O(1) operations and no
capacity cliff.

:class:`PIFOBlock` is that software PIFO.  It stores arbitrary elements
(packets, flows, child-node references) keyed by integer rank, and — because
the underlying bucketed queues support cheap removal — also supports
*reordering*: removing an element and re-pushing it with a new rank, which is
what Eiffel's per-flow and on-dequeue primitives need.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..queues import BucketSpec, CircularFFSQueue, EmptyQueueError, IntegerPriorityQueue

#: Factory signature used wherever a PIFO needs to build its backing queue.
QueueFactory = Callable[[BucketSpec], IntegerPriorityQueue]


def default_queue_factory(spec: BucketSpec) -> IntegerPriorityQueue:
    """Default backing queue: the circular hierarchical FFS queue (cFFS)."""
    return CircularFFSQueue(spec)


class PIFOBlock:
    """A software PIFO: push at any rank, pop the minimum rank.

    Args:
        spec: bucket layout for the backing integer queue.
        queue_factory: callable building the backing queue; defaults to cFFS.
        name: optional label used in scheduler descriptions and repr.
    """

    def __init__(
        self,
        spec: BucketSpec,
        queue_factory: QueueFactory = default_queue_factory,
        name: str = "pifo",
    ) -> None:
        self.spec = spec
        self.name = name
        self.queue = queue_factory(spec)
        self._membership: dict[int, tuple[int, Any]] = {}

    # -- core operations -------------------------------------------------------

    def push(self, rank: int, element: Any) -> None:
        """Insert ``element`` at ``rank``."""
        self.queue.enqueue(rank, element)
        self._membership[id(element)] = (rank, element)

    def pop(self) -> tuple[int, Any]:
        """Remove and return ``(rank, element)`` with the smallest rank."""
        rank, element = self.queue.extract_min()
        self._membership.pop(id(element), None)
        return rank, element

    def peek(self) -> tuple[int, Any]:
        """Return ``(rank, element)`` with the smallest rank without removing it."""
        return self.queue.peek_min()

    def push_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Insert many ``(rank, element)`` pairs through the queue's batch path."""
        pairs = list(pairs)
        count = self.queue.enqueue_batch(pairs)
        for rank, element in pairs:
            self._membership[id(element)] = (rank, element)
        return count

    def pop_batch(self, n: int) -> list[tuple[int, Any]]:
        """Remove up to ``n`` minimum-rank elements in one batched call."""
        batch = self.queue.extract_min_batch(n)
        for _rank, element in batch:
            self._membership.pop(id(element), None)
        return batch

    def remove(self, element: Any) -> bool:
        """Remove ``element`` wherever it currently sits; True when found.

        Requires the backing queue to support ``remove`` (all bucketed FFS
        queues do); falls back to False otherwise.
        """
        entry = self._membership.get(id(element))
        if entry is None:
            return False
        rank, stored = entry
        remover = getattr(self.queue, "remove", None)
        if remover is None:
            return False
        if remover(rank, stored):
            del self._membership[id(element)]
            return True
        return False

    def reinsert(self, element: Any, new_rank: int) -> None:
        """Move ``element`` to ``new_rank`` (remove + push); pushes if absent.

        This is the reordering operation the per-flow primitive relies on:
        when a flow's rank changes, the flow handle is relocated in O(1).
        """
        self.remove(element)
        self.push(new_rank, element)

    # -- informational ------------------------------------------------------------

    def rank_of(self, element: Any) -> Optional[int]:
        """Current rank of ``element``, or ``None`` when not enqueued."""
        entry = self._membership.get(id(element))
        return entry[0] if entry else None

    def __contains__(self, element: Any) -> bool:
        return id(element) in self._membership

    def __len__(self) -> int:
        return len(self.queue)

    @property
    def empty(self) -> bool:
        """True when the PIFO holds no elements."""
        return len(self.queue) == 0

    def min_rank(self) -> Optional[int]:
        """Smallest rank currently enqueued, or ``None`` when empty."""
        if self.empty:
            return None
        try:
            rank, _ = self.queue.peek_min()
        except EmptyQueueError:  # pragma: no cover - guarded by self.empty
            return None
        return rank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PIFOBlock(name={self.name!r}, size={len(self)})"


__all__ = ["PIFOBlock", "QueueFactory", "default_queue_factory"]
