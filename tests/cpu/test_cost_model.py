"""Unit tests for the CPU cost model and meter."""

import pytest

from repro.cpu import CostModel, CpuMeter, CycleAccount, DEFAULT_COSTS
from repro.cpu.cost_model import QUEUE_STATS_COSTS
from repro.core.queues import BucketSpec, HierarchicalFFSQueue, RBTreeQueue


class TestCycleAccount:
    def test_charge_accumulates(self):
        account = CycleAccount()
        account.charge("ffs_word", 3.0, count=5)
        account.charge("division", 24.0)
        assert account.cycles == pytest.approx(39.0)
        assert account.by_operation["ffs_word"] == pytest.approx(15.0)

    def test_merge(self):
        first = CycleAccount()
        second = CycleAccount()
        first.charge("enqueue", 12.0)
        second.charge("enqueue", 12.0, 2)
        second.charge("lock", 60.0)
        first.merge(second)
        assert first.cycles == pytest.approx(12.0 * 3 + 60.0)
        assert first.by_operation["enqueue"] == pytest.approx(36.0)

    def test_reset(self):
        account = CycleAccount()
        account.charge("enqueue", 12.0)
        account.reset()
        assert account.cycles == 0.0
        assert account.by_operation == {}


class TestCostModel:
    def test_paper_cited_ratios(self):
        from repro.cpu.cost_model import BSR_LATENCY_CYCLES, DIV_LATENCY_CYCLES

        model = CostModel()
        # The paper: BSR is 8-32x cheaper than DIV (instruction latencies).
        assert 8 <= DIV_LATENCY_CYCLES / BSR_LATENCY_CYCLES <= 32
        # The modelled *operations* additionally include the memory word
        # access, so a division-based lookup still costs more than one FFS
        # word scan but less than the full instruction-latency gap.
        assert model.cost_of("division") > model.cost_of("ffs_word")

    def test_unknown_operation_raises(self):
        model = CostModel()
        with pytest.raises(KeyError):
            model.cost_of("warp_drive")

    def test_charge_returns_total(self):
        model = CostModel()
        per_op = model.cost_of("ffs_word")
        charged = model.charge("ffs_word", count=10)
        assert charged == pytest.approx(10 * per_op)
        assert model.total_cycles == pytest.approx(10 * per_op)

    def test_override_costs(self):
        from repro.cpu.cost_model import OperationCost

        model = CostModel({"ffs_word": OperationCost("ffs_word", 1.0)})
        assert model.cost_of("ffs_word") == 1.0
        assert model.cost_of("division") == DEFAULT_COSTS["division"].cycles

    def test_charge_queue_stats_maps_counters(self):
        model = CostModel()
        queue = HierarchicalFFSQueue(BucketSpec(num_buckets=1000))
        for i in range(100):
            queue.enqueue(i * 7 % 1000, i)
        list(queue.extract_all())
        charged = model.charge_queue_stats(queue.stats.as_dict())
        assert charged > 0
        assert set(model.breakdown()) <= set(DEFAULT_COSTS)

    def test_queue_stats_cost_mapping_is_complete(self):
        from repro.core.queues import QueueStats

        mapped = set(QUEUE_STATS_COSTS)
        counters = set(QueueStats().as_dict())
        # Every mapped counter must exist; counters without a cost (pure
        # statistics like selection_errors) are allowed.
        assert mapped <= counters

    def test_rbtree_costs_more_than_ffs_for_same_workload(self):
        # The central efficiency claim, expressed in modelled cycles.
        ffs_model = CostModel()
        rb_model = CostModel()
        ffs_queue = HierarchicalFFSQueue(BucketSpec(num_buckets=20_000))
        rb_queue = RBTreeQueue()
        priorities = [(i * 37) % 20_000 for i in range(5000)]
        for priority in priorities:
            ffs_queue.enqueue(priority, None)
            rb_queue.enqueue(priority, None)
        list(ffs_queue.extract_all())
        list(rb_queue.extract_all())
        ffs_model.charge_queue_stats(ffs_queue.stats.as_dict())
        rb_model.charge_queue_stats(rb_queue.stats.as_dict())
        assert rb_model.total_cycles > ffs_model.total_cycles

    def test_reset(self):
        model = CostModel()
        model.charge("enqueue")
        model.reset()
        assert model.total_cycles == 0.0


class TestCpuMeter:
    def test_cores_used(self):
        meter = CpuMeter(cycles_per_second=1e9)
        assert meter.cores_used(cycles=2e9, interval_seconds=1.0) == pytest.approx(2.0)
        assert meter.cores_used(cycles=5e8, interval_seconds=1.0) == pytest.approx(0.5)

    def test_max_packet_rate(self):
        meter = CpuMeter(cycles_per_second=3e9)
        assert meter.max_packet_rate(cycles_per_packet=300) == pytest.approx(1e7)

    def test_max_bit_rate(self):
        meter = CpuMeter(cycles_per_second=3e9)
        rate = meter.max_bit_rate(cycles_per_packet=300, packet_size_bytes=1500)
        assert rate == pytest.approx(1e7 * 1500 * 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuMeter(cycles_per_second=0)
        meter = CpuMeter()
        with pytest.raises(ValueError):
            meter.cores_used(1.0, 0)
        with pytest.raises(ValueError):
            meter.max_packet_rate(0)
        with pytest.raises(ValueError):
            meter.max_bit_rate(10, 0)
