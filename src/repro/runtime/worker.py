"""One shard of the multi-core runtime: a core-local Eiffel queue + shaper.

A :class:`ShardWorker` is the simulated analogue of one CPU core running one
scheduler instance — what a per-CPU child of the ``mq`` qdisc or a pinned
BESS worker is in a real deployment.  It owns, privately:

* a batched SPSC :class:`~repro.runtime.mailbox.Mailbox` the ingress side
  posts packets into;
* a cFFS timestamp queue (PR 1's batched ``enqueue_batch`` /
  ``extract_due`` surface) holding the shard's shaped packets;
* per-flow pacing state (``SO_MAX_PACING_RATE``-style shaping, the same
  stamping the Eiffel qdisc performs), held in a compact
  :class:`~repro.runtime.flowstate.PacingTable` — dense array columns
  indexed by slot, not a dict of transaction objects — so a shard can pace
  hundreds of thousands of concurrent flows in tens of bytes each; state
  still *travels* as :class:`~repro.core.model.transactions.ShapingTransaction`
  objects on migration and lease handoffs;
* a :class:`~repro.cpu.cost_model.CostModel` account charging the shard's
  data-structure work, so runtime telemetry can locate the bottleneck core.

Each scheduling quantum the owning runtime calls :meth:`ingest` (drain the
mailbox, stamp, one batched enqueue) and :meth:`drain_due` (one batched
release of everything whose timestamp passed).  The worker performs no
global coordination — all cross-shard decisions live in the sharder and the
runtime driver — but it does expose the two *ends* of the work-stealing
protocol (see :mod:`repro.runtime.stealing`):

* the **donor** side (:meth:`grant_lease` / :meth:`end_lease`): hand an
  imminent due window to an idle sibling, marking each touched flow *on
  loan*; while a flow is on loan this worker defers its own drains of that
  flow (due packets park in a side buffer) and defers stamping of new
  arrivals (the pacing state travelled with the lease), which is what keeps
  per-flow FIFO intact across the handoff;
* the **acceptor** side (:meth:`accept_lease`): splice a stolen window into
  this worker's own timestamp queue — stamps preserved, so the packets
  release through the normal paced drain — charging the extraction and
  re-enqueue work to *this* core's cycle account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .flowstate import PacingTable
from .mailbox import Mailbox
from .observability import LogHistogram
from .stealing import FlowLease, StealStats
from ..core.model.packet import Packet
from ..core.model.transactions import ShapingTransaction
from ..core.queues import BucketSpec, CircularFFSQueue, IntegerPriorityQueue, QueueStats
from ..core.queues.base import CounterStatsMixin
from ..cpu import CostModel

#: Builds a shard's backing queue from a spec (cFFS by default).
QueueFactory = Callable[[BucketSpec], IntegerPriorityQueue]


@dataclass(slots=True)
class ShardWorkerStats(CounterStatsMixin):
    """Packet counters of one shard worker."""

    ingested: int = 0
    transmitted: int = 0
    ticks: int = 0
    idle_ticks: int = 0
    backlog_peak: int = 0


class ShardWorker:
    """A single-core scheduler instance owning one Eiffel queue + shaper.

    Args:
        shard_id: index of this shard within the runtime.
        flow_rates: per-flow pacing rates (bits/second).
        default_rate_bps: pacing rate for unconfigured flows (``None`` sends
            packets at their ingest time, i.e. pure work conservation).
        horizon_ns / num_buckets: shaping horizon and bucket count of the
            timestamp queue (paper defaults: 2 s over 20k buckets).
        queue_factory: alternative backing queue (ablations).
        mailbox_capacity: bound on the ingress mailbox (``None`` unbounded).
        mailbox_high_watermark / mailbox_low_watermark: backpressure
            thresholds handed to the mailbox (see
            :meth:`Mailbox.configure_watermarks`); the ingress cores pause
            their RX pull while the mailbox sits inside the hysteresis band.
        latency_histograms: arm the per-shard latency seams — a
            :class:`~repro.runtime.observability.LogHistogram` each for
            mailbox wait (push → ingest) and shard-queue sojourn
            (stamp → drain).  Disarmed (the default) both stay ``None`` and
            the worker loop is byte-identical to a build without them.
    """

    __slots__ = (
        "shard_id",
        "flow_rates",
        "default_rate_bps",
        "granularity_ns",
        "queue",
        "mailbox",
        "cost",
        "stats",
        "steal",
        "_queue_snapshot",
        "pacing",
        "_backlog",
        "_on_loan",
        "_deferred_due",
        "_deferred_ingest",
        "_deferred_count",
        "_leases_held",
        "mailbox_wait",
        "queue_wait",
    )

    def __init__(
        self,
        shard_id: int,
        flow_rates: Optional[Dict[int, float]] = None,
        default_rate_bps: Optional[float] = None,
        horizon_ns: int = 2_000_000_000,
        num_buckets: int = 20_000,
        queue_factory: Optional[QueueFactory] = None,
        mailbox_capacity: Optional[int] = None,
        mailbox_high_watermark: Optional[int] = None,
        mailbox_low_watermark: Optional[int] = None,
        latency_histograms: bool = False,
    ) -> None:
        if horizon_ns <= 0 or num_buckets <= 0:
            raise ValueError("horizon_ns and num_buckets must be positive")
        self.shard_id = shard_id
        self.flow_rates = dict(flow_rates or {})
        self.default_rate_bps = default_rate_bps
        granularity = max(1, horizon_ns // num_buckets)
        self.granularity_ns = granularity
        factory = queue_factory or (lambda spec: CircularFFSQueue(spec))
        self.queue = factory(BucketSpec(num_buckets=num_buckets, granularity=granularity))
        self.mailbox: Mailbox[Packet] = Mailbox(
            capacity=mailbox_capacity,
            high_watermark=mailbox_high_watermark,
            low_watermark=mailbox_low_watermark,
        )
        self.cost = CostModel()
        self.stats = ShardWorkerStats()
        self.steal = StealStats()
        self._queue_snapshot = QueueStats()
        self.pacing = PacingTable(shard_id)
        self._backlog = 0
        # Work-stealing donor state: flows currently on loan to a thief, plus
        # the side buffers that hold this shard's own work on those flows
        # back until the lease returns (the per-flow FIFO guard).
        self._on_loan: Dict[int, int] = {}
        self._deferred_due: Dict[int, List[Packet]] = {}
        self._deferred_ingest: Dict[int, List[Packet]] = {}
        self._deferred_count = 0
        # Acceptor state: foreign leases spliced into this queue and not yet
        # fully released.  While nonzero this shard must not donate — its
        # queue holds another shard's packets, and re-lending them would
        # chain a flow across three cores and lose the original lease.
        self._leases_held = 0
        self.mailbox_wait: Optional[LogHistogram] = (
            LogHistogram() if latency_histograms else None
        )
        self.queue_wait: Optional[LogHistogram] = (
            LogHistogram() if latency_histograms else None
        )

    # -- configuration -----------------------------------------------------

    def set_flow_rate(self, flow_id: int, rate_bps: float) -> None:
        """Configure the pacing rate of ``flow_id`` on this shard."""
        self.flow_rates[flow_id] = rate_bps
        self.pacing.remove(flow_id)

    def _pacing_slot(self, flow_id: int) -> int:
        """Pacing-table slot of ``flow_id`` (created on demand), -1 if unpaced."""
        rate = self.flow_rates.get(flow_id, self.default_rate_bps)
        if rate is None:
            return -1
        return self.pacing.slot_for(flow_id, rate)

    def release_shaper(self, flow_id: int) -> Optional[ShapingTransaction]:
        """Detach and return the flow's pacing state (``None`` if stateless).

        Used by the runtime when a flow migrates away: the destination shard
        adopts the transaction so ``_next_free_ns`` and the burst credit
        survive the move — otherwise every migration would silently regrant
        the flow a fresh burst and break its configured rate.
        """
        return self.pacing.detach(flow_id)

    def adopt_shaper(self, flow_id: int, shaper: ShapingTransaction) -> None:
        """Install pacing state handed over from the flow's previous shard."""
        self.pacing.install(flow_id, shaper)

    def gc_flow(self, flow_id: int, now_ns: int) -> bool:
        """Drop the flow's pacing state if it no longer matters.

        Returns True when the flow holds no state on this shard: either it
        never had pacing state, or its ``next_free_ns`` has passed, in which
        case a future re-created entry stamps identically (an expired flow
        regains its initial burst credit, the same expiry semantics the FQ
        qdisc's flow GC has).  Charged like FQ's per-flow GC scan.
        """
        self.cost.charge("gc_scan")
        pacing = self.pacing
        slot = pacing.lookup(flow_id)
        if slot < 0:
            return True
        if pacing.next_free_at(slot) <= now_ns:
            pacing.remove(flow_id)
            return True
        return False

    def _charge_queue_delta(self) -> None:
        delta = self.queue.stats.diff(self._queue_snapshot)
        self.cost.charge_queue_stats(delta.as_dict())
        self._queue_snapshot = self.queue.stats.snapshot()

    # -- the per-quantum worker loop ---------------------------------------

    def _stamp_and_enqueue(self, packets: List[Packet], now_ns: int) -> int:
        """Stamp ``packets`` with their flows' pacing state, one batched enqueue.

        RX bursts are bursty *per flow*, so the flow-state lookup is cached
        across a run of same-flow packets within the batch; the modelled
        ``flow_lookup`` charge stays per-packet (one batched charge), since
        the cost model prices the hash-table probe a real per-packet
        classifier performs, not this interpreter's memoisation.
        """
        pairs = []
        append = pairs.append
        shard_id = self.shard_id
        slot_for = self._pacing_slot
        stamp = self.pacing.stamp
        last_flow = None
        slot = -1
        for packet in packets:
            flow_id = packet.flow_id
            if flow_id != last_flow:
                last_flow = flow_id
                slot = slot_for(flow_id)
            send_at = now_ns if slot < 0 else stamp(slot, packet.size_bytes, now_ns)
            metadata = packet.metadata
            metadata["send_at_ns"] = send_at
            metadata["shard"] = shard_id
            append((send_at, packet))
        count = len(pairs)
        self.cost.charge("flow_lookup", count)
        queue = self.queue
        before = len(queue)
        try:
            queue.enqueue_batch(pairs)
        finally:
            # Track the queue's actual growth: a fixed-range ablation queue
            # may reject a stamp mid-batch having committed the prefix, and
            # the backlog must never desync from the queue's real size.
            count = len(queue) - before
            self._backlog += count
            stats = self.stats
            stats.ingested += count
            if self._backlog > stats.backlog_peak:
                stats.backlog_peak = self._backlog
            self._charge_queue_delta()
        return count

    def ingest(self, now_ns: int, limit: Optional[int] = None) -> int:
        """Drain the mailbox, stamp timestamps, one batched enqueue.

        Returns the number of packets moved into the shard's queue.
        Arrivals for a flow that is on loan are deferred unstamped — the
        flow's pacing state travelled with the lease, and stamping with a
        fresh shaper would regrant the burst — and are stamped in arrival
        order when the lease returns (:meth:`end_lease`).
        """
        batch = self.mailbox.drain(limit)
        if not batch:
            return 0
        if self.mailbox_wait is not None:
            # The push side stamps arrival time only while the plane is
            # armed; the wait ends here, whether or not the packet defers.
            record_wait = self.mailbox_wait.record
            for packet in batch:
                pushed_ns = packet.metadata.pop("mbox_ns", None)
                if pushed_ns is not None:
                    record_wait(now_ns - pushed_ns)
        if self._on_loan:
            ready = []
            for packet in batch:
                if packet.flow_id in self._on_loan:
                    self._deferred_ingest.setdefault(packet.flow_id, []).append(packet)
                    self._deferred_count += 1
                    self.steal.ingests_deferred += 1
                else:
                    ready.append(packet)
            batch = ready
        if not batch:
            return 0
        return self._stamp_and_enqueue(batch, now_ns)

    def drain_due(self, now_ns: int, limit: Optional[int] = None) -> List[Packet]:
        """Release every packet whose timestamp passed (one batched drain).

        Due packets of a flow that is on loan are *deferred* instead of
        released — the thief holds earlier packets of that flow, and
        releasing these now would overtake them.  They flush, still in
        per-flow FIFO order, when the lease returns (:meth:`end_lease`).
        """
        drained = self.queue.extract_due(now_ns, limit=limit)
        self._backlog -= len(drained)
        if self.queue_wait is not None:
            # Stamp→drain sojourn; the (send_at, packet) pairs are in hand,
            # so the armed cost is one subtract + record per packet.
            record_wait = self.queue_wait.record
            for send_at, _packet in drained:
                record_wait(now_ns - send_at)
        if self._on_loan:
            released = []
            for _send_at, packet in drained:
                if packet.flow_id in self._on_loan:
                    self._deferred_due.setdefault(packet.flow_id, []).append(packet)
                    self._deferred_count += 1
                    self.steal.drains_deferred += 1
                else:
                    released.append(packet)
        else:
            released = [packet for _send_at, packet in drained]
        self.stats.transmitted += len(released)
        self._charge_queue_delta()
        return released

    def tick(self, now_ns: int, ingest_limit: Optional[int], drain_limit: Optional[int]) -> List[Packet]:
        """One scheduling quantum: batched ingest then batched drain.

        Charges the fixed per-invocation cost a real worker loop pays
        (module call, prefetch, loop setup) on top of the per-packet work.
        """
        self.stats.ticks += 1
        self.cost.charge("batch_overhead")
        mailbox_before = len(self.mailbox)
        ingested = self.ingest(now_ns, ingest_limit)
        # Deferring on-loan arrivals consumes mailbox items without an
        # enqueue; that is still work, not an idle tick.
        consumed = ingested or len(self.mailbox) != mailbox_before
        released = self.drain_due(now_ns, drain_limit)
        if not consumed and not released:
            self.stats.idle_ticks += 1
        return released

    # -- work stealing: the donor side -------------------------------------

    def grant_lease(
        self,
        lease_id: int,
        thief_shard: int,
        now_ns: int,
        max_packets: int,
        horizon_ns: int,
    ) -> Optional[FlowLease]:
        """Atomically hand the window due by ``now + horizon`` to a thief.

        Extracts up to ``max_packets`` packets stamped within the steal
        horizon (for each flow touched, a stamp-ordered prefix of that
        flow's queued packets), marks every touched flow on loan, and
        detaches their pacing state into the lease.  At most one lease is
        outstanding per donor: a second grant while flows are on loan would
        let two thieves hold adjacent windows of one flow, whose release
        times could interleave out of order.  A shard currently *holding* a
        foreign lease may not donate either — its queue contains stolen
        packets, and re-lending those would chain one flow across three
        cores (and detach it from its original lease for good).

        The extraction work is measured but **not** charged here — it rides
        in ``lease.queue_delta`` to the thief, whose core performs the pops
        on real hardware.  The donor pays only the cross-core handoff.

        Returns ``None`` when nothing is stealable (no due window, or a
        lease is already out).
        """
        if max_packets <= 0 or self._on_loan or self._leases_held:
            return None
        cutoff = now_ns + horizon_ns
        if not self.has_work_by(cutoff):
            return None
        self._charge_queue_delta()  # settle this shard's own work first
        stolen = self.queue.extract_due(cutoff, limit=max_packets)
        delta = self.queue.stats.diff(self._queue_snapshot)
        self._queue_snapshot = self.queue.stats.snapshot()
        self._backlog -= len(stolen)
        flows: Dict[int, None] = {}
        for _send_at, packet in stolen:
            flows.setdefault(packet.flow_id)
        shapers: Dict[int, ShapingTransaction] = {}
        detach = self.pacing.detach
        for flow_id in flows:
            self._on_loan[flow_id] = thief_shard
            shaper = detach(flow_id)
            if shaper is not None:
                shapers[flow_id] = shaper
        self.cost.charge("lock")  # cross-core handoff on the donor side
        self.steal.leases_granted += 1
        self.steal.packets_lent += len(stolen)
        return FlowLease(
            lease_id=lease_id,
            victim_shard=self.shard_id,
            thief_shard=thief_shard,
            packets=stolen,
            flow_ids=tuple(flows),
            shapers=shapers,
            queue_delta=delta,
            granted_at_ns=now_ns,
        )

    def end_lease(self, lease: FlowLease, now_ns: int) -> List[Packet]:
        """Take a lease back: re-adopt pacing state, flush deferred work.

        Returns the due packets that were deferred while the lease was out
        (all past due — the thief has released every earlier packet of
        these flows, so they must transmit immediately to stay FIFO).
        Deferred arrivals are stamped now, in arrival order, with the
        returned shapers, and re-enter the queue through the normal path.
        """
        install = self.pacing.install
        for flow_id, shaper in lease.shapers.items():
            install(flow_id, shaper)
        released: List[Packet] = []
        reingest: List[Packet] = []
        for flow_id in lease.flow_ids:
            self._on_loan.pop(flow_id, None)
            deferred = self._deferred_due.pop(flow_id, None)
            if deferred:
                released.extend(deferred)
            arrivals = self._deferred_ingest.pop(flow_id, None)
            if arrivals:
                reingest.extend(arrivals)
        self._deferred_count -= len(released) + len(reingest)
        self.stats.transmitted += len(released)
        if reingest:
            self._stamp_and_enqueue(reingest, now_ns)
        self.steal.leases_returned += 1
        return released

    # -- work stealing: the acceptor side ----------------------------------

    def accept_lease(self, lease: FlowLease, now_ns: int) -> int:
        """Splice a stolen window into this shard's own timestamp queue.

        Stamps are preserved, so the stolen packets release through this
        worker's normal paced drain at exactly the times the victim would
        have released them.  The extraction work measured at the victim
        (``lease.queue_delta``) plus the re-enqueue and handoff costs are
        charged to *this* core — the cycles that stealing moves off the
        bottleneck shard.
        """
        before = self.cost.total_cycles
        self.cost.charge("lock")  # cross-core handoff on the acceptor side
        self.cost.charge_queue_stats(lease.queue_delta.as_dict())
        for _send_at, packet in lease.packets:
            packet.metadata["stolen_from"] = lease.victim_shard
            packet.metadata["lease_id"] = lease.lease_id
            packet.metadata["shard"] = self.shard_id
        before = len(self.queue)
        try:
            self.queue.enqueue_batch(lease.packets)
        finally:
            self._backlog += len(self.queue) - before
        if self._backlog > self.stats.backlog_peak:
            self.stats.backlog_peak = self._backlog
        self._charge_queue_delta()
        self._leases_held += 1
        self.steal.cycles_stolen += self.cost.total_cycles - before
        self.steal.leases_received += 1
        self.steal.packets_stolen += len(lease.packets)
        return len(lease.packets)

    def finish_held_lease(self) -> None:
        """Record that one held lease fully released (donor eligibility back)."""
        assert self._leases_held > 0
        self._leases_held -= 1

    # -- crash surface (fault injection / recovery) -------------------------

    def mark_on_loan(self, flow_id: int, thief_shard: int) -> None:
        """Transplant donor state onto a restarted incarnation of a victim.

        When a shard crashes while one of its flows is out on lease, the
        replacement worker must keep deferring that flow's drains and
        arrivals until the thief returns the lease — otherwise the handoff's
        per-flow FIFO guarantee dies with the old worker object.
        """
        self._on_loan[flow_id] = thief_shard

    def crash_dump(self) -> tuple[List[Packet], Dict[int, int]]:
        """Model a core crash: surrender private state, return the wreckage.

        Returns ``(lost_packets, loaned_flows)``: every packet held in the
        core-private timestamp queue and lease-deferral buffers (lost — a
        real core's cache-resident scheduler state does not survive), plus
        the on-loan map the supervisor transplants onto the replacement via
        :meth:`mark_on_loan`.  The mailbox is deliberately untouched: it
        models a shared-memory ring owned by the producer side, so buffered
        arrivals survive the consumer's death and replay into the restarted
        worker.  No cycle costs are charged — a dead core does no work.
        """
        lost: List[Packet] = [packet for _send_at, packet in self.queue.extract_all()]
        for deferred in self._deferred_due.values():
            lost.extend(deferred)
        for arrivals in self._deferred_ingest.values():
            lost.extend(arrivals)
        loaned = dict(self._on_loan)
        self._deferred_due.clear()
        self._deferred_ingest.clear()
        self._deferred_count = 0
        self._on_loan.clear()
        self._backlog = 0
        return lost, loaned

    # -- introspection -----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Packets currently held in this shard's timestamp queue."""
        return self._backlog

    @property
    def pending(self) -> int:
        """Packets in flight on this shard (mailbox + queue + lease deferrals)."""
        return self._backlog + len(self.mailbox) + self._deferred_count

    @property
    def flows_on_loan(self) -> int:
        """Flows whose due window this shard has lent to a thief."""
        return len(self._on_loan)

    @property
    def leases_held(self) -> int:
        """Foreign leases spliced into this queue and not yet fully released."""
        return self._leases_held

    def loaned_flows(self) -> Dict[int, int]:
        """Mapping of on-loan flow id to the thief shard holding its lease."""
        return dict(self._on_loan)

    def has_work_by(self, deadline_ns: int) -> bool:
        """True when the queue holds a packet stamped at or before ``deadline_ns``."""
        if self._backlog == 0:
            return False
        send_at, _packet = self.queue.peek_min()
        return send_at <= deadline_ns

    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        """Next time this shard has queue work (``None`` when queue empty)."""
        if self._backlog == 0:
            return None
        send_at, _packet = self.queue.peek_min()
        return max(send_at, now_ns)

    def next_wake_ns(self, now_ns: int, quantum_ns: int) -> Optional[int]:
        """When this worker's next tick should fire (``None`` = go idle).

        The pure tick-timer policy, shared by every execution backend so
        simulated and real-core runs program identical wake-ups:

        * nothing in flight → no timer (the next arrival wakes the shard);
          lease-deferred packets are deliberately ignored — they can only
          move when the lease returns, and the driver wakes the shard then;
        * mailbox non-empty → one quantum out (arrivals must be stamped
          promptly);
        * only paced queue work → jump straight to the soonest deadline
          when it lies beyond the next quantum (the cFFS
          ``SoonestDeadline()`` timer programming of the Eiffel qdisc)
          instead of burning an idle tick per quantum.
        """
        if self._backlog == 0 and not len(self.mailbox):
            return None
        next_ns = now_ns + quantum_ns
        if not len(self.mailbox):
            soonest = self.soonest_deadline_ns(now_ns)
            if soonest is not None and soonest > next_ns:
                next_ns = soonest
        return next_ns

    def queue_stats_snapshot(self) -> QueueStats:
        """Copy of the backing queue's operation counters."""
        return self.queue.stats.snapshot()


__all__ = ["QueueFactory", "ShardWorker", "ShardWorkerStats"]
