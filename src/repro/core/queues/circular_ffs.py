"""Circular Hierarchical FFS-based queue — the paper's cFFS (Figure 4).

Packet ranks (deadlines, transmission timestamps) span a *moving* range: the
window of valid ranks slides forward as time advances.  A plain hierarchical
FFS queue covers a fixed range only, and naive modulo indexing corrupts the
bitmap ordering, so the cFFS composes **two** hierarchical FFS queues:

* the *primary* queue covers ``[h_index, h_index + q_size * granularity)``;
* the *secondary* queue covers the range immediately after the primary.

Elements beyond even the secondary range are enqueued into the secondary
queue's **last bucket** (losing exact ordering, which the paper accepts
because ranges are easy to size per policy).  When the primary queue drains
and the minimum now lives in the secondary queue, the two queues *rotate*:
pointers (bucket arrays + bitmaps) are swapped and ``h_index`` advances by
one window — an O(1) operation, no per-element copying.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    validate_priority,
)
from .ffs import DEFAULT_WORD_WIDTH
from .hierarchical_ffs import FFSBitmapTree


class _Window:
    """One of the two rotating halves of a cFFS: buckets + bitmap tree."""

    __slots__ = ("buckets", "tree", "size")

    def __init__(self, num_buckets: int, word_width: int) -> None:
        self.buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(num_buckets)
        ]
        self.tree = FFSBitmapTree(num_buckets, word_width)
        self.size = 0

    @property
    def empty(self) -> bool:
        return self.size == 0


class CircularFFSQueue(IntegerPriorityQueue):
    """cFFS: a hierarchical FFS queue over a moving range of priorities.

    Args:
        spec: bucket layout. ``spec.base_priority`` seeds the initial
            ``h_index`` (minimum priority covered by the primary window).
        word_width: FFS word width (64 matches x86-64 BSF).
        allow_stale: when True (default), priorities smaller than ``h_index``
            are clamped into the first bucket of the primary window instead
            of raising.  This mirrors how a shaper treats packets whose
            transmission time is already in the past: send as soon as
            possible.
    """

    def __init__(
        self,
        spec: BucketSpec,
        word_width: int = DEFAULT_WORD_WIDTH,
        allow_stale: bool = True,
    ) -> None:
        super().__init__(spec)
        self.word_width = word_width
        self.allow_stale = allow_stale
        self.h_index = spec.base_priority
        self._primary = _Window(spec.num_buckets, word_width)
        self._secondary = _Window(spec.num_buckets, word_width)

    # -- range bookkeeping -------------------------------------------------

    @property
    def window_span(self) -> int:
        """Priority units covered by one window."""
        return self.spec.num_buckets * self.spec.granularity

    @property
    def primary_range(self) -> tuple[int, int]:
        """Half-open priority range ``[lo, hi)`` covered by the primary window."""
        return self.h_index, self.h_index + self.window_span

    @property
    def secondary_range(self) -> tuple[int, int]:
        """Half-open priority range covered by the secondary window."""
        lo = self.h_index + self.window_span
        return lo, lo + self.window_span

    def _bucket_in_primary(self, priority: int) -> int:
        return (priority - self.h_index) // self.spec.granularity

    def _bucket_in_secondary(self, priority: int) -> int:
        lo = self.h_index + self.window_span
        return (priority - lo) // self.spec.granularity

    # -- core operations ----------------------------------------------------

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        lo, hi = self.primary_range
        if priority < lo:
            if not self.allow_stale:
                raise ValueError(
                    f"priority {priority} precedes queue head index {lo}"
                )
            # Stale rank: treat as due immediately.
            self._enqueue_window(self._primary, 0, priority, item)
            return
        if priority < hi:
            self._enqueue_window(
                self._primary, self._bucket_in_primary(priority), priority, item
            )
            return
        slo, shi = self.secondary_range
        if priority < shi:
            self._enqueue_window(
                self._secondary, self._bucket_in_secondary(priority), priority, item
            )
            return
        # Beyond both windows: last bucket of the secondary queue, unsorted.
        self.stats.overflow_enqueues += 1
        self._enqueue_window(
            self._secondary, self.spec.num_buckets - 1, priority, item
        )

    def _enqueue_window(
        self, window: _Window, bucket: int, priority: int, item: Any
    ) -> None:
        was_empty = not window.buckets[bucket]
        window.buckets[bucket].append((priority, item))
        if was_empty:
            self.stats.word_scans += window.tree.set(bucket)
        window.size += 1
        self._size += 1

    def _rotate(self) -> None:
        """Swap primary and secondary windows and advance ``h_index``."""
        self._primary, self._secondary = self._secondary, self._primary
        self.h_index += self.window_span
        self.stats.rotations += 1

    def _advance_to_nonempty(self) -> _Window:
        """Rotate until the primary window holds the minimum element."""
        while self._primary.empty and not self._secondary.empty:
            self._rotate()
        if self._primary.empty:
            raise EmptyQueueError("circular FFS queue is empty")
        return self._primary

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty CircularFFSQueue")
        window = self._advance_to_nonempty()
        bucket, scanned = window.tree.first_set()
        self.stats.word_scans += scanned
        entry = window.buckets[bucket].popleft()
        window.size -= 1
        if not window.buckets[bucket]:
            self.stats.word_scans += window.tree.clear(bucket)
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty CircularFFSQueue")
        window = self._advance_to_nonempty()
        bucket, scanned = window.tree.first_set()
        self.stats.word_scans += scanned
        return window.buckets[bucket][0]

    def extract_due(self, now: int) -> list[tuple[int, Any]]:
        """Drain every element whose priority is ``<= now``.

        This is the operation a shaping qdisc performs when its timer fires:
        release every packet whose transmission timestamp has passed.
        """
        released: list[tuple[int, Any]] = []
        while not self.empty:
            priority, _item = self.peek_min()
            if priority > now:
                break
            released.append(self.extract_min())
        return released

    def remove(self, priority: int, item: Any) -> bool:
        """Remove a specific ``(priority, item)`` pair; True when found."""
        priority = validate_priority(priority)
        for window, bucket in self._candidate_buckets(priority):
            queue = window.buckets[bucket]
            for index, entry in enumerate(queue):
                if entry[0] == priority and entry[1] is item:
                    del queue[index]
                    window.size -= 1
                    self._size -= 1
                    if not queue:
                        self.stats.word_scans += window.tree.clear(bucket)
                    return True
        return False

    def _candidate_buckets(self, priority: int):
        lo, hi = self.primary_range
        slo, shi = self.secondary_range
        if priority < lo:
            yield self._primary, 0
        elif priority < hi:
            yield self._primary, self._bucket_in_primary(priority)
        elif priority < shi:
            yield self._secondary, self._bucket_in_secondary(priority)
        else:
            yield self._secondary, self.spec.num_buckets - 1


__all__ = ["CircularFFSQueue"]
