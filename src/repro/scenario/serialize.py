"""TOML load/dump for :class:`~repro.scenario.spec.ScenarioSpec`.

The wire format is one table per sub-spec::

    name = "zipf-steal-codel"
    seed = 42

    [topology]
    kind = "runtime"

    [traffic]
    pattern = "zipf"
    num_flows = 64
    ...

Rules, chosen so ``load(dump(spec)) == spec`` holds for every valid spec
(property-tested):

* ``None`` is spelled as the string ``"none"`` (TOML has no null); on load,
  ``"none"`` in an optional field reads back as ``None``.
* Sequences are TOML arrays and read back as tuples; ``policy.flow_rates``
  is an array of ``[flow_id, rate_bps]`` pairs.
* Missing keys take the dataclass defaults; **unknown keys are rejected**
  with the exact ``section.key`` path — a typo never silently becomes a
  default.
* Loading always ends with the eager validation pass, so an on-disk spec is
  either fully usable or raises a typed, field-naming error.
"""

from __future__ import annotations

import dataclasses
import json
import tomllib
import typing
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from .spec import (
    AssertionSpec,
    FaultsSpec,
    IngressSpec,
    MalformedSpecError,
    ObservabilitySpec,
    PolicyTreeSpec,
    RuntimeSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    UnknownNameError,
    validate,
)

#: Section name -> sub-spec dataclass, in canonical dump order.
SECTIONS = {
    "topology": TopologySpec,
    "policy": PolicyTreeSpec,
    "traffic": TrafficSpec,
    "ingress": IngressSpec,
    "runtime": RuntimeSpec,
    "faults": FaultsSpec,
    "observability": ObservabilitySpec,
    "assertions": AssertionSpec,
}


# -- dumping -----------------------------------------------------------------


def _format_value(value: Any) -> str:
    if value is None:
        return '"none"'
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        # json string escaping is a strict subset of TOML basic strings.
        return json.dumps(value)
    if isinstance(value, tuple):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    raise TypeError(f"cannot serialise {value!r} to TOML")  # pragma: no cover


def dump_toml(spec: ScenarioSpec) -> str:
    """Serialise a spec to TOML text (stable key order, round-trippable)."""
    lines = [
        f"name = {_format_value(spec.name)}",
        f"seed = {_format_value(spec.seed)}",
    ]
    for section, cls in SECTIONS.items():
        sub = getattr(spec, section)
        lines.append("")
        lines.append(f"[{section}]")
        for spec_field in dataclasses.fields(cls):
            lines.append(
                f"{spec_field.name} = {_format_value(getattr(sub, spec_field.name))}"
            )
    return "\n".join(lines) + "\n"


def dump_toml_file(spec: ScenarioSpec, path: Union[str, Path]) -> Path:
    """Write a spec to ``path`` as TOML; returns the path."""
    path = Path(path)
    path.write_text(dump_toml(spec))
    return path


# -- loading -----------------------------------------------------------------


def _coerce(value: Any, annotation: Any, path: str) -> Any:
    """Coerce one TOML value into the annotated field type, or reject."""
    origin = typing.get_origin(annotation)
    if origin is Union:  # Optional[...]
        args = [arg for arg in typing.get_args(annotation) if arg is not type(None)]
        if value == "none":
            return None
        return _coerce(value, args[0], path)
    if origin is tuple:
        if not isinstance(value, list):
            raise MalformedSpecError(path, f"expected an array, got {value!r}")
        (item_type, _ellipsis) = typing.get_args(annotation)
        return tuple(
            _coerce(item, item_type, f"{path}[{index}]")
            for index, item in enumerate(value)
        )
    if annotation is bool:
        if not isinstance(value, bool):
            raise MalformedSpecError(path, f"expected a boolean, got {value!r}")
        return value
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise MalformedSpecError(path, f"expected an integer, got {value!r}")
        return value
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MalformedSpecError(path, f"expected a number, got {value!r}")
        return float(value)
    if annotation is str:
        if not isinstance(value, str):
            raise MalformedSpecError(path, f"expected a string, got {value!r}")
        return value
    if origin is None and typing.get_origin(Tuple[int, float]) is tuple:
        pass  # pragma: no cover - defensive
    raise MalformedSpecError(path, f"unsupported field type {annotation!r}")


def _coerce_pairs(value: Any, path: str) -> Tuple[Tuple[int, float], ...]:
    """``flow_rates``: an array of two-element ``[flow_id, rate]`` arrays."""
    if not isinstance(value, list):
        raise MalformedSpecError(path, f"expected an array of pairs, got {value!r}")
    pairs = []
    for index, item in enumerate(value):
        if not isinstance(item, list) or len(item) != 2:
            raise MalformedSpecError(
                f"{path}[{index}]", f"expected a [flow_id, rate_bps] pair, got {item!r}"
            )
        flow_id = _coerce(item[0], int, f"{path}[{index}][0]")
        rate = _coerce(item[1], float, f"{path}[{index}][1]")
        pairs.append((flow_id, rate))
    return tuple(pairs)


def _build_section(cls: type, data: Any, section: str) -> Any:
    if not isinstance(data, dict):
        raise MalformedSpecError(section, f"expected a table, got {data!r}")
    hints = typing.get_type_hints(cls)
    known = {spec_field.name for spec_field in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in data.items():
        path = f"{section}.{key}"
        if key not in known:
            raise UnknownNameError(
                path, f"unknown field; known fields: {sorted(known)}"
            )
        if cls is PolicyTreeSpec and key == "flow_rates":
            kwargs[key] = _coerce_pairs(value, path)
        else:
            kwargs[key] = _coerce(value, hints[key], path)
    return cls(**kwargs)


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Build a validated spec from a parsed-TOML dictionary."""
    if not isinstance(data, dict):
        raise MalformedSpecError("<spec>", f"expected a table, got {data!r}")
    kwargs: dict = {}
    for key, value in data.items():
        if key == "name":
            kwargs["name"] = _coerce(value, str, "name")
        elif key == "seed":
            kwargs["seed"] = _coerce(value, int, "seed")
        elif key in SECTIONS:
            kwargs[key] = _build_section(SECTIONS[key], value, key)
        else:
            raise UnknownNameError(
                key,
                f"unknown section; known: name, seed, {', '.join(SECTIONS)}",
            )
    return validate(ScenarioSpec(**kwargs))


def load_toml(text: str) -> ScenarioSpec:
    """Parse TOML text into a validated :class:`ScenarioSpec`.

    Malformed TOML raises :class:`MalformedSpecError`; unknown sections or
    fields raise :class:`UnknownNameError`; semantic problems raise whatever
    :func:`~repro.scenario.spec.validate` raises — never a silent fallback.
    """
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise MalformedSpecError("<toml>", f"unparseable TOML: {exc}") from exc
    return spec_from_dict(data)


def load_toml_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate a spec from a TOML file."""
    return load_toml(Path(path).read_text())


__all__ = [
    "SECTIONS",
    "dump_toml",
    "dump_toml_file",
    "load_toml",
    "load_toml_file",
    "spec_from_dict",
]
