"""Unit tests for scheduling/shaping transactions and the Figure 6 example."""

import pytest

from repro.core.model import (
    Packet,
    PerFlowSchedulingTransaction,
    RateLimit,
    SchedulingTransaction,
    ShapingTransaction,
)
from repro.core.queues import BucketSpec


class TestSchedulingTransaction:
    def test_rank_on_enqueue(self):
        transaction = SchedulingTransaction(
            "edf",
            lambda packet, ctx: packet.metadata["deadline"],
            BucketSpec(num_buckets=1000),
        )
        late = Packet(flow_id=1).annotate(deadline=500)
        early = Packet(flow_id=2).annotate(deadline=100)
        transaction.enqueue(late)
        transaction.enqueue(early)
        assert transaction.dequeue() is early
        assert transaction.dequeue() is late
        assert transaction.dequeue() is None

    def test_rank_recorded_on_packet(self):
        transaction = SchedulingTransaction(
            "const", lambda packet, ctx: 7, BucketSpec(num_buckets=10)
        )
        packet = Packet(flow_id=1)
        assert transaction.enqueue(packet) == 7
        assert packet.rank == 7

    def test_peek_and_len(self):
        transaction = SchedulingTransaction(
            "fifo", lambda packet, ctx: 1, BucketSpec(num_buckets=10)
        )
        assert transaction.peek() is None
        packet = Packet(flow_id=1)
        transaction.enqueue(packet)
        assert transaction.peek() is packet
        assert len(transaction) == 1
        assert not transaction.empty


class TestPerFlowTransaction:
    def test_longest_queue_first_figure6(self):
        # Figure 6: f.rank = f.len on both enqueue and dequeue.  With a
        # min-queue the rank is inverted so the longest queue pops first.
        max_len = 1000

        def rank_by_length(flow, packet, ctx):
            flow.rank = max_len - flow.state.backlog_packets

        transaction = PerFlowSchedulingTransaction(
            "lqf",
            rank_by_length,
            BucketSpec(num_buckets=max_len),
            on_dequeue=rank_by_length,
        )
        for _ in range(3):
            transaction.enqueue(Packet(flow_id=1, size_bytes=100))
        for _ in range(1):
            transaction.enqueue(Packet(flow_id=2, size_bytes=100))
        # Flow 1 is longer, so its packet leaves first.
        assert transaction.dequeue().flow_id == 1
        # Now flow 1 has 2, flow 2 has 1: flow 1 still longer.
        assert transaction.dequeue().flow_id == 1
        # Both have 1 packet; either order is fair, drain fully.
        remaining = {transaction.dequeue().flow_id, transaction.dequeue().flow_id}
        assert remaining == {1, 2}
        assert transaction.empty

    def test_flow_fifo_preserved(self):
        def constant_rank(flow, packet, ctx):
            flow.rank = 5

        transaction = PerFlowSchedulingTransaction(
            "const", constant_rank, BucketSpec(num_buckets=100)
        )
        packets = [Packet(flow_id=9) for _ in range(5)]
        for packet in packets:
            transaction.enqueue(packet)
        drained = [transaction.dequeue().packet_id for _ in range(5)]
        assert drained == [p.packet_id for p in packets]

    def test_active_flow_count(self):
        def constant_rank(flow, packet, ctx):
            flow.rank = flow.flow_id

        transaction = PerFlowSchedulingTransaction(
            "const", constant_rank, BucketSpec(num_buckets=100)
        )
        transaction.enqueue(Packet(flow_id=1))
        transaction.enqueue(Packet(flow_id=2))
        transaction.enqueue(Packet(flow_id=2))
        assert transaction.active_flow_count == 2
        assert len(transaction) == 3

    def test_dequeue_empty_returns_none(self):
        transaction = PerFlowSchedulingTransaction(
            "x", lambda f, p, c: None, BucketSpec(num_buckets=10)
        )
        assert transaction.dequeue() is None


class TestRateLimitAndShaping:
    def test_rate_limit_validation(self):
        with pytest.raises(ValueError):
            RateLimit(rate_bps=0)
        with pytest.raises(ValueError):
            RateLimit(rate_bps=100, burst_bytes=-1)

    def test_transmission_delay(self):
        limit = RateLimit(rate_bps=8e6)  # 1 byte per microsecond
        assert limit.transmission_delay_ns(1000) == 1_000_000

    def test_stamp_spaces_packets_at_rate(self):
        shaping = ShapingTransaction("leaf", RateLimit(rate_bps=12_000))
        # 1500 B at 12 kbps -> 1 second per packet.
        first = shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        second = shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        third = shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        assert first == 0
        assert second == pytest.approx(1_000_000_000, rel=0.01)
        assert third == pytest.approx(2_000_000_000, rel=0.01)

    def test_stamp_resets_after_idle(self):
        shaping = ShapingTransaction("leaf", RateLimit(rate_bps=12_000))
        shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        # Long idle period: next packet sends immediately at "now".
        late = shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=10_000_000_000)
        assert late == 10_000_000_000

    def test_burst_credit_skips_delay(self):
        shaping = ShapingTransaction(
            "leaf", RateLimit(rate_bps=8_000, burst_bytes=3000)
        )
        timestamps = [
            shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=0)
            for _ in range(3)
        ]
        # First two packets ride on the burst credit, third is paced.
        assert timestamps[0] == 0
        assert timestamps[1] == 0
        assert timestamps[2] == 0  # stamped at now; spacing applies to the next
        fourth = shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        assert fourth > 0

    def test_reset(self):
        shaping = ShapingTransaction("leaf", RateLimit(rate_bps=1_000))
        shaping.stamp(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        shaping.reset(now_ns=5)
        assert shaping.next_free_ns == 5
