"""Declarative scheduling-policy descriptions.

The PIFO toolchain describes a policy as a graph in the DOT language and
generates C++ from it; Eiffel reuses that pipeline and tunes the output.
This module is the equivalent declarative layer for the Python reproduction:
a :class:`PolicySpec` lists the hierarchy's nodes — each with a scheduling
discipline, a weight or priority, and an optional rate limit — plus the
aggregate pacing rate and how packets map onto leaves.  The compiler
(:mod:`repro.core.model.compiler`) turns a spec into a runnable
:class:`~repro.core.model.scheduler.EiffelScheduler`.

A tiny DOT-like text format is also supported (:func:`parse_policy`) so
policies can live in configuration files, mirroring the paper's workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class Discipline(Enum):
    """Scheduling discipline applied by a node to order its children."""

    FIFO = "fifo"
    STRICT = "strict"
    WFQ = "wfq"


@dataclass
class PolicyNodeSpec:
    """Declarative description of one node in the policy hierarchy.

    Attributes:
        name: unique node name.
        parent: parent node name, or ``None`` for the root.
        discipline: how this node orders its children (ignored for leaves
            without children other than packet FIFO order).
        weight: WFQ weight of this node *within its parent*.
        priority: strict-priority level of this node within its parent
            (lower dequeues first).
        rate_limit_bps: optional shaping rate applied to this node's
            aggregate traffic.
        pifo_buckets: bucket count of the node's PIFO.
    """

    name: str
    parent: Optional[str] = None
    discipline: Discipline = Discipline.FIFO
    weight: float = 1.0
    priority: int = 0
    rate_limit_bps: Optional[float] = None
    pifo_buckets: int = 4096

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"node {self.name!r}: weight must be positive")
        if self.rate_limit_bps is not None and self.rate_limit_bps <= 0:
            raise ValueError(f"node {self.name!r}: rate_limit_bps must be positive")
        if self.pifo_buckets <= 0:
            raise ValueError(f"node {self.name!r}: pifo_buckets must be positive")


@dataclass
class PolicySpec:
    """A complete scheduling policy description.

    Attributes:
        name: policy label.
        nodes: hierarchy nodes (exactly one root).
        pacing_rate_bps: optional aggregate pacing applied at the root.
        flow_to_leaf: static mapping of flow id to leaf name; flows not in
            the mapping fall back to ``default_leaf``.
        default_leaf: leaf used for unmapped flows (defaults to the first
            leaf in ``nodes`` order).
        shaper_horizon_ns / shaper_granularity_ns: sizing of the decoupled
            shaper (defaults follow the paper's kernel deployment: 2 s
            horizon over 20k buckets).
    """

    name: str
    nodes: List[PolicyNodeSpec] = field(default_factory=list)
    pacing_rate_bps: Optional[float] = None
    flow_to_leaf: Dict[int, str] = field(default_factory=dict)
    default_leaf: Optional[str] = None
    shaper_horizon_ns: int = 2_000_000_000
    shaper_granularity_ns: int = 100_000

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency; raises ``ValueError`` on problems."""
        if not self.nodes:
            raise ValueError("policy has no nodes")
        names = [node.name for node in self.nodes]
        if len(names) != len(set(names)):
            raise ValueError("duplicate node names in policy")
        roots = [node for node in self.nodes if node.parent is None]
        if len(roots) != 1:
            raise ValueError(f"policy must have exactly one root, found {len(roots)}")
        known = set(names)
        for node in self.nodes:
            if node.parent is not None and node.parent not in known:
                raise ValueError(
                    f"node {node.name!r} references unknown parent {node.parent!r}"
                )
        for leaf in self.flow_to_leaf.values():
            if leaf not in known:
                raise ValueError(f"flow mapping references unknown leaf {leaf!r}")
        if self.default_leaf is not None and self.default_leaf not in known:
            raise ValueError(f"default leaf {self.default_leaf!r} is not a node")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        parents = {node.name: node.parent for node in self.nodes}
        for name in parents:
            seen = set()
            current: Optional[str] = name
            while current is not None:
                if current in seen:
                    raise ValueError(f"cycle detected involving node {current!r}")
                seen.add(current)
                current = parents.get(current)

    # -- helpers ------------------------------------------------------------------

    def leaf_names(self) -> List[str]:
        """Names of nodes that no other node claims as parent."""
        parents = {node.parent for node in self.nodes if node.parent}
        return [node.name for node in self.nodes if node.name not in parents]

    def children_of(self, name: str) -> List[PolicyNodeSpec]:
        """Child specs of node ``name`` in declaration order."""
        return [node for node in self.nodes if node.parent == name]

    def node(self, name: str) -> PolicyNodeSpec:
        """Look up a node spec by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"unknown node {name!r}")

    def leaf_for_flow(self, flow_id: int) -> str:
        """Leaf assigned to ``flow_id`` (mapping, then default, then first leaf)."""
        leaf = self.flow_to_leaf.get(flow_id)
        if leaf is not None:
            return leaf
        if self.default_leaf is not None:
            return self.default_leaf
        leaves = self.leaf_names()
        if not leaves:
            raise ValueError("policy has no leaves")
        return leaves[0]


def parse_policy(text: str, name: str = "policy") -> PolicySpec:
    """Parse a small DOT-like policy description into a :class:`PolicySpec`.

    Grammar (one statement per line, ``#`` comments allowed)::

        root [wfq] [rate=24e9]
        root -> video  [weight=0.7] [rate=10e6] [strict|wfq|fifo]
        root -> web    [weight=0.3]
        video -> live  [weight=0.5] [rate=7e6]
        pacing 20e9

    The left-hand side of ``->`` must already have been declared (the root is
    declared by the first bare-name line).
    """
    spec = PolicySpec(name=name)
    declared: Dict[str, PolicyNodeSpec] = {}

    def parse_attributes(tokens: List[str]) -> dict:
        attributes: dict = {}
        for token in tokens:
            token = token.strip("[]")
            if not token:
                continue
            if "=" in token:
                key, value = token.split("=", 1)
                attributes[key] = value
            else:
                attributes.setdefault("discipline", token)
        return attributes

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.replace("[", " [").split()
        if tokens[0] == "pacing":
            spec.pacing_rate_bps = float(tokens[1])
            continue
        if "->" in tokens:
            arrow = tokens.index("->")
            parent_name = tokens[arrow - 1]
            child_name = tokens[arrow + 1]
            if parent_name not in declared:
                raise ValueError(f"unknown parent {parent_name!r} in line: {raw_line}")
            attributes = parse_attributes(tokens[arrow + 2 :])
            node = PolicyNodeSpec(
                name=child_name,
                parent=parent_name,
                discipline=Discipline(attributes.get("discipline", "fifo")),
                weight=float(attributes.get("weight", 1.0)),
                priority=int(attributes.get("priority", 0)),
                rate_limit_bps=(
                    float(attributes["rate"]) if "rate" in attributes else None
                ),
            )
            declared[child_name] = node
            spec.nodes.append(node)
            continue
        # Bare declaration: the root node.
        attributes = parse_attributes(tokens[1:])
        node = PolicyNodeSpec(
            name=tokens[0],
            parent=None,
            discipline=Discipline(attributes.get("discipline", "fifo")),
            rate_limit_bps=float(attributes["rate"]) if "rate" in attributes else None,
        )
        declared[node.name] = node
        spec.nodes.append(node)

    spec.validate()
    return spec


__all__ = ["Discipline", "PolicyNodeSpec", "PolicySpec", "parse_policy"]
