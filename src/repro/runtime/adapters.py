"""Integration adapters: run existing substrates sharded.

Two adapters let the rest of the codebase use the sharding layer without
learning new interfaces:

* :class:`ShardedPortQueue` — a netsim :class:`~repro.netsim.elements.PortQueue`
  composed of per-shard sub-queues with RSS-style flow classification.  A
  multi-queue NIC port is exactly ``Link(queue=ShardedPortQueue(...))``: the
  link's burst pull then services the shard rings round-robin, as a NIC TX
  scheduler services its hardware queues.
* :class:`MultiQueueQdisc` — the kernel layer's ``mq`` analogue: a classful
  root qdisc that hashes each packet to one of N child qdiscs (any existing
  :class:`~repro.kernel.qdisc.Qdisc`), drains children round-robin under a
  shared budget, and reports the earliest child deadline as its own.

Both adapters are substrate-facing and clock-free: they never touch the
runtime's execution backend (:mod:`repro.runtime.backend`) — a sharded port
or mq qdisc is driven by its substrate's own event loop, simulated or not —
so they compose unchanged whichever backend drives :class:`ShardedRuntime`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .sharder import FlowSharder
from ..core.model.packet import Packet
from ..kernel.qdisc import Qdisc
from ..netsim.elements import PortQueue


def _send_at_key(packet: Packet) -> int:
    """Stamp of a shaped packet (0 for unshaped ones, which are due at once)."""
    return packet.metadata.get("send_at_ns", 0)


class ShardedPortQueue(PortQueue):
    """A multi-queue switch port: N sub-queues behind one PortQueue facade.

    Args:
        num_shards: sub-queue (hardware queue) count.
        queue_factory: builds each sub-queue, e.g. ``lambda shard:
            DropTailEcnQueue(capacity_packets=64)``.
        sharder: flow classifier; defaults to RSS-style hashing.
        arbiter: TX arbitration — ``"rr"`` (round-robin rings, the NIC
            default; composes with ``steal_enabled``) or ``"priority"``
            (serve the ring whose head packet ranks best, re-arbitrated per
            packet; requires every sub-queue to expose ``head_priority()``,
            as :class:`~repro.netsim.elements.PFabricPortQueue` does —
            the arbitration a multi-queue pFabric port needs, since RR
            would let mice wait behind an elephant's ring turns).

    ``capacity_packets`` of the facade is the sum over sub-queues; ``drops``
    and ``enqueued`` counters aggregate the per-shard events observed through
    this adapter.  Dequeue services the sub-queues round-robin starting after
    the last-served shard, which is how NIC round-robin TX arbitration
    interleaves its rings.

    With ``steal_enabled`` the TX arbiter runs work stealing at *quota*
    granularity: the pull share of empty rings is donated to the loaded ones
    within each arbitration pass, so a skewed port fills the NIC pull in
    fewer passes.  Packets never change rings, so per-ring (and therefore
    per-flow) FIFO is untouchable and the pull remains work-conserving;
    what the knob may change is the *inter-ring interleaving* of a pull
    when several loaded rings coexist with empty ones (larger per-ring
    quotas produce longer runs from each ring) — the same latitude RR
    arbiters already have.  ``quota_steals`` counts the donated passes.
    """

    ARBITERS = ("rr", "priority")

    def __init__(
        self,
        num_shards: int,
        queue_factory: Callable[[int], PortQueue],
        sharder: Optional[FlowSharder] = None,
        steal_enabled: bool = False,
        arbiter: str = "rr",
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if arbiter not in self.ARBITERS:
            raise ValueError(f"unknown arbiter {arbiter!r}; choose from {self.ARBITERS}")
        self.shards: List[PortQueue] = [queue_factory(shard) for shard in range(num_shards)]
        if arbiter == "priority" and not all(
            hasattr(queue, "head_priority") for queue in self.shards
        ):
            raise ValueError("priority arbitration needs head_priority() on every sub-queue")
        super().__init__(sum(queue.capacity_packets for queue in self.shards))
        self.num_shards = num_shards
        self.sharder = sharder or FlowSharder(num_shards)
        self.steal_enabled = steal_enabled
        self.arbiter = arbiter
        self.quota_steals = 0
        self._next_rr = 0

    def shard_for(self, packet: Packet) -> int:
        """Sub-queue index the packet classifies to."""
        return self.sharder.shard_for(packet.flow_id)

    def enqueue(self, packet: Packet) -> bool:
        accepted = self.shards[self.shard_for(packet)].enqueue(packet)
        if accepted:
            self.enqueued += 1
        else:
            self.drops += 1
        return accepted

    def enqueue_batch(self, packets: List[Packet]) -> int:
        # Group per shard so each sub-queue sees one burst (its own batched
        # admission path), preserving arrival order within every shard.
        by_shard: dict[int, List[Packet]] = {}
        for packet in packets:
            by_shard.setdefault(self.shard_for(packet), []).append(packet)
        accepted = 0
        for shard, group in by_shard.items():
            taken = self.shards[shard].enqueue_batch(group)
            accepted += taken
            self.drops += len(group) - taken
        self.enqueued += accepted
        return accepted

    def _best_priority_shard(self) -> Optional[int]:
        """Loaded ring with the best (lowest) head priority; ties follow RR.

        The priority arbiter of a multi-queue pFabric port: strict priority
        holds *across* rings as well as within them, which RR arbitration
        cannot provide (a mouse flow's packets would wait behind an
        elephant's ring turns — exactly the small-flow FCT collapse the
        Figure 19 multi-queue reproduction guards against).
        """
        best = None
        best_priority = None
        for offset in range(self.num_shards):
            shard = (self._next_rr + offset) % self.num_shards
            queue = self.shards[shard]
            if not len(queue):
                continue
            priority = queue.head_priority()  # type: ignore[attr-defined]
            if priority is None:
                continue
            if best_priority is None or priority < best_priority:
                best, best_priority = shard, priority
        return best

    def dequeue(self) -> Optional[Packet]:
        if self.arbiter == "priority":
            shard = self._best_priority_shard()
            if shard is None:
                return None
            self._next_rr = (shard + 1) % self.num_shards
            return self.shards[shard].dequeue()
        for offset in range(self.num_shards):
            shard = (self._next_rr + offset) % self.num_shards
            packet = self.shards[shard].dequeue()
            if packet is not None:
                self._next_rr = (shard + 1) % self.num_shards
                return packet
        return None

    def dequeue_batch(self, n: int) -> List[Packet]:
        """One NIC pull: round-robin bursts over the non-empty sub-queues.

        With stealing enabled the per-pass quota divides over the *loaded*
        rings only — empty rings donate their share, so one pass can fill
        the pull from a single deep ring.  The pull stays work-conserving
        and per-ring FIFO is untouched; inter-ring interleaving may differ
        from the steal-off arbitration (longer per-ring runs), and the
        shrinking extra passes over the same rings disappear.
        """
        batch: List[Packet] = []
        if self.arbiter == "priority":
            # Strict cross-ring priority re-arbitrates per packet: the head
            # comparison is the whole point, so the pull cannot take long
            # same-ring runs the way the RR quota does.
            while len(batch) < n:
                packet = self.dequeue()
                if packet is None:
                    break
                batch.append(packet)
            return batch
        while len(batch) < n:
            start = self._next_rr
            progressed = False
            divisor = self.num_shards
            if self.steal_enabled:
                loaded = sum(1 for queue in self.shards if len(queue))
                if loaded == 0:
                    break
                if loaded < self.num_shards:
                    self.quota_steals += 1
                    divisor = loaded
            for offset in range(self.num_shards):
                shard = (start + offset) % self.num_shards
                quota = max(1, (n - len(batch)) // divisor)
                pulled = self.shards[shard].dequeue_batch(min(quota, n - len(batch)))
                if pulled:
                    batch.extend(pulled)
                    self._next_rr = (shard + 1) % self.num_shards
                    progressed = True
                if len(batch) >= n:
                    break
            if not progressed:
                break
        return batch

    def __len__(self) -> int:
        return sum(len(queue) for queue in self.shards)


class MultiQueueQdisc(Qdisc):
    """``mq``-style root qdisc: per-shard children behind one qdisc surface.

    Args:
        num_shards: child (virtual transmit queue / CPU) count.
        child_factory: builds child ``shard`` — any existing qdisc works,
            e.g. ``lambda shard: EiffelQdisc(default_rate_bps=1e9)``.
        sharder: flow classifier; defaults to RSS-style hashing.

    The root performs no queueing of its own: packets hash straight into a
    child (as skbs hash to a per-CPU transmit queue), ``dequeue_due`` drains
    children round-robin under the shared budget, and the watchdog deadline
    is the minimum over children.  Children charge their work to their own
    cost accounts (the per-core split that is the point of ``mq``), and the
    root mirrors every child delta into its own system/softirq accounts so
    drivers that sample only the root — ``KernelSimulation``'s
    ``IntervalSample`` — see the whole machine; :meth:`max_child_cycles`
    exposes the bottleneck-core view.

    Work stealing (``steal_enabled``): after the round-robin drain, an idle
    child — backlog zero, its core about to sleep — takes over the imminent
    due window of the deepest sibling (backlog at or above
    ``steal_min_backlog``) through the child qdiscs' donor/acceptor surface
    (:meth:`~repro.kernel.eiffel_qdisc.EiffelQdisc.grant_due_window` /
    ``splice_due_window``); children lacking that surface simply never
    participate.  The handoff is order-safe per flow: the stolen window is a
    stamp-ordered prefix (later arrivals stamp after it on the victim), and
    because a coalesced timer fire may find one flow's due packets on both
    children at once, a steal-enabled root merges each fire's releases by
    stamp (stable sort) instead of returning raw round-robin child order.
    The one residual caveat is an explicitly truncating ``budget`` that
    splits a due window across fires mid-flow — the default budget never
    truncates, and the sharded runtime's lease deferral (PR 3) is the
    machinery to reach for where bounded budgets matter.  Extraction cycles
    ride the stolen window to the thief's core account, which is what
    lowers :meth:`max_child_cycles` under skewed hashing.
    """

    name = "mq"

    def __init__(
        self,
        num_shards: int,
        child_factory: Callable[[int], Qdisc],
        sharder: Optional[FlowSharder] = None,
        timer_granularity_ns: int = 1,
        steal_enabled: bool = False,
        steal_batch: int = 64,
        steal_horizon_ns: int = 1_000_000,
        steal_min_backlog: int = 8,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if steal_batch <= 0:
            raise ValueError("steal_batch must be positive")
        if steal_horizon_ns < 0:
            raise ValueError("steal_horizon_ns must be non-negative")
        if steal_min_backlog <= 0:
            raise ValueError("steal_min_backlog must be positive")
        super().__init__(timer_granularity_ns=timer_granularity_ns)
        self.num_shards = num_shards
        self.children: List[Qdisc] = [child_factory(shard) for shard in range(num_shards)]
        self.sharder = sharder or FlowSharder(num_shards)
        self.steal_enabled = steal_enabled
        self.steal_batch = steal_batch
        self.steal_horizon_ns = steal_horizon_ns
        self.steal_min_backlog = steal_min_backlog
        self.steals = 0
        self.packets_stolen = 0
        self._stolen_pending = 0
        self._next_rr = 0
        self._child_cost_snapshots = [(0.0, 0.0)] * num_shards

    def _absorb_child_costs(self, shard: int) -> None:
        """Mirror the child's cost delta into the root's accounts."""
        child = self.children[shard]
        system_prev, softirq_prev = self._child_cost_snapshots[shard]
        system_now = child.system_cost.total_cycles
        softirq_now = child.softirq_cost.total_cycles
        if system_now > system_prev:
            self.system_cost.account.charge("child_qdisc", system_now - system_prev)
        if softirq_now > softirq_prev:
            self.softirq_cost.account.charge("child_qdisc", softirq_now - softirq_prev)
        self._child_cost_snapshots[shard] = (system_now, softirq_now)

    # -- qdisc interface ---------------------------------------------------

    def enqueue_packet(self, packet: Packet, now_ns: int) -> None:
        shard = self.sharder.shard_for(packet.flow_id)
        packet.metadata["mq_shard"] = shard
        self.children[shard].enqueue_packet(packet, now_ns)
        self._absorb_child_costs(shard)

    def dequeue_due(self, now_ns: int, budget: int = 1 << 30) -> List[Packet]:
        released: List[Packet] = []
        start = self._next_rr
        for offset in range(self.num_shards):
            if len(released) >= budget:
                break
            shard = (start + offset) % self.num_shards
            child_released = self.children[shard].dequeue_due(
                now_ns, budget - len(released)
            )
            self._absorb_child_costs(shard)
            if child_released:
                released.extend(child_released)
                self._next_rr = (shard + 1) % self.num_shards
        self.stats.dequeued += len(released)
        if self.steal_enabled:
            if released and self._stolen_pending:
                # While a stolen window is outstanding, one flow's due
                # packets may sit on two children at once (the stolen
                # prefix on the thief, later stamps on the victim), and a
                # coarse or coalesced fire drains both in round-robin child
                # order — which would emit the victim's later stamps first.
                # Merge the fire's releases by stamp (stable, preserving
                # FIFO on ties; unstamped packets key 0, i.e. due at once).
                # With no steal outstanding the raw round-robin order is
                # returned untouched, so flipping the knob costs nothing
                # until a lease actually lands.
                released.sort(key=_send_at_key)
                for packet in released:
                    if packet.metadata.pop("mq_stolen", None):
                        self._stolen_pending -= 1
            self._steal_pass(now_ns)
        return released

    def _steal_pass(self, now_ns: int) -> None:
        """One bounded steal after the drain: idlest child robs the deepest.

        Runs at most one handoff per ``dequeue_due`` call, the same "one
        lease at a time" bound the sharded runtime applies.  The thief must
        be completely idle (its core would otherwise sleep) *and* below the
        mean of the children's cycle accounts — the runtime's cycle-fair
        thief gate, which stops a freshly fed thief from ping-ponging
        handoff locks while the victim still pays the stamping path.  The
        victim's backlog must clear the steal floor: between near-equal
        children the handoff lock would cost more than the relief.
        """
        cycles = [child.total_cycles() for child in self.children]
        mean_cycles = sum(cycles) / self.num_shards
        thief = None
        victim = None
        victim_backlog = self.steal_min_backlog - 1
        for shard, child in enumerate(self.children):
            backlog = child.backlog
            if (
                backlog == 0
                and thief is None
                and cycles[shard] <= mean_cycles
                and hasattr(child, "splice_due_window")
            ):
                thief = shard
            elif backlog > victim_backlog and hasattr(child, "grant_due_window"):
                victim, victim_backlog = shard, backlog
        if thief is None or victim is None:
            return
        window = self.children[victim].grant_due_window(
            now_ns, self.steal_batch, self.steal_horizon_ns
        )
        if window is None:
            return
        pairs, delta = window
        for _send_at, packet in pairs:
            packet.metadata["mq_stolen"] = True
        self.children[thief].splice_due_window(pairs, delta)
        self._absorb_child_costs(victim)
        self._absorb_child_costs(thief)
        self.steals += 1
        self.packets_stolen += len(pairs)
        self._stolen_pending += len(pairs)

    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        deadlines = [
            deadline
            for deadline in (
                child.soonest_deadline_ns(now_ns) for child in self.children
            )
            if deadline is not None
        ]
        return min(deadlines) if deadlines else None

    # -- aggregated accounting ---------------------------------------------

    @property
    def backlog(self) -> int:
        """Packets queued across every child."""
        return sum(child.backlog for child in self.children)

    def max_child_cycles(self) -> float:
        """Cycles of the busiest child (the bottleneck-core view).

        The root's own accounts already include every child's work (mirrored
        delta by delta), so the whole-machine view is the inherited
        :meth:`~repro.kernel.qdisc.Qdisc.total_cycles`.
        """
        return max(child.total_cycles() for child in self.children)

    def reset_costs(self) -> None:
        """Zero the root's and every child's cost accounts."""
        super().reset_costs()
        for child in self.children:
            child.reset_costs()
        self._child_cost_snapshots = [(0.0, 0.0)] * self.num_shards


__all__ = ["MultiQueueQdisc", "ShardedPortQueue"]
