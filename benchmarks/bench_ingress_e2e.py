"""Ingress-pipeline end-to-end benchmark — the async-RX counterpart of the
sharding sweep, plus multi-core variants of the paper's headline figures.

Four sections land in ``BENCH_ingress.json``:

* **sweep** — ingress-cores × shards × admission-policy cross at normal
  load: modelled aggregate ops/sec (``packets * clock / bottleneck-core
  cycles``, the bottleneck now taken over *both* layers — RX cores and
  scheduling shards), drop and RX-sojourn columns, and the harness's
  wall-clock rate.  The headline row pair: at 4 shards a single ingress
  core is the pipeline bottleneck, and adding a second one raises modelled
  end-to-end throughput.
* **overload** — the same pipeline held at 2× its paced drain capacity by
  an open-loop burst source, once per admission policy.  Pure backpressure
  (``admission=None``) must lose nothing — the RX ring grows and the pull
  pauses on mailbox watermarks — at the price of unbounded sojourn;
  CoDel-style admission trades a bounded drop rate for a strictly lower
  p99 RX sojourn; tail-drop and flow-fair drop bound the ring instead.
* **figure9_multicore** — the Figure 9 kernel-shaping reproduction run
  through ``MultiQueueQdisc`` (one Eiffel child per virtual CPU): total
  cores rise (every core pays its own timer path — the classic ``mq``
  cost), while the *bottleneck-core* load drops well below the single-core
  qdisc, which is the paper's CPU-efficiency claim carried onto multiple
  cores.
* **figure19_multicore** — the Figure 19 pFabric FCT reproduction with
  every switch port a ``ShardedPortQueue`` of pFabric rings under priority
  TX arbitration: the small-flow FCT curves must track the single-queue
  port (round-robin arbitration demonstrably collapses them).

Run standalone (``python benchmarks/bench_ingress_e2e.py``) to regenerate
the committed artifact with full iteration counts; the pytest entry points
run a smoke-sized version of every section with the acceptance assertions.
"""

import json
import random
import time
from pathlib import Path

from conftest import report

from repro.cpu import CpuMeter
from repro.kernel import (
    KernelSimulation,
    ShapingExperimentConfig,
    build_multiqueue_eiffel,
    run_shaping_experiment,
)
from repro.netsim import (
    FabricConfig,
    FabricExperimentConfig,
    multiqueue_pfabric_scheme,
    run_fabric_experiment,
)
from repro.runtime import CoDelPolicy, ShardedRuntime
from repro.traffic import NeperLikeGenerator, OpenLoopBurstSource

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingress.json"

SEED = 20_190_226  # NSDI'19
METER = CpuMeter()  # 3 GHz modelled cores

# -- the pipeline under test --------------------------------------------------

INGRESS_CORES = [1, 2]
SHARD_COUNTS = [1, 2, 4]
NUM_FLOWS = 128
PACKET_BYTES = 1500
QUANTUM_NS = 10_000
BATCH_PER_QUANTUM = 64
RX_BURST = 64
RX_RING = 256
MAILBOX_CAPACITY = 96

# CoDel tuned to the pipeline's timescale (quantum 10 us): sojourn target of
# five quanta, control interval of ten — aggressive enough to bite within a
# smoke-sized overload episode, conservative enough never to touch a burst
# that drains within an interval.
CODEL_TARGET_NS = 50_000
CODEL_INTERVAL_NS = 100_000

#: The admission axis.  ``None`` is pure watermark backpressure (loss-free).
ADMISSION_POLICIES = {
    "backpressure": None,
    "tail_drop": "tail_drop",
    "fair_drop": "fair_drop",
    "codel": (lambda: CoDelPolicy(CODEL_TARGET_NS, CODEL_INTERVAL_NS)),
}

# -- overload scenario --------------------------------------------------------

OVERLOAD_FACTOR = 2.0
OVERLOAD_INGRESS = 1
OVERLOAD_SHARDS = 2
OVERLOAD_FLOWS = 16
OVERLOAD_RATE_BPS = 1e9  # per flow; aggregate drain = 16 Gbps ~ 1.33 Mpps
SHARD_BACKLOG_LIMIT = 64

FULL_PACKETS = 20_000
SMOKE_PACKETS = 4_000
FULL_OVERLOAD_PACKETS = 24_000
SMOKE_OVERLOAD_PACKETS = 10_000


def _run_pipeline(
    ingress_cores: int,
    shards: int,
    admission,
    num_packets: int,
    overload: bool = False,
) -> dict:
    """Drive one configuration to completion; return its telemetry row."""
    if overload:
        capacity_pps = OVERLOAD_FLOWS * OVERLOAD_RATE_BPS / (PACKET_BYTES * 8)
        source = OpenLoopBurstSource(
            offered_pps=OVERLOAD_FACTOR * capacity_pps,
            burst_size=32,
            packet_bytes=PACKET_BYTES,
            num_flows=OVERLOAD_FLOWS,
        )
        runtime = ShardedRuntime(
            shards,
            default_rate_bps=OVERLOAD_RATE_BPS,
            quantum_ns=QUANTUM_NS,
            batch_per_quantum=BATCH_PER_QUANTUM,
            ingress_cores=ingress_cores,
            admission=admission,
            rx_ring_capacity=RX_RING,
            rx_burst=RX_BURST,
            mailbox_capacity=MAILBOX_CAPACITY,
            shard_backlog_limit=SHARD_BACKLOG_LIMIT,
            record_transmits=False,
        )
    else:
        # Normal load, unpaced flows: the throughput cells measure the
        # cycle cost of the pipeline itself, uniform flow ids over a burst
        # cadence of one RX pull per scheduling quantum.
        rng = random.Random(SEED)
        source = OpenLoopBurstSource(
            offered_pps=RX_BURST * 1e9 / QUANTUM_NS,
            burst_size=RX_BURST,
            packet_bytes=PACKET_BYTES,
            flow_sampler=lambda _index: rng.randrange(NUM_FLOWS),
        )
        runtime = ShardedRuntime(
            shards,
            quantum_ns=QUANTUM_NS,
            batch_per_quantum=BATCH_PER_QUANTUM,
            ingress_cores=ingress_cores,
            admission=admission,
            rx_ring_capacity=RX_RING,
            rx_burst=RX_BURST,
            mailbox_capacity=MAILBOX_CAPACITY,
            record_transmits=False,
        )
    simulator = runtime.simulator
    offered = 0
    for when_ns, burst in source.bursts(num_packets):
        offered += len(burst)

        def offer(burst=burst) -> None:
            runtime.submit_batch(burst)

        simulator.schedule_at(when_ns, offer)

    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start

    telemetry = runtime.telemetry()
    packets = telemetry.transmitted
    # The always-on bounded histogram replaced the opt-in raw-sojourn list:
    # same seams, log2-bucketed quantiles (<= 0.79% relative error at the
    # default precision) instead of exact order statistics.
    sojourn = telemetry.latency["rx_sojourn"]
    return {
        "ingress_cores": ingress_cores,
        "shards": shards,
        "offered": offered,
        "transmitted": packets,
        "admission_drops": telemetry.admission_drops,
        "mailbox_drops": telemetry.ingress_drops,
        "aggregate_ops_per_sec": packets
        * METER.cycles_per_second
        / max(1.0, telemetry.bottleneck_cycles),
        "bottleneck_cycles": telemetry.bottleneck_cycles,
        "max_shard_cycles": telemetry.max_shard_cycles,
        "max_ingress_cycles": telemetry.max_ingress_cycles,
        "ingress_stalled_ticks": sum(c.stats.stalled_ticks for c in telemetry.ingress),
        "ingress_stall_cycles": sum(c.stats.stall_cycles for c in telemetry.ingress),
        "rx_ring_peak": max((c.ring_peak for c in telemetry.ingress), default=0),
        "rx_sojourn_p50_ns": sojourn.quantile(0.50),
        "rx_sojourn_p99_ns": sojourn.quantile(0.99),
        "rx_sojourn_mean_ns": sojourn.mean,
        "harness_ops_per_sec": packets / max(elapsed, 1e-9),
        "elapsed_sec": elapsed,
    }


# -- the figure 9 multi-core block --------------------------------------------

FIG9_MQ_SHARDS = 4
FIG9_FULL = ShapingExperimentConfig()
FIG9_SMOKE = ShapingExperimentConfig(
    num_flows=200,
    aggregate_rate_bps=1.0e9,
    num_samples=4,
    sample_duration_ns=5_000_000,
    warmup_samples=1,
)


def run_figure9_multicore(config: ShapingExperimentConfig) -> dict:
    """Figure 9 on multiple cores: single Eiffel vs an ``mq`` of Eiffels.

    The single-core qdisc's median cores-used is the paper's headline; the
    ``mq`` variant reports both the whole-machine total (which *rises*:
    every core runs its own timer path) and the bottleneck core's share
    (which must drop well below the single-core figure — the win that makes
    multi-queue worth its overhead).  The root's timer/lock charges are the
    per-CPU work a real ``mq`` would pay on each core, so the per-core view
    apportions that overhead evenly on top of the busiest child.
    """
    meter = CpuMeter(config.cycles_per_second)
    single = run_shaping_experiment(config, qdisc_filter=lambda name: name == "eiffel")
    single_median = single.median_cores()["eiffel"]

    generator = NeperLikeGenerator(
        num_flows=config.num_flows,
        aggregate_rate_bps=config.aggregate_rate_bps,
        packet_bytes=config.packet_bytes,
        seed=config.seed,
        rate_jitter=config.rate_jitter,
    )
    flow_rates = generator.flow_rates()
    flow_ids = list(flow_rates)
    mq = build_multiqueue_eiffel(config, flow_rates, FIG9_MQ_SHARDS)
    simulation = KernelSimulation(mq)
    totals = []
    per_core = []
    interval_seconds = config.sample_duration_ns / 1e9
    for index in range(config.warmup_samples + config.num_samples):
        start = index * config.sample_duration_ns
        sample = simulation.run_closed_loop_interval(
            flow_ids, start, config.sample_duration_ns, packet_bytes=config.packet_bytes
        )
        if index < config.warmup_samples:
            continue
        child_cycles = [child.total_cycles() for child in mq.children]
        overhead = max(0.0, sample.total_cycles - sum(child_cycles))
        totals.append(sample.cores_used(meter))
        per_core.append(
            meter.cores_used(
                max(child_cycles) + overhead / FIG9_MQ_SHARDS, interval_seconds
            )
        )
    totals.sort()
    per_core.sort()
    return {
        "num_shards": FIG9_MQ_SHARDS,
        "single_eiffel_median_cores": single_median,
        "mq_total_median_cores": totals[len(totals) // 2],
        "mq_bottleneck_core_median_cores": per_core[len(per_core) // 2],
        "per_core_speedup_vs_single": single_median / max(1e-12, per_core[len(per_core) // 2]),
    }


# -- the figure 19 multi-core block -------------------------------------------

FIG19_MQ_SHARDS = 2
FIG19_LOAD = 0.6
FIG19_FULL = FabricExperimentConfig(
    fabric=FabricConfig(num_leaves=3, num_spines=3, hosts_per_leaf=3),
    num_flows=120,
    seed=19,
)
FIG19_SMOKE = FabricExperimentConfig(
    fabric=FabricConfig(num_leaves=3, num_spines=3, hosts_per_leaf=3),
    num_flows=60,
    seed=19,
)


def run_figure19_multicore(config: FabricExperimentConfig) -> dict:
    """Figure 19 with multi-queue switch ports (priority TX arbitration)."""
    rows = {}
    for name, impl in (
        ("pfabric", None),
        (f"pfabric_mq{FIG19_MQ_SHARDS}", multiqueue_pfabric_scheme(FIG19_MQ_SHARDS)),
    ):
        result = run_fabric_experiment(
            "pfabric" if impl is None else name, FIG19_LOAD, config, scheme_impl=impl
        )
        rows[name] = {
            "small_flow_avg_fct": result.small_flow_avg(),
            "small_flow_p99_fct": result.small_flow_p99(),
            "large_flow_avg_fct": result.large_flow_avg(),
            "completion_rate": result.completion_rate(),
            "drops": result.drops,
        }
    return {"load": FIG19_LOAD, "num_shards": FIG19_MQ_SHARDS, "schemes": rows}


# -- the full benchmark -------------------------------------------------------


def run_ingress_sweep(num_packets: int = FULL_PACKETS) -> dict:
    """Ingress-cores × shards × admission cross at normal load."""
    sweep: dict = {}
    for policy_key, admission in ADMISSION_POLICIES.items():
        sweep[policy_key] = {}
        for cores in INGRESS_CORES:
            for shards in SHARD_COUNTS:
                row = _run_pipeline(cores, shards, admission, num_packets)
                sweep[policy_key][f"i{cores}s{shards}"] = row
    return sweep


def run_overload(num_packets: int = FULL_OVERLOAD_PACKETS) -> dict:
    """Every admission policy against the same 2× paced overload."""
    return {
        policy_key: _run_pipeline(
            OVERLOAD_INGRESS, OVERLOAD_SHARDS, admission, num_packets, overload=True
        )
        for policy_key, admission in ADMISSION_POLICIES.items()
    }


def run_benchmark(smoke: bool = False) -> dict:
    packets = SMOKE_PACKETS if smoke else FULL_PACKETS
    overload_packets = SMOKE_OVERLOAD_PACKETS if smoke else FULL_OVERLOAD_PACKETS
    return {
        "benchmark": "ingress_e2e",
        "description": (
            "End-to-end sharded pipeline behind asynchronous ingress cores: "
            "ingress-cores x shards x admission-policy sweep (modelled "
            "aggregate ops/sec over the bottleneck core of either layer), "
            "2x-overload admission comparison (drops vs RX-ring sojourn), "
            "and multi-core variants of the Figure 9 and Figure 19 "
            "reproductions."
        ),
        "workload": {
            "num_packets": packets,
            "overload_packets": overload_packets,
            "num_flows": NUM_FLOWS,
            "packet_bytes": PACKET_BYTES,
            "quantum_ns": QUANTUM_NS,
            "batch_per_quantum": BATCH_PER_QUANTUM,
            "rx_burst": RX_BURST,
            "rx_ring_capacity": RX_RING,
            "mailbox_capacity": MAILBOX_CAPACITY,
            "overload_factor": OVERLOAD_FACTOR,
            "overload_flows": OVERLOAD_FLOWS,
            "overload_rate_bps": OVERLOAD_RATE_BPS,
            "shard_backlog_limit": SHARD_BACKLOG_LIMIT,
            "codel_target_ns": CODEL_TARGET_NS,
            "codel_interval_ns": CODEL_INTERVAL_NS,
            "seed": SEED,
            "modelled_clock_hz": METER.cycles_per_second,
        },
        "sweep": run_ingress_sweep(packets),
        "overload": run_overload(overload_packets),
        "figure9_multicore": run_figure9_multicore(FIG9_SMOKE if smoke else FIG9_FULL),
        "figure19_multicore": run_figure19_multicore(
            FIG19_SMOKE if smoke else FIG19_FULL
        ),
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_ingress.json`` (the ingress-axis perf artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_sweep(sweep: dict) -> str:
    lines = [
        f"{'policy':<14}"
        + "".join(
            f"i{cores}s{shards:<12}" for cores in INGRESS_CORES for shards in SHARD_COUNTS
        )
        + " (modelled Mops/s | drops)"
    ]
    for policy_key, rows in sweep.items():
        line = f"{policy_key:<14}"
        for cores in INGRESS_CORES:
            for shards in SHARD_COUNTS:
                row = rows[f"i{cores}s{shards}"]
                drops = row["admission_drops"] + row["mailbox_drops"]
                line += f"{row['aggregate_ops_per_sec'] / 1e6:6.2f}|{drops:<6d} "
        lines.append(line)
    return "\n".join(lines)


def _format_overload(overload: dict) -> str:
    lines = [
        f"{'policy':<14}{'tx':>7}{'drops':>7}{'p50 us':>9}{'p99 us':>9}{'ring pk':>9}"
    ]
    for policy_key, row in overload.items():
        lines.append(
            f"{policy_key:<14}{row['transmitted']:>7}{row['admission_drops']:>7}"
            f"{row['rx_sojourn_p50_ns'] / 1e3:>9.1f}{row['rx_sojourn_p99_ns'] / 1e3:>9.1f}"
            f"{row['rx_ring_peak']:>9}"
        )
    return "\n".join(lines)


# -- pytest entry points ------------------------------------------------------


def test_ingress_e2e_sweep(benchmark):
    sweep = benchmark.pedantic(
        run_ingress_sweep, kwargs={"num_packets": SMOKE_PACKETS}, rounds=1, iterations=1
    )
    report("Ingress e2e — cores x shards x admission sweep", _format_sweep(sweep))
    # No admission policy triggers at normal load: every cell is loss-free
    # (the drop columns exist for the overload section).
    for rows in sweep.values():
        for row in rows.values():
            assert row["transmitted"] == row["offered"] == SMOKE_PACKETS
            assert row["mailbox_drops"] == 0
    for row in sweep["backpressure"].values():
        assert row["admission_drops"] == 0
    # The acceptance gate: at 4 shards a single RX core is the end-to-end
    # bottleneck, and a second ingress core raises modelled throughput.
    one = sweep["backpressure"]["i1s4"]
    two = sweep["backpressure"]["i2s4"]
    assert one["max_ingress_cycles"] >= one["max_shard_cycles"], _format_sweep(sweep)
    assert two["aggregate_ops_per_sec"] > one["aggregate_ops_per_sec"], _format_sweep(sweep)
    # At normal load the watermarks never engage — backpressure is an
    # overload mechanism, and the overload test asserts it fires there.


def test_ingress_overload_admission(benchmark):
    overload = benchmark.pedantic(
        run_overload, kwargs={"num_packets": SMOKE_OVERLOAD_PACKETS}, rounds=1, iterations=1
    )
    report("Ingress e2e — 2x overload, admission policies", _format_overload(overload))
    backpressure = overload["backpressure"]
    codel = overload["codel"]
    # Pure backpressure loses nothing under 2x overload: the RX ring grows
    # past its nominal capacity instead.
    assert backpressure["transmitted"] == backpressure["offered"]
    assert backpressure["admission_drops"] == 0
    assert backpressure["mailbox_drops"] == 0
    assert backpressure["rx_ring_peak"] > RX_RING
    assert backpressure["ingress_stalled_ticks"] > 0
    # CoDel-style admission strictly reduces p99 RX sojourn, at the price of
    # a non-zero drop rate; conservation holds including drops.
    assert codel["admission_drops"] > 0
    assert codel["rx_sojourn_p99_ns"] < backpressure["rx_sojourn_p99_ns"], (
        _format_overload(overload)
    )
    assert codel["transmitted"] + codel["admission_drops"] == codel["offered"]
    # The occupancy-bounding policies cap the ring and drop the excess.
    for policy_key in ("tail_drop", "fair_drop"):
        row = overload[policy_key]
        assert row["admission_drops"] > 0
        assert row["rx_ring_peak"] <= RX_RING
        assert row["transmitted"] + row["admission_drops"] == row["offered"]
        assert row["rx_sojourn_p99_ns"] < backpressure["rx_sojourn_p99_ns"]


def test_figure9_multicore(benchmark):
    result = benchmark.pedantic(
        run_figure9_multicore, args=(FIG9_SMOKE,), rounds=1, iterations=1
    )
    report(
        "Figure 9, multi-core — Eiffel vs mq(Eiffel x 4)",
        (
            f"single eiffel median cores:      {result['single_eiffel_median_cores']:.4f}\n"
            f"mq4 whole-machine median cores:  {result['mq_total_median_cores']:.4f}\n"
            f"mq4 bottleneck-core median:      {result['mq_bottleneck_core_median_cores']:.4f}\n"
            f"per-core speedup vs single:      {result['per_core_speedup_vs_single']:.1f}x"
        ),
    )
    benchmark.extra_info.update(result)
    # The multi-core claim: the bottleneck core of the mq variant carries
    # strictly less load than the single-core qdisc.
    assert (
        result["mq_bottleneck_core_median_cores"] < result["single_eiffel_median_cores"]
    )


def test_figure19_multicore(benchmark):
    result = benchmark.pedantic(
        run_figure19_multicore, args=(FIG19_SMOKE,), rounds=1, iterations=1
    )
    rows = result["schemes"]
    base = rows["pfabric"]
    mq = rows[f"pfabric_mq{FIG19_MQ_SHARDS}"]
    report(
        "Figure 19, multi-core — pFabric vs sharded-port pFabric",
        "\n".join(
            f"{name:12} small_avg={row['small_flow_avg_fct']:.2f} "
            f"small_p99={row['small_flow_p99_fct']:.2f} "
            f"large_avg={row['large_flow_avg_fct']:.2f} "
            f"completed={row['completion_rate']:.2f}"
            for name, row in rows.items()
        ),
    )
    benchmark.extra_info["panels"] = rows
    # The sharded port must track the single-queue port (the same tolerance
    # the approximate-queue comparison of Figure 19 uses).
    assert abs(mq["small_flow_avg_fct"] - base["small_flow_avg_fct"]) <= max(
        0.5, 0.5 * base["small_flow_avg_fct"]
    )
    assert mq["completion_rate"] >= base["completion_rate"] - 0.05
    assert mq["large_flow_avg_fct"] <= base["large_flow_avg_fct"] * 1.5


if __name__ == "__main__":
    results = run_benchmark(smoke=False)
    artifact = write_artifact(results)
    print(_format_sweep(results["sweep"]))
    print()
    print(_format_overload(results["overload"]))
    fig9 = results["figure9_multicore"]
    print(
        f"\nfig9 mq{fig9['num_shards']}: single {fig9['single_eiffel_median_cores']:.4f} cores "
        f"-> bottleneck-core {fig9['mq_bottleneck_core_median_cores']:.4f} "
        f"({fig9['per_core_speedup_vs_single']:.1f}x per-core)"
    )
    fig19 = results["figure19_multicore"]
    for name, row in fig19["schemes"].items():
        print(
            f"fig19 {name:12} small_avg={row['small_flow_avg_fct']:.2f} "
            f"p99={row['small_flow_p99_fct']:.2f} large_avg={row['large_flow_avg_fct']:.2f}"
        )
    print(f"\nwrote {artifact}")
