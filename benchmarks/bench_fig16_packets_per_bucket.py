"""Figure 16: queue throughput (Mpps) vs packets per bucket, 5k and 10k buckets.

Microbenchmark matching Section 5.2's methodology: "the queue is initially
filled with elements according to ... average number of packets per bucket
parameters.  Then, packets are dequeued from the queue."  Throughput of the
drain is reported for the bucketed binary-heap baseline (BH), the circular
FFS queue (cFFS) and the approximate gradient queue (Approx).

Two numbers are reported per cell: the modelled throughput (per-operation CPU
cost model at 3 GHz — the apples-to-apples comparison, since wall-clock
Python timings are dominated by interpreter overhead and by whether a
structure is backed by a C-implemented library) and, in parentheses, the raw
wall-clock Mpps.
"""

import time

from conftest import modelled_cycles_per_op, report

from repro.analysis import Table, format_table
from repro.core.queues import (
    ApproximateGradientQueue,
    BucketSpec,
    BucketedHeapQueue,
    CircularFFSQueue,
)
from repro.core.queues.gradient import fit_bucket_spec

PACKETS_PER_BUCKET = [1, 2, 4, 8]
BUCKET_COUNTS = [5000, 10000]


def build_queue(kind: str, num_buckets: int):
    if kind == "bh":
        return BucketedHeapQueue(BucketSpec(num_buckets=num_buckets))
    if kind == "cffs":
        return CircularFFSQueue(BucketSpec(num_buckets=num_buckets))
    if kind == "approx":
        # Configured as the paper's guidance recommends: alpha = 16 and a
        # coarsened granularity so the requested priority levels fit the
        # approximate queue's capacity (~520 buckets).
        return ApproximateGradientQueue(fit_bucket_spec(num_buckets, alpha=16), alpha=16)
    raise ValueError(kind)


def fill(queue, num_buckets: int, per_bucket: int) -> int:
    for bucket in range(num_buckets):
        for _ in range(per_bucket):
            queue.enqueue(bucket, bucket)
    return num_buckets * per_bucket


def drain(queue, operations: int) -> None:
    for _ in range(operations):
        queue.extract_min()


def measure(kind: str, num_buckets: int, per_bucket: int) -> tuple[float, float]:
    """Return (wall-clock Mpps, modelled Mpps at 3 GHz) for one drain."""
    queue = build_queue(kind, num_buckets)
    operations = fill(queue, num_buckets, per_bucket)
    queue.stats.reset()
    start = time.perf_counter()
    drain(queue, operations)
    elapsed = time.perf_counter() - start
    wall_mpps = operations / elapsed / 1e6
    cycles = modelled_cycles_per_op(queue, operations)
    return wall_mpps, 3.0e9 / cycles / 1e6


def test_fig16_packets_per_bucket(benchmark):
    table = Table(
        title="Drain throughput vs packets per bucket "
        "(modelled Mpps at 3 GHz, wall-clock Mpps in parentheses)",
        columns=["buckets", "pkts/bucket", "BH", "cFFS", "Approx"],
    )
    modelled = {}
    for num_buckets in BUCKET_COUNTS:
        for per_bucket in PACKETS_PER_BUCKET:
            row = []
            for kind in ("bh", "cffs", "approx"):
                wall, model = measure(kind, num_buckets, per_bucket)
                modelled[(kind, num_buckets, per_bucket)] = model
                row.append(f"{model:.1f} ({wall:.2f})")
            table.add_row(num_buckets, per_bucket, *row)
    report("Figure 16 — packets per bucket", format_table(table))
    benchmark.extra_info["modelled_mpps"] = {
        f"{kind}/{buckets}/{per_bucket}": round(value, 2)
        for (kind, buckets, per_bucket), value in modelled.items()
    }

    # The timed fixture samples a full fill+drain of a smaller cFFS queue.
    def fill_and_drain():
        queue = build_queue("cffs", 1000)
        operations = fill(queue, 1000, 2)
        drain(queue, operations)

    benchmark(fill_and_drain)

    # Shape checks (modelled cycles): both Eiffel queues beat the
    # bucketed-heap baseline at one packet per bucket, the approximate queue
    # is at least as fast as cFFS in that regime (the paper's ~9% advantage),
    # and the gap closes as buckets get deeper.
    assert modelled[("cffs", 10000, 1)] > modelled[("bh", 10000, 1)]
    assert modelled[("approx", 10000, 1)] > modelled[("bh", 10000, 1)]
    assert modelled[("approx", 10000, 1)] >= modelled[("cffs", 10000, 1)]
    gap_shallow = modelled[("approx", 10000, 1)] / modelled[("cffs", 10000, 1)]
    gap_deep = modelled[("approx", 10000, 8)] / modelled[("cffs", 10000, 8)]
    assert gap_deep <= gap_shallow + 0.05
