"""Cross-module integration tests.

These exercise the seams between the packages: compiled policies running on
different backing queues, policies driven through the kernel and BESS
substrates, and the parser-to-scheduler round trip.
"""

import pytest

from repro.core.model import Packet, compile_policy, parse_policy
from repro.core.policies import (
    EiffelPFabricScheduler,
    StartTimeFairQueueingScheduler,
    TimestampPacingScheduler,
)
from repro.core.queues import (
    BucketSpec,
    BucketedHeapQueue,
    CircularApproximateGradientQueue,
    CircularFFSQueue,
)


FIGURE7_TEXT = """
# The Figure 7 hierarchy
root wfq
root -> left   [weight=0.3]
root -> right  [weight=0.7] [rate=10e6] wfq
right -> right_a [weight=0.5]
right -> right_b [weight=0.5] [rate=7e6]
pacing 20e6
"""


class TestParsedPolicyEndToEnd:
    def test_parse_compile_run(self):
        spec = parse_policy(FIGURE7_TEXT, name="figure7")
        spec.flow_to_leaf = {1: "left", 2: "right_a", 3: "right_b"}
        scheduler = compile_policy(spec)
        packets = [
            Packet(flow_id=1 + (i % 3), size_bytes=1500) for i in range(30)
        ]
        for packet in packets:
            scheduler.enqueue(packet, now_ns=0)
        drained = scheduler.dequeue_all_due(now_ns=60_000_000)  # 60 ms
        later = scheduler.dequeue_all_due(now_ns=1_000_000_000)
        assert len(drained) + len(later) == 30
        # The unshaped leaf empties first; the 7 Mbps leaf is the slowest.
        assert any(p.flow_id == 1 for p in drained)


class TestQueueSwapping:
    """Eiffel's point: the same policy runs on any integer queue backend."""

    BACKENDS = {
        "cffs": lambda spec: CircularFFSQueue(spec),
        "bucketed_heap": lambda spec: BucketedHeapQueue(
            BucketSpec(
                num_buckets=spec.num_buckets * 2,
                granularity=spec.granularity,
                base_priority=spec.base_priority,
            )
        ),
    }

    @pytest.mark.parametrize("backend", list(BACKENDS))
    def test_pfabric_behaviour_independent_of_backend(self, backend):
        scheduler = EiffelPFabricScheduler(
            max_remaining=4096,
            buckets=4096,
            queue_factory=self.BACKENDS[backend],
        )
        scheduler.enqueue(Packet(flow_id=1).annotate(remaining_packets=500))
        scheduler.enqueue(Packet(flow_id=2).annotate(remaining_packets=5))
        scheduler.enqueue(Packet(flow_id=3).annotate(remaining_packets=50))
        order = [scheduler.dequeue().flow_id for _ in range(3)]
        assert order == [2, 3, 1]

    def test_pacing_on_approximate_queue(self):
        scheduler = TimestampPacingScheduler(
            horizon_ns=100_000_000,
            num_buckets=400,
            queue_factory=lambda spec: CircularApproximateGradientQueue(
                spec, alpha=16
            ),
        )
        scheduler.set_flow_rate(1, 12e6)  # 1 ms per 1500 B packet
        for _ in range(10):
            scheduler.enqueue(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        released_early = scheduler.dequeue_due(now_ns=2_500_000)
        released_late = scheduler.dequeue_due(now_ns=50_000_000)
        assert 2 <= len(released_early) <= 4
        assert len(released_early) + len(released_late) == 10


class TestSubstrateIntegration:
    def test_sfq_policy_inside_bess_pipeline(self):
        from repro.bess import Pipeline, Sink, Source
        from repro.bess.scheduler_modules import SchedulerModule
        from repro.traffic import RoundRobinAnnotator, SyntheticPacketGenerator

        generator = SyntheticPacketGenerator(
            packet_bytes=1500, batch_size=16, annotator=RoundRobinAnnotator(8)
        )
        module = SchedulerModule(StartTimeFairQueueingScheduler())
        pipeline = Pipeline([Source(generator), module, Sink()])
        report = pipeline.run(batches=20)
        assert report.packets > 0
        per_flow = {}
        sink = pipeline.modules[-1]
        assert sink.packets == report.packets

    def test_eiffel_qdisc_with_injected_approximate_queue(self):
        from repro.core.queues import BucketSpec
        from repro.kernel import EiffelQdisc

        queue = CircularApproximateGradientQueue(
            BucketSpec(num_buckets=500, granularity=100_000), alpha=16
        )
        qdisc = EiffelQdisc(num_buckets=500, horizon_ns=50_000_000, queue=queue)
        qdisc.set_flow_rate(1, 120e6)  # 0.1 ms per packet
        for _ in range(20):
            qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        released = qdisc.dequeue_due(now_ns=1_000_000)  # 1 ms
        rest = qdisc.dequeue_due(now_ns=10_000_000)
        assert 8 <= len(released) <= 13
        assert len(released) + len(rest) == 20

    def test_feature_matrix_consistent_with_netsim_queues(self):
        # Carousel's row says non-work-conserving only: the timing wheel holds
        # a packet until its slot even if the link is idle.  The pFabric port
        # (work-conserving) releases immediately.
        from repro.core.queues import TimingWheel
        from repro.netsim import PFabricPortQueue

        wheel = TimingWheel(num_slots=100, granularity=1000)
        wheel.insert(50_000, "future")
        assert wheel.advance_to(1_000) == []
        port = PFabricPortQueue()
        port.enqueue(Packet(flow_id=1).annotate(remaining_bytes=1000))
        assert port.dequeue() is not None
