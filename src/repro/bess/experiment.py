"""Use Case 2 and 3 experiment drivers (Figures 12, 13 and 15).

Each experiment builds a single-core BESS pipeline — packet generator,
round-robin class annotator, optional per-flow ``Buffer`` batching, the
scheduler module under test, and a sink — runs a fixed number of batches,
and converts the measured cycles-per-packet into the maximum aggregate rate
that one busy-polling core can sustain (capped by the line rate and, for the
Figure 12 bottom panel, by a 5 Gbps aggregate rate limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .module import Source
from .scheduler_modules import (
    BessTcModule,
    HClockEiffelModule,
    HClockHeapModule,
    PFabricEiffelModule,
    PFabricHeapModule,
    SchedulerModule,
)
from ..analysis import Series
from ..core.model.packet import Packet
from ..core.policies import HClockClass
from ..cpu import CpuMeter
from ..traffic import RoundRobinAnnotator, SyntheticPacketGenerator


@dataclass
class BessExperimentConfig:
    """Shared parameters of the userspace experiments."""

    packet_bytes: int = 1500
    batch_size: int = 32
    batches: int = 64
    line_rate_bps: float = 10e9
    cycles_per_second: float = 3.0e9
    buffer_batch_bytes: int = 10_000

    def meter(self) -> CpuMeter:
        """CPU meter for rate conversion."""
        return CpuMeter(self.cycles_per_second)


class _AnnotatorModule(Source):
    """Packet source + round-robin class annotator in one module."""

    name = "generator"

    def __init__(self, num_flows: int, packet_bytes: int, batch_size: int) -> None:
        generator = SyntheticPacketGenerator(
            packet_bytes=packet_bytes,
            batch_size=batch_size,
            annotator=RoundRobinAnnotator(num_flows),
        )
        super().__init__(generator)
        self.num_flows = num_flows

    def process_batch(self, batch, now_ns):
        produced = super().process_batch(batch, now_ns)
        for packet in produced:
            # Annotate pFabric-style remaining size so per-flow ranking has a
            # meaningful input even for synthetic traffic.
            packet.metadata.setdefault(
                "remaining_packets", 1 + (packet.packet_id % 64)
            )
        return produced


def measure_max_rate(
    scheduler_module: SchedulerModule,
    num_flows: int,
    config: BessExperimentConfig,
    rate_limit_bps: Optional[float] = None,
    per_flow_batching: bool = False,
    prefill_per_flow: int = 1,
    measure_packets: int = 256,
) -> float:
    """Measure the max aggregate rate one core sustains for one configuration.

    The pipeline is first brought to the saturated steady state of the
    paper's experiment (every traffic class backlogged — the offered load
    always exceeds one core's capacity), then a fixed number of
    enqueue+dequeue pairs is measured.  The cycles-per-packet observed in
    that state — which is where data-structure size matters — is converted
    into the rate one core can sustain, capped at the line rate and, for the
    Figure 12 bottom panel, the aggregate rate limit.
    """
    from ..cpu import CostModel

    cost = CostModel()
    scheduler_module.attach_cost_model(cost)
    annotator = RoundRobinAnnotator(num_flows)
    generator = SyntheticPacketGenerator(
        packet_bytes=config.packet_bytes, batch_size=1, annotator=annotator
    )

    def make_packet() -> Packet:
        packet = generator.next_batch()[0]
        packet.metadata.setdefault("remaining_packets", 1 + (packet.packet_id % 64))
        return packet

    # 1) Prefill: every traffic class holds packets, as under overload.
    for _ in range(prefill_per_flow):
        for _ in range(num_flows):
            scheduler_module.scheduler.enqueue(make_packet(), 0)
    # 2) Steady state measurement: one enqueue + one dequeue per packet, with
    #    per-flow batching optionally amortising the per-packet lookup.
    cost.reset()
    batch_run = max(
        1,
        config.buffer_batch_bytes // config.packet_bytes if per_flow_batching else 1,
    )
    measured = 0
    virtual_now = 0
    packet_time_ns = int(config.packet_bytes * 8 / config.line_rate_bps * 1e9)
    while measured < measure_packets:
        burst = [make_packet() for _ in range(batch_run)]
        # With per-flow batching all packets of a burst belong to one class.
        if per_flow_batching:
            for packet in burst:
                packet.flow_id = burst[0].flow_id
        scheduler_module.charge("batch_overhead")
        scheduler_module.charge_per_packet(burst[0])
        if not per_flow_batching:
            for packet in burst[1:]:
                scheduler_module.charge_per_packet(packet)
        # The batched admit amortises the scheduler's index maintenance over
        # the burst (a per-flow burst relocates its flow handle only once).
        scheduler_module.scheduler.enqueue_batch(burst, virtual_now)
        for _ in range(len(burst)):
            virtual_now += packet_time_ns
            scheduler_module.scheduler.dequeue(virtual_now)
        scheduler_module.charge_scheduler_work()
        measured += len(burst)
    cycles_per_packet = cost.total_cycles / max(1, measured)
    achievable = config.meter().max_bit_rate(cycles_per_packet, config.packet_bytes)
    achievable = min(achievable, config.line_rate_bps)
    if rate_limit_bps is not None:
        achievable = min(achievable, rate_limit_bps)
    return achievable


def hclock_class_config(num_flows: int) -> Dict[int, HClockClass]:
    """Equal-share hClock classes for ``num_flows`` traffic classes.

    The Figure 12 aggregate rate limit is applied as a cap on the reported
    rate rather than as per-class limit tags: the limit does not change the
    per-packet data-structure cost that the experiment measures, and keeping
    the classes work-conserving keeps the measurement loop in its fast path.
    """
    return {flow_id: HClockClass(share=1.0) for flow_id in range(num_flows)}


#: Factories for the three Figure 12 series.
HCLOCK_FACTORIES: Dict[str, Callable[..., SchedulerModule]] = {
    "eiffel": lambda flows, classes: HClockEiffelModule(flows, classes),
    "hclock": lambda flows, classes: HClockHeapModule(flows, classes),
    "bess_tc": lambda flows, classes: BessTcModule(flows, classes),
}


def run_figure12(
    flow_counts: List[int],
    rate_limit_bps: Optional[float] = None,
    config: BessExperimentConfig = BessExperimentConfig(),
    systems: Optional[List[str]] = None,
) -> Dict[str, Series]:
    """Figure 12: max aggregate rate vs number of flows for the hClock systems."""
    selected = systems or list(HCLOCK_FACTORIES)
    results: Dict[str, Series] = {name: Series(name=name) for name in selected}
    for flows in flow_counts:
        classes = hclock_class_config(flows)
        for name in selected:
            module = HCLOCK_FACTORIES[name](flows, classes)
            rate = measure_max_rate(
                module, flows, config, rate_limit_bps=rate_limit_bps
            )
            results[name].add(flows, rate / 1e6)  # Mbps, as in the paper's axis
    return results


def run_figure13(
    num_flows: int = 5_000,
    packet_sizes: Optional[List[int]] = None,
    config: BessExperimentConfig = BessExperimentConfig(),
) -> Dict[str, Series]:
    """Figure 13: effect of per-flow batching and packet size (hClock vs Eiffel)."""
    sizes = packet_sizes or [60, 1500]
    results: Dict[str, Series] = {}
    for batching in (False, True):
        for name, factory in (("hclock", HCLOCK_FACTORIES["hclock"]),
                              ("eiffel", HCLOCK_FACTORIES["eiffel"])):
            label = f"{name}_{'batching' if batching else 'no_batching'}"
            series = Series(name=label)
            for size in sizes:
                experiment_config = BessExperimentConfig(
                    packet_bytes=size,
                    batch_size=config.batch_size,
                    batches=config.batches,
                    line_rate_bps=config.line_rate_bps,
                    cycles_per_second=config.cycles_per_second,
                    buffer_batch_bytes=config.buffer_batch_bytes,
                )
                module = factory(num_flows, {})
                rate = measure_max_rate(
                    module,
                    num_flows,
                    experiment_config,
                    per_flow_batching=batching,
                )
                series.add(size, rate / 1e6)
            results[label] = series
    return results


def run_figure15(
    flow_counts: List[int],
    config: BessExperimentConfig = BessExperimentConfig(),
) -> Dict[str, Series]:
    """Figure 15: pFabric max rate vs number of flows (Eiffel vs binary heap)."""
    results = {
        "pfabric_eiffel": Series(name="pfabric_eiffel"),
        "pfabric_heap": Series(name="pfabric_heap"),
    }
    for flows in flow_counts:
        for name, factory in (
            ("pfabric_eiffel", PFabricEiffelModule),
            ("pfabric_heap", PFabricHeapModule),
        ):
            module = factory()
            rate = measure_max_rate(module, flows, config)
            results[name].add(flows, rate / 1e6)
    return results


def crossover_flows(series: Series, line_rate_bps: float, tolerance: float = 0.99) -> Optional[int]:
    """Largest flow count at which a series still sustains (nearly) line rate."""
    best: Optional[int] = None
    for flows, rate_mbps in zip(series.x, series.y):
        if rate_mbps * 1e6 >= line_rate_bps * tolerance:
            best = int(flows)
    return best


__all__ = [
    "BessExperimentConfig",
    "crossover_flows",
    "hclock_class_config",
    "measure_max_rate",
    "run_figure12",
    "run_figure13",
    "run_figure15",
]
