"""Flow-size and inter-arrival distributions used by the evaluation workloads.

The pFabric / DCTCP literature evaluates datacenter transports on two
empirical flow-size distributions measured in production clusters:

* **web search** (DCTCP, Alizadeh et al.) — a mix dominated by short request
  /response flows with a heavy tail of multi-megabyte background flows;
* **data mining** (VL2/pFabric) — even heavier tailed: most flows are tiny
  but most *bytes* belong to flows of hundreds of megabytes.

The Figure 19 reproduction drives its simulated leaf-spine fabric with the
web-search distribution, exactly as the paper does.  Both distributions are
encoded as piecewise-linear CDFs (the standard representation shipped with
the pFabric ns-2 scripts) and sampled by inverse-transform sampling.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Piecewise CDF of flow sizes (bytes, cumulative probability) for the DCTCP
#: web-search workload.
WEBSEARCH_SIZE_CDF: List[Tuple[int, float]] = [
    (6_000, 0.15),
    (13_000, 0.20),
    (19_000, 0.30),
    (33_000, 0.40),
    (53_000, 0.53),
    (133_000, 0.60),
    (667_000, 0.70),
    (1_333_000, 0.80),
    (3_333_000, 0.90),
    (6_667_000, 0.97),
    (20_000_000, 1.00),
]

#: Piecewise CDF of flow sizes for the VL2 / data-mining workload.
DATAMINING_SIZE_CDF: List[Tuple[int, float]] = [
    (100, 0.50),
    (1_000, 0.60),
    (10_000, 0.70),
    (30_000, 0.80),
    (100_000, 0.85),
    (1_000_000, 0.90),
    (10_000_000, 0.96),
    (100_000_000, 0.99),
    (1_000_000_000, 1.00),
]


@dataclass(frozen=True)
class EmpiricalCDF:
    """A piecewise-linear empirical CDF over positive values."""

    points: Sequence[Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("CDF needs at least one point")
        previous_value, previous_prob = 0.0, 0.0
        for value, prob in self.points:
            if value <= previous_value and previous_value > 0:
                raise ValueError("CDF values must be strictly increasing")
            if prob < previous_prob:
                raise ValueError("CDF probabilities must be non-decreasing")
            previous_value, previous_prob = value, prob
        if abs(self.points[-1][1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")

    def sample(self, rng: random.Random) -> float:
        """Inverse-transform sample from the CDF."""
        u = rng.random()
        probs = [prob for _value, prob in self.points]
        index = bisect.bisect_left(probs, u)
        index = min(index, len(self.points) - 1)
        hi_value, hi_prob = self.points[index]
        if index == 0:
            lo_value, lo_prob = 0.0, 0.0
        else:
            lo_value, lo_prob = self.points[index - 1]
        if hi_prob <= lo_prob:
            return hi_value
        fraction = (u - lo_prob) / (hi_prob - lo_prob)
        return lo_value + fraction * (hi_value - lo_value)

    def mean(self) -> float:
        """Mean of the piecewise-linear distribution."""
        total = 0.0
        lo_value, lo_prob = 0.0, 0.0
        for hi_value, hi_prob in self.points:
            mass = hi_prob - lo_prob
            total += mass * (lo_value + hi_value) / 2.0
            lo_value, lo_prob = hi_value, hi_prob
        return total

    def quantile(self, q: float) -> float:
        """Value at cumulative probability ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        probs = [prob for _value, prob in self.points]
        index = min(bisect.bisect_left(probs, q), len(self.points) - 1)
        hi_value, hi_prob = self.points[index]
        lo_value, lo_prob = (0.0, 0.0) if index == 0 else self.points[index - 1]
        if hi_prob <= lo_prob:
            return hi_value
        fraction = (q - lo_prob) / (hi_prob - lo_prob)
        return lo_value + fraction * (hi_value - lo_value)


class FlowSizeDistribution:
    """Samples flow sizes (bytes) from a named empirical workload."""

    WORKLOADS = {
        "websearch": WEBSEARCH_SIZE_CDF,
        "datamining": DATAMINING_SIZE_CDF,
    }

    def __init__(self, workload: str = "websearch", seed: Optional[int] = None) -> None:
        try:
            points = self.WORKLOADS[workload]
        except KeyError as exc:
            raise ValueError(
                f"unknown workload {workload!r}; choose from {sorted(self.WORKLOADS)}"
            ) from exc
        self.workload = workload
        self.cdf = EmpiricalCDF(points)
        self.rng = random.Random(seed)

    def sample_bytes(self) -> int:
        """One flow size in bytes."""
        return max(1, int(self.cdf.sample(self.rng)))

    def sample_packets(self, mtu_bytes: int = 1500) -> int:
        """One flow size in MTU-sized packets."""
        return max(1, math.ceil(self.sample_bytes() / mtu_bytes))

    def mean_bytes(self) -> float:
        """Mean flow size of the workload in bytes."""
        return self.cdf.mean()


class PoissonArrivals:
    """Exponential inter-arrival times targeting a given event rate."""

    def __init__(self, rate_per_sec: float, seed: Optional[int] = None) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        self.rate_per_sec = rate_per_sec
        self.rng = random.Random(seed)

    def next_gap_ns(self) -> int:
        """Nanoseconds until the next arrival."""
        return max(1, int(self.rng.expovariate(self.rate_per_sec) * 1e9))

    def arrival_times_ns(self, count: int, start_ns: int = 0) -> List[int]:
        """Absolute arrival times of the next ``count`` events."""
        times = []
        now = start_ns
        for _ in range(count):
            now += self.next_gap_ns()
            times.append(now)
        return times


class ZipfFlowSampler:
    """Samples flow ids with Zipf-distributed popularity.

    Flow ``k`` (0-based) is drawn with probability proportional to
    ``1 / (k + 1) ** skew`` — the classic heavy-head model of datacenter and
    CDN traffic where a handful of elephant flows carry most packets.  The
    sharding benchmarks use this to build the adversarial case for RSS-style
    flow hashing: a uniform hash places the hot flows on whichever shards
    they land on, creating load imbalance that a skew-aware rebalancer must
    repair.

    Seeding contract mirrors :class:`~repro.traffic.generators.FlowWorkload`:
    pass ``seed`` for standalone determinism, ``rng`` to chain off a caller's
    generator, or neither for OS entropy.

    Two interchangeable implementations sit behind the same interface:

    * up to :data:`MATERIALIZE_LIMIT` flows the full CDF is materialised and
      inverse-transform sampling is one bisect — unchanged from the original
      (committed benchmark artifacts replay the exact same sequences);
    * past the limit (million-flow churn universes) nothing proportional to
      ``num_flows`` is ever built.  Only the exact partial sums of the first
      :data:`STREAMING_HEAD` ranks are kept — at Zipf skew that head carries
      almost all the probability mass — and the tail is resolved through the
      Euler–Maclaurin closed form of the generalised harmonic number
      ``H(k) = sum_{i=1..k} i^-s`` (error ``O(k^-s-3)``, far below float
      resolution for the k > 4096 where it is used): construction is O(head)
      and each tail sample is one binary search on k with O(1) evaluations.
    """

    #: Largest universe that still materialises the full CDF eagerly.
    MATERIALIZE_LIMIT = 65_536

    #: Exact-prefix length of the streaming implementation.
    STREAMING_HEAD = 4_096

    def __init__(
        self,
        num_flows: int,
        skew: float = 1.2,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        if seed is not None and rng is not None:
            raise ValueError("pass either seed or rng, not both")
        self.num_flows = num_flows
        self.skew = skew
        self.rng = rng if rng is not None else random.Random(seed)
        if num_flows <= self.MATERIALIZE_LIMIT:
            weights = [1.0 / (rank + 1) ** skew for rank in range(num_flows)]
            total = sum(weights)
            cumulative = 0.0
            self._cdf: List[float] = []
            for weight in weights:
                cumulative += weight / total
                self._cdf.append(cumulative)
            self._cdf[-1] = 1.0
            self._head_cum: List[float] = []
            self._total = total
        else:
            # Streaming: exact unnormalised prefix sums of the head ranks,
            # Euler–Maclaurin for everything beyond.
            self._cdf = []
            head = self.STREAMING_HEAD
            cumulative = 0.0
            self._head_cum = []
            for rank in range(head):
                cumulative += 1.0 / (rank + 1) ** skew
                self._head_cum.append(cumulative)
            self._total = cumulative + self._tail_sum(head + 1, num_flows)

    @property
    def materialized(self) -> bool:
        """True when the full CDF is held in memory (small universes)."""
        return bool(self._cdf)

    def _tail_sum(self, a: int, b: int) -> float:
        """``sum_{i=a}^{b} i**-s`` by Euler–Maclaurin (a > head, so smooth)."""
        if b < a:
            return 0.0
        s = self.skew
        if abs(1.0 - s) < 1e-12:
            integral = math.log(b / a)
        else:
            integral = (b ** (1.0 - s) - a ** (1.0 - s)) / (1.0 - s)
        endpoints = (a ** -s + b ** -s) / 2.0
        derivative = s * (a ** (-s - 1.0) - b ** (-s - 1.0)) / 12.0
        return integral + endpoints + derivative

    def _harmonic(self, k: int) -> float:
        """``H(k) = sum_{i=1..k} i**-s`` — exact head, closed-form tail."""
        head_cum = self._head_cum
        if k <= len(head_cum):
            return head_cum[k - 1] if k else 0.0
        return head_cum[-1] + self._tail_sum(len(head_cum) + 1, k)

    def _rank_for(self, target: float) -> int:
        """Smallest 0-based rank ``r`` with unnormalised ``H(r+1) >= target``."""
        head_cum = self._head_cum
        index = bisect.bisect_left(head_cum, target)
        if index < len(head_cum):
            return index
        lo, hi = len(head_cum) + 1, self.num_flows  # 1-based k bracket
        while lo < hi:
            mid = (lo + hi) // 2
            if self._harmonic(mid) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo - 1

    def sample_flow(self) -> int:
        """One flow id in ``[0, num_flows)``, hot flows first."""
        if self._cdf:
            return min(
                bisect.bisect_left(self._cdf, self.rng.random()), self.num_flows - 1
            )
        target = self.rng.random() * self._total
        return min(self._rank_for(target), self.num_flows - 1)

    def sample_flows(self, count: int) -> List[int]:
        """A sequence of ``count`` flow ids."""
        return [self.sample_flow() for _ in range(count)]

    def probability(self, flow_id: int) -> float:
        """Probability mass of ``flow_id``."""
        if not 0 <= flow_id < self.num_flows:
            raise ValueError("flow_id out of range")
        if self._cdf:
            lo = self._cdf[flow_id - 1] if flow_id else 0.0
            return self._cdf[flow_id] - lo
        return (flow_id + 1) ** -self.skew / self._total


def load_for_fabric(
    target_load: float,
    link_bps: float,
    num_hosts: int,
    mean_flow_bytes: float,
) -> float:
    """Flow arrival rate (flows/sec, fabric-wide) for a target edge load.

    The pFabric evaluation sweeps "load" from 0.1 to 0.8 of the edge link
    capacity; given the mean flow size this converts to a Poisson flow
    arrival rate.
    """
    if not 0 < target_load <= 1.0:
        raise ValueError("target_load must be in (0, 1]")
    if link_bps <= 0 or num_hosts <= 0 or mean_flow_bytes <= 0:
        raise ValueError("link_bps, num_hosts and mean_flow_bytes must be positive")
    bytes_per_second = target_load * link_bps / 8.0 * num_hosts
    return bytes_per_second / mean_flow_bytes


__all__ = [
    "DATAMINING_SIZE_CDF",
    "ZipfFlowSampler",
    "EmpiricalCDF",
    "FlowSizeDistribution",
    "PoissonArrivals",
    "WEBSEARCH_SIZE_CDF",
    "load_for_fabric",
]
