"""Integration adapters: run existing substrates sharded.

Two adapters let the rest of the codebase use the sharding layer without
learning new interfaces:

* :class:`ShardedPortQueue` — a netsim :class:`~repro.netsim.elements.PortQueue`
  composed of per-shard sub-queues with RSS-style flow classification.  A
  multi-queue NIC port is exactly ``Link(queue=ShardedPortQueue(...))``: the
  link's burst pull then services the shard rings round-robin, as a NIC TX
  scheduler services its hardware queues.
* :class:`MultiQueueQdisc` — the kernel layer's ``mq`` analogue: a classful
  root qdisc that hashes each packet to one of N child qdiscs (any existing
  :class:`~repro.kernel.qdisc.Qdisc`), drains children round-robin under a
  shared budget, and reports the earliest child deadline as its own.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .sharder import FlowSharder
from ..core.model.packet import Packet
from ..kernel.qdisc import Qdisc
from ..netsim.elements import PortQueue


class ShardedPortQueue(PortQueue):
    """A multi-queue switch port: N sub-queues behind one PortQueue facade.

    Args:
        num_shards: sub-queue (hardware queue) count.
        queue_factory: builds each sub-queue, e.g. ``lambda shard:
            DropTailEcnQueue(capacity_packets=64)``.
        sharder: flow classifier; defaults to RSS-style hashing.

    ``capacity_packets`` of the facade is the sum over sub-queues; ``drops``
    and ``enqueued`` counters aggregate the per-shard events observed through
    this adapter.  Dequeue services the sub-queues round-robin starting after
    the last-served shard, which is how NIC round-robin TX arbitration
    interleaves its rings.
    """

    def __init__(
        self,
        num_shards: int,
        queue_factory: Callable[[int], PortQueue],
        sharder: Optional[FlowSharder] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.shards: List[PortQueue] = [queue_factory(shard) for shard in range(num_shards)]
        super().__init__(sum(queue.capacity_packets for queue in self.shards))
        self.num_shards = num_shards
        self.sharder = sharder or FlowSharder(num_shards)
        self._next_rr = 0

    def shard_for(self, packet: Packet) -> int:
        """Sub-queue index the packet classifies to."""
        return self.sharder.shard_for(packet.flow_id)

    def enqueue(self, packet: Packet) -> bool:
        accepted = self.shards[self.shard_for(packet)].enqueue(packet)
        if accepted:
            self.enqueued += 1
        else:
            self.drops += 1
        return accepted

    def enqueue_batch(self, packets: List[Packet]) -> int:
        # Group per shard so each sub-queue sees one burst (its own batched
        # admission path), preserving arrival order within every shard.
        by_shard: dict[int, List[Packet]] = {}
        for packet in packets:
            by_shard.setdefault(self.shard_for(packet), []).append(packet)
        accepted = 0
        for shard, group in by_shard.items():
            taken = self.shards[shard].enqueue_batch(group)
            accepted += taken
            self.drops += len(group) - taken
        self.enqueued += accepted
        return accepted

    def dequeue(self) -> Optional[Packet]:
        for offset in range(self.num_shards):
            shard = (self._next_rr + offset) % self.num_shards
            packet = self.shards[shard].dequeue()
            if packet is not None:
                self._next_rr = (shard + 1) % self.num_shards
                return packet
        return None

    def dequeue_batch(self, n: int) -> List[Packet]:
        """One NIC pull: round-robin bursts over the non-empty sub-queues."""
        batch: List[Packet] = []
        while len(batch) < n:
            start = self._next_rr
            progressed = False
            for offset in range(self.num_shards):
                shard = (start + offset) % self.num_shards
                quota = max(1, (n - len(batch)) // self.num_shards)
                pulled = self.shards[shard].dequeue_batch(min(quota, n - len(batch)))
                if pulled:
                    batch.extend(pulled)
                    self._next_rr = (shard + 1) % self.num_shards
                    progressed = True
                if len(batch) >= n:
                    break
            if not progressed:
                break
        return batch

    def __len__(self) -> int:
        return sum(len(queue) for queue in self.shards)


class MultiQueueQdisc(Qdisc):
    """``mq``-style root qdisc: per-shard children behind one qdisc surface.

    Args:
        num_shards: child (virtual transmit queue / CPU) count.
        child_factory: builds child ``shard`` — any existing qdisc works,
            e.g. ``lambda shard: EiffelQdisc(default_rate_bps=1e9)``.
        sharder: flow classifier; defaults to RSS-style hashing.

    The root performs no queueing of its own: packets hash straight into a
    child (as skbs hash to a per-CPU transmit queue), ``dequeue_due`` drains
    children round-robin under the shared budget, and the watchdog deadline
    is the minimum over children.  Children charge their work to their own
    cost accounts (the per-core split that is the point of ``mq``), and the
    root mirrors every child delta into its own system/softirq accounts so
    drivers that sample only the root — ``KernelSimulation``'s
    ``IntervalSample`` — see the whole machine; :meth:`max_child_cycles`
    exposes the bottleneck-core view.
    """

    name = "mq"

    def __init__(
        self,
        num_shards: int,
        child_factory: Callable[[int], Qdisc],
        sharder: Optional[FlowSharder] = None,
        timer_granularity_ns: int = 1,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        super().__init__(timer_granularity_ns=timer_granularity_ns)
        self.num_shards = num_shards
        self.children: List[Qdisc] = [child_factory(shard) for shard in range(num_shards)]
        self.sharder = sharder or FlowSharder(num_shards)
        self._next_rr = 0
        self._child_cost_snapshots = [(0.0, 0.0)] * num_shards

    def _absorb_child_costs(self, shard: int) -> None:
        """Mirror the child's cost delta into the root's accounts."""
        child = self.children[shard]
        system_prev, softirq_prev = self._child_cost_snapshots[shard]
        system_now = child.system_cost.total_cycles
        softirq_now = child.softirq_cost.total_cycles
        if system_now > system_prev:
            self.system_cost.account.charge("child_qdisc", system_now - system_prev)
        if softirq_now > softirq_prev:
            self.softirq_cost.account.charge("child_qdisc", softirq_now - softirq_prev)
        self._child_cost_snapshots[shard] = (system_now, softirq_now)

    # -- qdisc interface ---------------------------------------------------

    def enqueue_packet(self, packet: Packet, now_ns: int) -> None:
        shard = self.sharder.shard_for(packet.flow_id)
        packet.metadata["mq_shard"] = shard
        self.children[shard].enqueue_packet(packet, now_ns)
        self._absorb_child_costs(shard)

    def dequeue_due(self, now_ns: int, budget: int = 1 << 30) -> List[Packet]:
        released: List[Packet] = []
        start = self._next_rr
        for offset in range(self.num_shards):
            if len(released) >= budget:
                break
            shard = (start + offset) % self.num_shards
            child_released = self.children[shard].dequeue_due(
                now_ns, budget - len(released)
            )
            self._absorb_child_costs(shard)
            if child_released:
                released.extend(child_released)
                self._next_rr = (shard + 1) % self.num_shards
        self.stats.dequeued += len(released)
        return released

    def soonest_deadline_ns(self, now_ns: int) -> Optional[int]:
        deadlines = [
            deadline
            for deadline in (
                child.soonest_deadline_ns(now_ns) for child in self.children
            )
            if deadline is not None
        ]
        return min(deadlines) if deadlines else None

    # -- aggregated accounting ---------------------------------------------

    @property
    def backlog(self) -> int:
        """Packets queued across every child."""
        return sum(child.backlog for child in self.children)

    def max_child_cycles(self) -> float:
        """Cycles of the busiest child (the bottleneck-core view).

        The root's own accounts already include every child's work (mirrored
        delta by delta), so the whole-machine view is the inherited
        :meth:`~repro.kernel.qdisc.Qdisc.total_cycles`.
        """
        return max(child.total_cycles() for child in self.children)

    def reset_costs(self) -> None:
        """Zero the root's and every child's cost accounts."""
        super().reset_costs()
        for child in self.children:
            child.reset_costs()
        self._child_cost_snapshots = [(0.0, 0.0)] * self.num_shards


__all__ = ["MultiQueueQdisc", "ShardedPortQueue"]
