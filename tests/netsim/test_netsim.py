"""Unit and integration tests for the network simulator (Figure 19 substrate)."""

import pytest

from repro.core.model import Packet
from repro.netsim import (
    DropTailEcnQueue,
    FabricConfig,
    FabricExperimentConfig,
    LeafSpineFabric,
    PFabricPortQueue,
    Simulator,
    approx_pfabric_queue_factory,
    run_fabric_experiment,
)


class TestSimulator:
    def test_event_ordering(self):
        simulator = Simulator()
        order = []
        simulator.schedule(50, lambda: order.append("b"))
        simulator.schedule(10, lambda: order.append("a"))
        simulator.schedule(50, lambda: order.append("c"))
        simulator.run()
        assert order == ["a", "b", "c"]
        assert simulator.now_ns == 50

    def test_until_horizon(self):
        simulator = Simulator()
        hits = []
        simulator.schedule(10, lambda: hits.append(1))
        simulator.schedule(100, lambda: hits.append(2))
        simulator.run(until_ns=50)
        assert hits == [1]
        assert simulator.pending_events == 1

    def test_cannot_schedule_in_past(self):
        simulator = Simulator()
        simulator.schedule(10, lambda: simulator.schedule_at(5, lambda: None))
        with pytest.raises(ValueError):
            simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule(-1, lambda: None)


class TestPortQueues:
    def test_droptail_marks_ecn_above_threshold(self):
        queue = DropTailEcnQueue(capacity_packets=10, ecn_threshold=2)
        packets = [Packet(flow_id=1) for _ in range(4)]
        for packet in packets:
            queue.enqueue(packet)
        assert not packets[0].metadata.get("ecn")
        assert packets[3].metadata.get("ecn")

    def test_droptail_drops_when_full(self):
        queue = DropTailEcnQueue(capacity_packets=2)
        assert queue.enqueue(Packet(flow_id=1))
        assert queue.enqueue(Packet(flow_id=1))
        assert not queue.enqueue(Packet(flow_id=1))
        assert queue.drops == 1

    def test_pfabric_serves_smallest_remaining_first(self):
        queue = PFabricPortQueue(capacity_packets=10)
        big = Packet(flow_id=1).annotate(remaining_bytes=1_000_000)
        small = Packet(flow_id=2).annotate(remaining_bytes=3_000)
        queue.enqueue(big)
        queue.enqueue(small)
        assert queue.dequeue() is small
        assert queue.dequeue() is big
        assert queue.dequeue() is None

    def test_pfabric_priority_dropping_evicts_largest(self):
        queue = PFabricPortQueue(capacity_packets=2)
        elephant = Packet(flow_id=1).annotate(remaining_bytes=9_000_000)
        medium = Packet(flow_id=2).annotate(remaining_bytes=60_000)
        mouse = Packet(flow_id=3).annotate(remaining_bytes=1_500)
        queue.enqueue(elephant)
        queue.enqueue(medium)
        assert queue.enqueue(mouse)  # evicts the elephant
        assert queue.drops == 1
        drained = [queue.dequeue(), queue.dequeue()]
        assert elephant not in drained
        assert mouse in drained and medium in drained

    def test_pfabric_rejects_arrival_larger_than_worst(self):
        queue = PFabricPortQueue(capacity_packets=1)
        queue.enqueue(Packet(flow_id=1).annotate(remaining_bytes=1_500))
        assert not queue.enqueue(Packet(flow_id=2).annotate(remaining_bytes=9_000_000))
        assert len(queue) == 1

    def test_pfabric_approx_variant_behaves(self):
        queue = PFabricPortQueue(
            capacity_packets=8, queue_factory=approx_pfabric_queue_factory
        )
        for remaining in (1_000_000, 3_000, 300_000):
            queue.enqueue(Packet(flow_id=1).annotate(remaining_bytes=remaining))
        drained = []
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            drained.append(packet.metadata["remaining_bytes"])
        assert sorted(drained) == [3_000, 300_000, 1_000_000]


class TestFabric:
    def test_leaf_spine_wiring(self):
        config = FabricConfig(num_leaves=2, num_spines=2, hosts_per_leaf=2)
        fabric = LeafSpineFabric(Simulator(), config, DropTailEcnQueue)
        assert len(fabric.hosts) == 4
        assert len(fabric.leaves) == 2
        # Each leaf connects to its hosts and every spine.
        assert len(fabric.leaves[0].links) == 2 + 2
        assert len(fabric.hosts[0].links) == 1

    def test_packet_crosses_fabric(self):
        simulator = Simulator()
        config = FabricConfig(num_leaves=2, num_spines=1, hosts_per_leaf=2)
        fabric = LeafSpineFabric(simulator, config, DropTailEcnQueue)
        received = []
        fabric.host(3).register_receiver(received.append)
        packet = Packet(flow_id=1, size_bytes=1500)
        packet.metadata.update({"dst": 3, "src": 0})
        fabric.host(0).uplink().send(packet)
        simulator.run()
        assert received and received[0] is packet

    def test_base_rtt_positive(self):
        config = FabricConfig()
        assert 0 < config.base_rtt_seconds() < 1e-3


class TestFabricExperiment:
    @pytest.fixture(scope="class")
    def small_config(self):
        return FabricExperimentConfig(
            fabric=FabricConfig(num_leaves=2, num_spines=2, hosts_per_leaf=2),
            num_flows=40,
            seed=3,
        )

    def test_all_flows_complete(self, small_config):
        result = run_fabric_experiment("pfabric", 0.4, small_config)
        assert result.completion_rate() == pytest.approx(1.0)

    def test_pfabric_beats_dctcp_for_small_flows(self, small_config):
        dctcp = run_fabric_experiment("dctcp", 0.6, small_config)
        pfabric = run_fabric_experiment("pfabric", 0.6, small_config)
        assert pfabric.small_flow_avg() < dctcp.small_flow_avg()

    def test_approximation_has_minimal_effect(self, small_config):
        exact = run_fabric_experiment("pfabric", 0.6, small_config)
        approx = run_fabric_experiment("pfabric_approx", 0.6, small_config)
        # The Figure 19 claim: swapping the switch priority queue for the
        # approximate queue leaves FCTs essentially unchanged.
        assert approx.small_flow_avg() == pytest.approx(
            exact.small_flow_avg(), rel=0.5
        )

    def test_unknown_scheme_rejected(self, small_config):
        with pytest.raises(ValueError):
            run_fabric_experiment("tcp-reno", 0.5, small_config)
