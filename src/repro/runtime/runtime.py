"""The sharded multi-core scheduling runtime driver.

:class:`ShardedRuntime` multiplexes N :class:`~repro.runtime.worker.ShardWorker`
loops onto one :class:`~repro.netsim.simulator.Simulator` clock, the way a
multi-core scheduler runs one worker loop per CPU against shared wall time:

* **ingress** (:meth:`submit` / :meth:`submit_batch`) routes each packet to a
  shard via the :class:`~repro.runtime.sharder.FlowSharder` and posts it into
  that shard's batched SPSC mailbox; with ``ingress_cores=N`` the submission
  instead lands in the RX ring of one of N asynchronous
  :class:`~repro.runtime.ingress.IngressCore`\\ s (flows spread over cores by
  an RSS-style hash with its own seed), which classify and hand off in
  batches on their own tick cadence, charge their own cycle accounts, pause
  on mailbox watermarks (backpressure) and optionally run admission control
  — see :mod:`repro.runtime.ingress`;
* each shard **ticks** once per scheduling quantum — one batched mailbox
  drain + stamp + ``enqueue_batch``, then one batched ``extract_due`` — and
  re-programs its own wake-up timer (a cancellable simulator event) for the
  next quantum, or jumps ahead to its soonest deadline when the queue is
  paced far into the future;
* a periodic **rebalancing** sweep (optional) asks the skew-aware
  :class:`~repro.runtime.sharder.ShardRebalancer` for hot-flow migrations;
* **work stealing** (optional): a shard that goes idle parks a bounded
  :class:`~repro.runtime.stealing.StealRequest` at the busiest sibling; at
  that victim's next safe point the driver hands the thief a
  :class:`~repro.runtime.stealing.FlowLease` — the victim's imminent due
  window, flow ownership and pacing state included — and the thief releases
  it through its own paced drain.  Rebalancing splits the *flow population*
  across cores; stealing splits a single elephant flow *in time*, which is
  the one imbalance migration cannot repair.

Per-flow FIFO under migration and stealing
------------------------------------------

Migrating a flow while it still has packets inside its old shard would let
the new shard transmit newer packets first.  The runtime therefore routes on
*residency*, not placement: while a flow has in-flight packets (mailbox or
queue) its packets keep following them to the same shard; only once the flow
fully drains does the sharder's (possibly re-pinned) placement take effect.
Migration is thus applied lazily at the first safe moment — the same reason
kernel ``mq``/RPS only re-steer a flow on an empty queue (out-of-order
avoidance), and the property tests assert exactly this invariant.

Work stealing threads the same needle with explicit ownership leases: the
stolen window is a stamp-ordered prefix of each touched flow, the victim
defers its own drains and stamping of those flows until the lease returns
(right after the thief releases the last stolen packet), and the sharder's
ownership view keeps routing and the rebalancer pointed at the victim for
the lease's whole lifetime.  The shard's deadline sleep stays steal-aware
throughout: an arriving lease re-programs the sleeping thief's tick timer
through :meth:`ShardedRuntime._wake_shard`, exactly like fresh ingress.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .backend import (
    ExecutionBackend,
    ShardResult,
    SimulatedBackend,
    WorkerSpec,
    resolve_backend,
)
from .faults import FaultPlan, FaultStats
from .flowstate import FlowTable
from .ingress import IngressCore, IngressTelemetry, make_admission_factory
from .mailbox import MailboxStats
from .observability import FlightRecorder, GaugeValue, LogHistogram, MetricsTimeline
from .sharder import FlowSharder, ShardRebalancer
from .stealing import FlowLease, StealChannel, StealRequest, StealStats, StealTuner
from .worker import QueueFactory, ShardWorker, ShardWorkerStats
from ..core.model.packet import Packet
from ..core.queues import QueueStats
from ..netsim.simulator import EventHandle, Simulator


@dataclass
class _RetiredShard:
    """Final counters of a crashed worker incarnation, folded into telemetry.

    A crash-restart replaces the worker object, but the work its dead
    incarnation already did must stay visible — per-shard telemetry rows
    merge these snapshots with the live worker's counters so ingested /
    transmitted / cycles survive any number of restarts.
    """

    stats: ShardWorkerStats
    queue_stats: QueueStats
    steals: StealStats
    cycles: float
    mailbox_wait: Optional[LogHistogram] = None
    queue_wait: Optional[LogHistogram] = None


@dataclass
class ShardTelemetry:
    """Telemetry of one shard, as collected by :meth:`ShardedRuntime.telemetry`."""

    shard_id: int
    ingested: int
    transmitted: int
    ticks: int
    idle_ticks: int
    backlog_peak: int
    cycles: float
    queue_stats: QueueStats
    mailbox: MailboxStats
    steals: StealStats = field(default_factory=StealStats)

    def as_dict(self) -> dict:
        """JSON-friendly snapshot."""
        return {
            "shard_id": self.shard_id,
            "ingested": self.ingested,
            "transmitted": self.transmitted,
            "ticks": self.ticks,
            "idle_ticks": self.idle_ticks,
            "backlog_peak": self.backlog_peak,
            "cycles": self.cycles,
            "queue_stats": self.queue_stats.as_dict(),
            "mailbox": self.mailbox.as_dict(),
            "steals": self.steals.as_dict(),
        }


@dataclass
class RuntimeTelemetry:
    """Runtime-level roll-up of every shard's accounting.

    ``max_shard_cycles`` is the modelled bottleneck core: on real hardware
    every shard runs concurrently, so aggregate throughput is limited by the
    busiest core, and that is the number the scaling benchmark converts into
    aggregate ops/sec.
    """

    shards: List[ShardTelemetry]
    queue_stats: QueueStats
    total_cycles: float
    max_shard_cycles: float
    transmitted: int
    ingress_drops: int
    migrations_applied: int
    rebalance_rounds: int
    steals_attempted: int = 0
    steals_succeeded: int = 0
    packets_stolen: int = 0
    steal_cycles: float = 0.0
    ingress: List[IngressTelemetry] = field(default_factory=list)
    max_ingress_cycles: float = 0.0
    #: Packets lost at the RX stage: admission-policy drops, plus bare ring
    #: overflow when backpressure is disabled with no policy armed.  With
    #: backpressure on and ``admission=None`` this is zero by construction.
    admission_drops: int = 0
    #: Flow-state engine gauges: live flows / slot high watermark / pacing
    #: entries across shards, measured bytes of every flow-state table
    #: (runtime ownership + sharder placement + per-shard pacing columns),
    #: and the incremental-GC counters.  See :mod:`repro.runtime.flowstate`.
    flow_state: dict = field(default_factory=dict)
    #: Fault-injection and recovery accounting: the
    #: :class:`~repro.runtime.faults.FaultStats` counters plus the
    #: ``recovery_log`` of individual recovery events.  All zeros / empty
    #: when no fault plan was armed.
    faults: dict = field(default_factory=dict)
    #: Per-seam latency histograms, merged across shards / RX cores:
    #: ``rx_sojourn`` whenever ingress cores ran, and ``mailbox_wait`` /
    #: ``queue_sojourn`` / ``e2e`` when the runtime was built with
    #: ``latency_histograms=True``.  See :mod:`repro.runtime.observability`.
    latency: Dict[str, LogHistogram] = field(default_factory=dict)

    @property
    def imbalance(self) -> float:
        """Max-to-mean ratio of per-shard transmitted packets (1.0 = even)."""
        counts = [shard.transmitted for shard in self.shards]
        total = sum(counts)
        if total == 0:
            return 1.0
        return max(counts) / (total / len(counts))

    @property
    def bottleneck_cycles(self) -> float:
        """Busiest core across *both* layers (shards and ingress cores).

        On real hardware every ingress core runs concurrently with every
        shard, so the end-to-end modelled throughput is limited by whichever
        single core — RX or scheduling — consumed the most cycles.  This is
        the number the ingress e2e benchmark converts into aggregate
        ops/sec; with no ingress cores it degrades to ``max_shard_cycles``.
        """
        return max(self.max_shard_cycles, self.max_ingress_cycles)

    def as_dict(self) -> dict:
        """JSON-friendly snapshot."""
        return {
            "shards": [shard.as_dict() for shard in self.shards],
            "queue_stats": self.queue_stats.as_dict(),
            "total_cycles": self.total_cycles,
            "max_shard_cycles": self.max_shard_cycles,
            "transmitted": self.transmitted,
            "ingress_drops": self.ingress_drops,
            "migrations_applied": self.migrations_applied,
            "rebalance_rounds": self.rebalance_rounds,
            "steals_attempted": self.steals_attempted,
            "steals_succeeded": self.steals_succeeded,
            "packets_stolen": self.packets_stolen,
            "steal_cycles": self.steal_cycles,
            "imbalance": self.imbalance,
            "ingress": [core.as_dict() for core in self.ingress],
            "max_ingress_cycles": self.max_ingress_cycles,
            "bottleneck_cycles": self.bottleneck_cycles,
            "admission_drops": self.admission_drops,
            "flow_state": dict(self.flow_state),
            "faults": dict(self.faults),
            "latency": {seam: hist.as_dict() for seam, hist in self.latency.items()},
        }


class ShardedRuntime:
    """N shard workers multiplexed onto one simulated clock.

    Args:
        num_shards: worker (virtual core) count.
        simulator: shared clock; a private one is created when omitted.
        sharder: flow placement; defaults to RSS-style hashing.
        quantum_ns: scheduling quantum — each active shard runs one batched
            ingest + drain per quantum.
        batch_per_quantum: drain budget per tick (the "one batch per
            quantum" of the worker loop); the mailbox is drained fully
            unless ``ingest_per_quantum`` bounds it.
        ingest_per_quantum: cap on packets a shard stamps per tick (``None``
            drains the whole mailbox, the historical behaviour).  Bounding
            it models the real per-quantum budget of a scheduling core, and
            is what lets mailbox occupancy build under overload so the
            watermark backpressure has something to push against.  Defaults
            to ``batch_per_quantum`` when ingress cores are configured with
            bounded mailboxes.
        shard_backlog_limit: the shard queue's ``txqueuelen``: while a
            shard's timestamp queue holds this many packets it stops
            ingesting, leaving arrivals in its mailbox — which is the link
            that propagates overload upstream (mailbox fills → watermark
            pauses the RX pull → the RX ring absorbs or the admission
            policy drops).  ``None`` (default) leaves the queue unbounded,
            the historical behaviour.
        flow_rates / default_rate_bps: per-flow pacing configuration handed
            to every shard (flows are disjoint across shards, so sharing the
            mapping is safe).
        horizon_ns / num_buckets / queue_factory / mailbox_capacity: per
            shard worker configuration (see :class:`ShardWorker`).
        rebalancer: optional skew-aware rebalancer; requires
            ``rebalance_interval_ns``.
        rebalance_interval_ns: period of the rebalancing sweep; when set
            without an explicit ``rebalancer`` a default one is built.
        steal_enabled: turn on cross-shard work stealing — an idle shard
            parks a steal request at the busiest sibling and takes over its
            next due window under an order-preserving flow lease.
        steal_batch: largest number of packets one lease may carry.
        steal_horizon_ns: how far ahead of "now" a window counts as
            stealable (defaults to one quantum: the batch the victim would
            have released at its very next tick).
        steal_min_backlog: smallest victim backlog worth stealing from —
            below this the handoff overhead outweighs the relief, and under
            balanced load it keeps shards from churning work back and forth.
        steal_channel_capacity: bound on each shard's parked steal requests
            (the bounded cross-core request ring; overflow is dropped and
            counted, never blocked on).
        steal_adaptive: derive the effective steal batch/horizon from an
            EWMA of observed lease sizes (:class:`StealTuner`); the
            configured ``steal_batch`` / ``steal_horizon_ns`` become
            ceilings the tuner shrinks toward what victims actually grant.
        ingress_cores: number of asynchronous RX cores in front of the
            shards (0 keeps the historical synchronous ingress).  With
            ingress cores, :meth:`submit` / :meth:`submit_batch` land in a
            per-core RX ring (flows spread by an RSS-style hash with its
            own seed) and the cores classify + hand off on their own tick
            cadence, charging their own cycle accounts.
        admission: admission policy for overloaded ingress — ``None`` (pure
            backpressure: the RX ring grows, nothing is ever dropped), one
            of ``"tail_drop"`` / ``"fair_drop"`` / ``"codel"``, or a
            zero-argument factory returning a fresh
            :class:`~repro.runtime.ingress.AdmissionPolicy` per core.
        rx_ring_capacity / rx_burst: nominal RX ring size and per-tick pull
            budget of each ingress core.
        ingress_quantum_ns: ingress tick period (defaults to one quarter of
            ``quantum_ns``, so several NIC pulls land per scheduling
            quantum, as NAPI polls outpace scheduler ticks).
        ingress_backpressure: honour mailbox watermarks (pause the pull and
            grow the ring); off, an unarmed ring tail-drops at capacity.
        ingress_hash_seed: seed of the RSS lane hash (flow -> RX core);
            defaults to the decorrelated constant
            :data:`~repro.runtime.sharder.INGRESS_HASH_SEED`.  The scenario
            compiler threads a spec-level seed through here so one seed pins
            every random stream of an experiment.
        mailbox_high_watermark / mailbox_low_watermark: backpressure
            thresholds of every shard mailbox; default to ``capacity`` and
            ``capacity // 2`` when ingress cores are configured with a
            bounded ``mailbox_capacity``.
        on_transmit: callback ``(packet, now_ns)`` run for every released
            packet (the NIC side).
        record_transmits: keep ``(now_ns, packet)`` in :attr:`transmit_log`
            (tests and small examples; benchmarks switch it off).
        gc_interval_packets: sweep idle per-flow state (flow homes, sharder
            pins/sticky entries, expired shard pacing entries) every this
            many transmitted packets, so memory scales with *concurrent*
            flows rather than every flow ever seen — the FQ qdisc's flow-GC
            pattern.  ``None`` disables the sweep.
        gc_sweep_limit: bound on flow-state slots each GC sweep examines
            (``None``, the default, scans the whole table in one sweep —
            the historical global scan).  With a limit the sweep becomes
            incremental: a persistent cursor walks the slot space a bounded
            chunk per trigger and wraps, so GC cost per trigger is O(limit)
            regardless of table size — the same candidates are reclaimed,
            just spread over successive sweeps (the churn-storm property
            suite asserts the two converge to the same live set).
        backend: who executes the shard loops — ``"simulated"`` (the
            default: every shard multiplexed onto one simulator clock,
            bit-identical to the historical behaviour), ``"process"`` (one
            OS process per shard over shared-memory rings), ``"thread"``
            (one thread per shard), or a ready
            :class:`~repro.runtime.backend.ExecutionBackend` instance.
            Parallel backends take timed workloads through
            :meth:`submit_at` and require the *statically decomposable*
            configuration: no stealing, no rebalancer, no ingress cores and
            no ``on_transmit`` callback (each shard must be a pure function
            of its own arrival schedule); the flow-state GC sweep is
            auto-disabled for the same reason (its trigger is a
            runtime-global packet count).  See :mod:`repro.runtime.backend`
            for why per-shard replay is then exact.
        fault_plan: optional :class:`~repro.runtime.faults.FaultPlan` arming
            deterministic faults at the runtime's seams (shard crash/stall,
            mailbox handoff drops, ingress ring wedge) and the supervision
            machinery that recovers from them.  ``None`` (the default) keeps
            every hook on a single ``is not None`` guard — the clean path's
            modelled cycle accounts are byte-identical with no plan armed.
            Simulated backend only.
        lease_deadline_ns: watchdog deadline on outstanding
            :class:`~repro.runtime.stealing.FlowLease`\\ s — a thief that has
            not released a stolen window within this bound is presumed hung
            and crash-restarted by the supervisor, which reclaims the lease
            (the victim resumes its deferred flows; the thief's private
            queue, including the unfinished stolen packets, is the loss).
            ``None`` (the default) trusts thieves forever, the historical
            behaviour.
        supervise_interval_ns: period of the supervision sweep while any
            fault or open-lease deadline is being watched (defaults to two
            quanta — the detection latency of a crash).  The sweep only
            runs while something needs watching; an idle clean runtime
            schedules no supervision events at all.
        latency_histograms: arm the per-seam latency histograms — mailbox
            wait (push → ingest), shard-queue sojourn (stamp → drain) and
            end-to-end submit → transmit, each a
            :class:`~repro.runtime.observability.LogHistogram` merged into
            ``telemetry().latency`` (RX-ring sojourn is always measured on
            the ingress cores).  Works on every backend: per-shard
            histograms cross the process boundary inside each
            :class:`~repro.runtime.backend.ShardResult` and merge like
            counter snapshots.  No modelled cycles are charged either way;
            disarmed (the default) the hot loops are byte-identical.
        tracer: optional :class:`~repro.runtime.observability.FlightRecorder`
            capturing virtual-clock events at the runtime's seams (ingress
            pull, mailbox handoff, drain batch, lease grant/return,
            rebalance migration, fault injection/recovery).  Same contract
            as ``fault_plan``: ``None`` by default, every seam guards on one
            ``is not None`` check, simulated backend only.
        metrics_timeline: optional
            :class:`~repro.runtime.observability.MetricsTimeline` sampling
            runtime gauges (backlogs, ring depth, cycle accounts, live flow
            slots, lease state) on its own periodic cadence while work is in
            flight.  Simulated backend only; disarmed runs schedule no
            sampling events at all.
    """

    def __init__(
        self,
        num_shards: int,
        simulator: Optional[Simulator] = None,
        sharder: Optional[FlowSharder] = None,
        quantum_ns: int = 50_000,
        batch_per_quantum: int = 64,
        flow_rates: Optional[Dict[int, float]] = None,
        default_rate_bps: Optional[float] = None,
        horizon_ns: int = 2_000_000_000,
        num_buckets: int = 20_000,
        queue_factory: Optional[QueueFactory] = None,
        mailbox_capacity: Optional[int] = None,
        rebalancer: Optional[ShardRebalancer] = None,
        rebalance_interval_ns: Optional[int] = None,
        steal_enabled: bool = False,
        steal_batch: int = 64,
        steal_horizon_ns: Optional[int] = None,
        steal_min_backlog: int = 8,
        steal_channel_capacity: int = 8,
        steal_adaptive: bool = False,
        ingress_cores: int = 0,
        admission: "str | Callable[[], object] | None" = None,
        rx_ring_capacity: int = 512,
        rx_burst: int = 64,
        ingress_quantum_ns: Optional[int] = None,
        ingress_backpressure: bool = True,
        ingress_hash_seed: Optional[int] = None,
        mailbox_high_watermark: Optional[int] = None,
        mailbox_low_watermark: Optional[int] = None,
        ingest_per_quantum: Optional[int] = None,
        shard_backlog_limit: Optional[int] = None,
        on_transmit: Optional[Callable[[Packet, int], None]] = None,
        record_transmits: bool = True,
        gc_interval_packets: Optional[int] = 4096,
        gc_sweep_limit: Optional[int] = None,
        backend: "str | ExecutionBackend" = "simulated",
        fault_plan: Optional[FaultPlan] = None,
        lease_deadline_ns: Optional[int] = None,
        supervise_interval_ns: Optional[int] = None,
        latency_histograms: bool = False,
        tracer: Optional[FlightRecorder] = None,
        metrics_timeline: Optional[MetricsTimeline] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if quantum_ns <= 0:
            raise ValueError("quantum_ns must be positive")
        if batch_per_quantum <= 0:
            raise ValueError("batch_per_quantum must be positive")
        if rebalancer is not None and rebalance_interval_ns is None:
            raise ValueError("rebalancer requires rebalance_interval_ns")
        if rebalance_interval_ns is not None and rebalance_interval_ns <= 0:
            raise ValueError("rebalance_interval_ns must be positive")
        if steal_batch <= 0:
            raise ValueError("steal_batch must be positive")
        if steal_horizon_ns is not None and steal_horizon_ns < 0:
            raise ValueError("steal_horizon_ns must be non-negative")
        if steal_min_backlog <= 0:
            raise ValueError("steal_min_backlog must be positive")
        if steal_channel_capacity <= 0:
            raise ValueError("steal_channel_capacity must be positive")
        if gc_interval_packets is not None and gc_interval_packets <= 0:
            raise ValueError("gc_interval_packets must be positive")
        if gc_sweep_limit is not None and gc_sweep_limit <= 0:
            raise ValueError("gc_sweep_limit must be positive")
        if ingress_cores < 0:
            raise ValueError("ingress_cores must be non-negative")
        if rx_ring_capacity <= 0:
            raise ValueError("rx_ring_capacity must be positive")
        if rx_burst <= 0:
            raise ValueError("rx_burst must be positive")
        if ingress_quantum_ns is not None and ingress_quantum_ns <= 0:
            raise ValueError("ingress_quantum_ns must be positive")
        if ingest_per_quantum is not None and ingest_per_quantum <= 0:
            raise ValueError("ingest_per_quantum must be positive")
        if shard_backlog_limit is not None and shard_backlog_limit <= 0:
            raise ValueError("shard_backlog_limit must be positive")
        if lease_deadline_ns is not None and lease_deadline_ns <= 0:
            raise ValueError("lease_deadline_ns must be positive")
        if supervise_interval_ns is not None and supervise_interval_ns <= 0:
            raise ValueError("supervise_interval_ns must be positive")
        if fault_plan is not None:
            if fault_plan.max_shard_target >= num_shards:
                raise ValueError(
                    f"fault plan targets shard {fault_plan.max_shard_target} "
                    f"but only {num_shards} shards exist"
                )
            for lane in fault_plan.wedge_lanes:
                if lane >= ingress_cores:
                    raise ValueError(
                        f"fault plan wedges ingress lane {lane} but only "
                        f"{ingress_cores} ingress cores exist"
                    )
        self.backend = resolve_backend(backend, simulator)
        if self.backend.parallel:
            conflicts = []
            if steal_enabled:
                conflicts.append("steal_enabled")
            if rebalancer is not None or rebalance_interval_ns is not None:
                conflicts.append("rebalancing")
            if ingress_cores:
                conflicts.append("ingress_cores")
            if on_transmit is not None:
                conflicts.append("on_transmit")
            if fault_plan is not None:
                conflicts.append("fault_plan")
            if lease_deadline_ns is not None:
                conflicts.append("lease_deadline_ns")
            # The latency histograms do decompose (per-shard, merged like
            # counter snapshots) — but the tracer and timeline observe the
            # runtime-global seams, which only the shared clock has.
            if tracer is not None:
                conflicts.append("tracer")
            if metrics_timeline is not None:
                conflicts.append("metrics_timeline")
            if conflicts:
                raise ValueError(
                    "parallel backends need statically decomposable shards; "
                    f"disable: {', '.join(conflicts)} (each shard must be a "
                    "pure function of its own arrival schedule)"
                )
            # The flow-state GC trigger is a runtime-global transmit count,
            # which no per-shard replay can reproduce — auto-disable it.
            gc_interval_packets = None
        self.num_shards = num_shards
        #: The shared clock (simulated backend only); parallel backends run
        #: each shard on a private clock, so there is no global simulator.
        self.simulator = (
            self.backend.simulator
            if isinstance(self.backend, SimulatedBackend)
            else None
        )
        self.sharder = sharder or FlowSharder(num_shards)
        if self.sharder.num_shards != num_shards:
            raise ValueError("sharder.num_shards must match num_shards")
        self.quantum_ns = quantum_ns
        self.batch_per_quantum = batch_per_quantum
        self.rebalance_interval_ns = rebalance_interval_ns
        if rebalance_interval_ns is not None and rebalancer is None:
            rebalancer = ShardRebalancer(self.sharder)
        self.rebalancer = rebalancer
        self.on_transmit = on_transmit
        self.record_transmits = record_transmits
        if (
            ingress_cores > 0
            and mailbox_capacity is not None
            and mailbox_high_watermark is None
        ):
            # Backpressure needs a pause edge before the mailbox can drop:
            # default the watermarks so a bounded mailbox pauses the RX pull
            # at capacity and resumes once half-drained.
            mailbox_high_watermark = mailbox_capacity
            mailbox_low_watermark = mailbox_capacity // 2
        # One canonical kwargs dict builds every worker — the runtime's own
        # (below) and the identical replicas a parallel backend constructs
        # in its shard processes/threads (see _worker_spec).
        self._worker_config = dict(
            flow_rates=flow_rates,
            default_rate_bps=default_rate_bps,
            horizon_ns=horizon_ns,
            num_buckets=num_buckets,
            queue_factory=queue_factory,
            mailbox_capacity=mailbox_capacity,
            mailbox_high_watermark=mailbox_high_watermark,
            mailbox_low_watermark=mailbox_low_watermark,
            latency_histograms=latency_histograms,
        )
        self.workers: List[ShardWorker] = [
            ShardWorker(shard_id, **self._worker_config)
            for shard_id in range(num_shards)
        ]
        if ingest_per_quantum is None and ingress_cores > 0 and mailbox_capacity is not None:
            # A bounded mailbox only exerts backpressure if the shard's
            # per-quantum stamping budget is bounded too.
            ingest_per_quantum = batch_per_quantum
        self.ingest_per_quantum = ingest_per_quantum
        self.shard_backlog_limit = shard_backlog_limit
        self.transmit_log: List[tuple[int, Packet]] = []
        self.ingress_drops = 0
        self.migrations_applied = 0
        self.gc_interval_packets = gc_interval_packets
        self.steal_enabled = steal_enabled
        self.steal_batch = steal_batch
        self.steal_horizon_ns = quantum_ns if steal_horizon_ns is None else steal_horizon_ns
        self.steal_min_backlog = steal_min_backlog
        self.steal_adaptive = steal_adaptive
        self._steal_tuner: Optional[StealTuner] = (
            StealTuner(self.steal_batch, self.steal_horizon_ns) if steal_adaptive else None
        )
        self._steal_channels: List[StealChannel] = [
            StealChannel(capacity=steal_channel_capacity) for _ in range(num_shards)
        ]
        self._loan_inbox: List[List[FlowLease]] = [[] for _ in range(num_shards)]
        self._open_leases: Dict[int, list] = {}
        self._lease_seq = itertools.count()
        self._since_gc = 0
        self.gc_sweep_limit = gc_sweep_limit
        # Per-flow ownership state, columnised (see repro.runtime.flowstate):
        # home shard, in-flight packet count, and a last-activity stamp (a
        # monotonic accepted-packet sequence number — recency for telemetry
        # and debugging without reading the clock per packet).
        self.flows = FlowTable()
        self._home = self.flows.add_column("home", "i", -1)
        self._pending = self.flows.add_column("pending", "i", 0)
        self._last_seen = self.flows.add_column("last_seen", "q", 0)
        self._flow_seq = 0
        self._gc_cursor = 0
        self._tick_handles: List[Optional[EventHandle]] = [None] * num_shards
        self._rebalance_handle: Optional[EventHandle] = None
        # -- the fault plane and its supervision state ----------------------
        # All of this is inert on a clean run: the seam hooks guard on
        # `self._faults is not None`, the failure maps stay empty (their
        # truthiness is the fast-path check), and the supervision timer is
        # armed only at injection / lease-grant sites.
        self._faults = fault_plan
        self.fault_stats = FaultStats()
        self.lease_deadline_ns = lease_deadline_ns
        self.supervise_interval_ns = (
            2 * quantum_ns if supervise_interval_ns is None else supervise_interval_ns
        )
        self._dead: Dict[int, int] = {}  # shard -> crashed_at_ns
        self._stalled: Dict[int, int] = {}  # shard -> stalled_at_ns
        self._wedged: Dict[int, int] = {}  # ingress lane -> wedged_at_ns
        self._orphan_returns: Dict[int, List[FlowLease]] = {}
        self._retired_shards: Dict[int, List[_RetiredShard]] = {}
        self._supervise_handle: Optional[EventHandle] = None
        #: One entry per recovery event (crash restart, stall clear, wedge
        #: clear, deadline escalation) with failure/recovery timestamps.
        self.recovery_log: List[dict] = []
        # -- the observability plane ----------------------------------------
        # Same gating discipline as the fault plane: disarmed, the tracer
        # and timeline are None (one `is not None` guard per seam) and the
        # latency stamps are never written, so a clean run stays
        # byte-identical; armed, nothing here charges modelled cycles.
        self.latency_histograms = latency_histograms
        self.tracer = tracer
        self.timeline = metrics_timeline
        self._e2e: Optional[LogHistogram] = (
            LogHistogram() if latency_histograms else None
        )
        self._timeline_handle: Optional[EventHandle] = None
        # -- the asynchronous ingress layer --------------------------------
        admission_factory = make_admission_factory(admission)
        self.ingress_quantum_ns = (
            max(1, quantum_ns // 4) if ingress_quantum_ns is None else ingress_quantum_ns
        )
        self.ingress_cores: List[IngressCore] = [
            IngressCore(
                core_id,
                ring_capacity=rx_ring_capacity,
                pull_batch=rx_burst,
                admission=admission_factory() if admission_factory else None,
                backpressure=ingress_backpressure,
            )
            for core_id in range(ingress_cores)
        ]
        self._ingress_sharder = (
            FlowSharder.for_ingress(ingress_cores, hash_seed=ingress_hash_seed)
            if ingress_cores
            else None
        )
        self._ingress_handles: List[Optional[EventHandle]] = [None] * ingress_cores
        self._mailboxes = [worker.mailbox for worker in self.workers]
        if self.ingress_cores:
            for mailbox in self._mailboxes:
                # The falling watermark edge is the resume signal: a shard
                # draining below its low watermark wakes exactly the RX
                # cores that stalled on it (event-driven, no polling).
                mailbox.on_low = self._wake_stalled_ingress
        self.backend.bind(self)

    def _worker_spec(self, shard: int) -> WorkerSpec:
        """The recipe a parallel backend uses to replicate one shard's loop."""
        return WorkerSpec(
            shard_id=shard,
            worker_kwargs=dict(self._worker_config),
            quantum_ns=self.quantum_ns,
            batch_per_quantum=self.batch_per_quantum,
            ingest_per_quantum=self.ingest_per_quantum,
            shard_backlog_limit=self.shard_backlog_limit,
            record_transmits=self.record_transmits,
        )

    # -- ingress -----------------------------------------------------------

    def _route(self, flow_id: int) -> int:
        """Shard for the next packet of ``flow_id`` (residency beats placement).

        Pure lookup — home/migration state only changes once a packet is
        actually accepted (:meth:`_commit_route`), so a dropped packet never
        registers a migration.  A flow whose due window is on loan to a
        thief stays owned by the victim that granted the lease, even in the
        instant its in-flight count touches zero mid-delivery — migrating
        right then would strand the pacing state travelling with the lease.
        """
        loan = self.sharder.loan_shard(flow_id)
        if loan is not None:
            return loan
        slot = self.flows.lookup(flow_id)
        if slot >= 0 and self._pending[slot] > 0:
            home = self._home[slot]
            if home >= 0:
                return home
        return self.sharder.shard_for(flow_id)

    def _commit_route(self, flow_id: int, shard: int) -> None:
        """Record one accepted packet of ``flow_id`` on ``shard``.

        The first packet landing on a new home completes the migration: the
        flow's pacing state moves with it (an RFS-style flow-state handoff),
        so ``_next_free_ns`` and the remaining burst credit survive and the
        flow cannot exceed its configured rate by hopping shards.
        """
        slot = self.flows.ensure(flow_id)
        home = self._home[slot]
        if home != shard:
            if home >= 0:
                self.migrations_applied += 1
                shaper = self.workers[home].release_shaper(flow_id)
                if shaper is not None:
                    self.workers[shard].adopt_shaper(flow_id, shaper)
            self._home[slot] = shard
        self._pending[slot] += 1
        self._flow_seq += 1
        self._last_seen[slot] = self._flow_seq
        self.sharder.record(flow_id, shard)

    def submit(self, packet: Packet) -> bool:
        """Offer one packet to the runtime; False when it was dropped.

        With ingress cores the packet lands in its flow's RX ring (drops are
        then the admission policy's verdict); otherwise it goes straight to
        its shard's mailbox, as before the ingress layer existed.

        On a parallel backend this buffers the packet for time 0 of the run
        (see :meth:`submit_at`) and optimistically reports acceptance —
        drops are settled inside the shard processes and surface in
        :attr:`ingress_drops` after :meth:`run`.
        """
        if self.backend.parallel:
            self.backend.submit_at(0, [packet])
            return True
        if self.timeline is not None:
            self._arm_timeline()
        if self.ingress_cores:
            return self._offer_ingress([packet]) == 1
        shard = self._route(packet.flow_id)
        if self._faults is not None and self._faults.take_handoff_drops(shard, 1):
            # The handoff seam ate the packet before anything committed:
            # no route, no pending count — only the fault ledger sees it.
            self.fault_stats.handoff_drops += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.simulator.now_ns,
                    f"shard-{shard}",
                    "fault_inject",
                    {"kind": "handoff_drop", "count": 1},
                )
            return False
        if self.latency_histograms:
            now = self.simulator.now_ns
            packet.metadata["e2e_ns"] = now
            packet.metadata["mbox_ns"] = now
        if not self.workers[shard].mailbox.push(packet):
            self.ingress_drops += 1
            return False
        self._commit_route(packet.flow_id, shard)
        self._wake_shard(shard)
        self._wake_idle_thieves(shard)
        self._arm_rebalance()
        return True

    def submit_batch(self, packets: List[Packet]) -> int:
        """Offer a burst; routing stays per-flow, pushes are batched per shard.

        Returns the number of packets accepted.  On a parallel backend the
        burst is buffered for time 0 of the run and the count is optimistic
        (see :meth:`submit`).
        """
        if self.backend.parallel:
            self.backend.submit_at(0, packets)
            return len(packets)
        if self.timeline is not None:
            self._arm_timeline()
        if self.ingress_cores:
            return self._offer_ingress(packets)
        if self.latency_histograms:
            now = self.simulator.now_ns
            for packet in packets:
                packet.metadata["e2e_ns"] = now
                packet.metadata["mbox_ns"] = now
        by_shard: Dict[int, List[Packet]] = {}
        get_group = by_shard.get
        route = self._route
        for packet in packets:
            shard = route(packet.flow_id)
            group = get_group(shard)
            if group is None:
                by_shard[shard] = [packet]
            else:
                group.append(packet)
        accepted = 0
        faults = self._faults
        for shard, group in by_shard.items():
            if faults is not None:
                dropped = faults.take_handoff_drops(shard, len(group))
                if dropped:
                    self.fault_stats.handoff_drops += dropped
                    if self.tracer is not None:
                        self.tracer.emit(
                            self.simulator.now_ns,
                            f"shard-{shard}",
                            "fault_inject",
                            {"kind": "handoff_drop", "count": dropped},
                        )
                    group = group[dropped:]
                    if not group:
                        continue
            mailbox = self.workers[shard].mailbox
            before = len(mailbox)
            taken = mailbox.push_batch(group)
            accepted += taken
            self.ingress_drops += len(group) - taken
            # Tail drop keeps the accepted prefix, so pending counts follow
            # the prefix of each flow's packets within this shard's group.
            for packet in group[:taken]:
                self._commit_route(packet.flow_id, shard)
            if taken or before:
                self._wake_shard(shard)
                self._wake_idle_thieves(shard)
        if accepted:
            self._arm_rebalance()
        return accepted

    def submit_at(self, when_ns: int, packets: List[Packet]) -> None:
        """Arrange for a burst to arrive at absolute time ``when_ns``.

        The backend-portable way to drive a timed workload: on the
        simulated backend this schedules a :meth:`submit_batch` event (so
        pre-run submissions keep their arrival-beats-tick tie order on the
        shared heap, exactly like the benchmark harnesses' hand-scheduled
        offers); on a parallel backend it buffers the burst into the
        schedule that :meth:`run` fans out to the shard cores.  Call it for
        every burst before :meth:`run` and the same workload replays
        identically on either backend.
        """
        self.backend.submit_at(when_ns, packets)

    # -- the asynchronous ingress layer ------------------------------------

    def _offer_ingress(self, packets: List[Packet]) -> int:
        """Spread a NIC burst over the ingress cores' RX rings by flow hash.

        One flow always traverses one ring (per-flow FIFO composes through
        the whole pipeline); returns packets admitted past the admission
        policy.  With pure backpressure everything is admitted — the rings
        grow instead of dropping.
        """
        assert self._ingress_sharder is not None
        now = self.simulator.now_ns
        if self.latency_histograms:
            # The e2e clock starts at submission — RX-ring wait included.
            for packet in packets:
                packet.metadata["e2e_ns"] = now
        if len(self.ingress_cores) == 1:
            groups: Dict[int, List[Packet]] = {0: packets}
        else:
            groups = {}
            lane_for = self._ingress_sharder.shard_for
            for packet in packets:
                groups.setdefault(lane_for(packet.flow_id), []).append(packet)
        admitted = 0
        for lane, group in groups.items():
            core = self.ingress_cores[lane]
            admitted += core.offer(group, now)
            if not core.ring.empty:
                self._wake_ingress(lane)
        return admitted

    def _wake_ingress(self, lane: int) -> None:
        """Guarantee the ingress core pulls within one ingress quantum.

        Ingress ticks are only ever armed at ``now`` or one ingress quantum
        out, so an already-armed pull is always soon enough for fresh ring
        arrivals; only :meth:`_wake_stalled_ingress` (the watermark resume
        edge) ever pulls an armed retry forward.
        """
        if self._wedged and lane in self._wedged:
            return  # a wedged poller ignores wakes until the supervisor acts
        handle = self._ingress_handles[lane]
        if handle is not None and handle.active:
            return
        self._ingress_handles[lane] = self.simulator.schedule_at(
            self.simulator.now_ns, lambda lane=lane: self._ingress_tick(lane)
        )

    def _wake_stalled_ingress(self) -> None:
        """Resume every RX core parked on backpressure (the ``on_low`` edge).

        Unlike :meth:`_wake_ingress`, a stalled core's pending quantum-
        cadence retry is pulled forward to *now*: the whole point of the
        falling-watermark edge is to beat that polling fallback, and a
        stalled core always has the retry armed, so deferring to it would
        make this wake a no-op and cost up to one ingress quantum of extra
        RX sojourn per stall.
        """
        now = self.simulator.now_ns
        for lane, core in enumerate(self.ingress_cores):
            if not core.stalled or core.ring.empty:
                continue
            if self._wedged and lane in self._wedged:
                continue
            handle = self._ingress_handles[lane]
            if handle is not None and handle.active:
                if handle.time_ns <= now:
                    continue  # already due this instant
                self.simulator.cancel(handle)
            self._ingress_handles[lane] = self.simulator.schedule_at(
                now, lambda lane=lane: self._ingress_tick(lane)
            )

    def _ingress_tick(self, lane: int) -> None:
        core = self.ingress_cores[lane]
        self._ingress_handles[lane] = None
        now = self.simulator.now_ns
        if self._faults is not None and self._faults.next_wedge(lane):
            # The RX poller wedges: no pull, no reschedule.  Arrivals keep
            # landing in the ring until the supervisor un-wedges the lane.
            self._wedged[lane] = now
            self.fault_stats.wedges_injected += 1
            if self.tracer is not None:
                self.tracer.emit(
                    now, f"rx-{lane}", "fault_inject", {"kind": "ingress_wedge"}
                )
            self._arm_supervision()
            return
        if self._wedged and lane in self._wedged:
            return
        delivered = core.pull(now, self._route, self._mailboxes, self._ingress_deliver)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                f"rx-{lane}",
                "ingress_pull",
                {"delivered": delivered, "ring": core.backlog, "stalled": core.stalled},
            )
        # The wake-up policy lives on the core (next_wake_ns), shared with
        # any backend that drives RX cores on its own clock.  Blocked cores
        # are primarily woken by the mailbox on_low edge; the quantum-cadence
        # retry is the liveness belt for custom watermark wirings, and for a
        # loaded ring it is simply the next NAPI poll.
        next_ns = core.next_wake_ns(now, self.ingress_quantum_ns)
        if next_ns is None:
            return  # the next offer() wakes this core
        self._ingress_handles[lane] = self.simulator.schedule_at(
            next_ns, lambda lane=lane: self._ingress_tick(lane)
        )

    def _ingress_deliver(self, shard: int, packets: List[Packet]) -> int:
        """Land one classified per-shard group in its mailbox (core -> core)."""
        if self._faults is not None:
            dropped = self._faults.take_handoff_drops(shard, len(packets))
            if dropped:
                self.fault_stats.handoff_drops += dropped
                if self.tracer is not None:
                    self.tracer.emit(
                        self.simulator.now_ns,
                        f"shard-{shard}",
                        "fault_inject",
                        {"kind": "handoff_drop", "count": dropped},
                    )
                packets = packets[dropped:]
                if not packets:
                    return 0
        mailbox = self._mailboxes[shard]
        before = len(mailbox)
        if self.latency_histograms:
            now = self.simulator.now_ns
            for packet in packets:
                packet.metadata["mbox_ns"] = now
        taken = mailbox.push_batch(packets)
        self.ingress_drops += len(packets) - taken
        if self.tracer is not None:
            self.tracer.emit(
                self.simulator.now_ns,
                f"shard-{shard}",
                "mailbox_handoff",
                {"offered": len(packets), "accepted": taken},
            )
        for packet in packets[:taken]:
            self._commit_route(packet.flow_id, shard)
        if taken or before:
            self._wake_shard(shard)
            self._wake_idle_thieves(shard)
        if taken:
            self._arm_rebalance()
        return taken

    # -- shard scheduling --------------------------------------------------

    def _wake_idle_thieves(self, loaded_shard: int) -> None:
        """Give empty shards a tick so they can park steal requests.

        A shard with nothing in flight has no timer armed and would
        otherwise never volunteer — the scheduling analogue of kicking an
        idle core with an IPI when work lands somewhere on the package.
        The tick is on an idle core, so it never adds to the bottleneck,
        and the kick only fires when the shard that just received work is
        loaded enough to clear the steal floor — below that no victim can
        qualify, so a woken thief could only park a request and go back to
        sleep.
        """
        if not self.steal_enabled or self.num_shards == 1:
            return
        loaded = self.workers[loaded_shard]
        if loaded.backlog + len(loaded.mailbox) < self.steal_min_backlog:
            return
        for shard, worker in enumerate(self.workers):
            if not worker.pending and not worker.leases_held and not worker.flows_on_loan:
                self._wake_shard(shard)

    def _wake_shard(self, shard: int) -> None:
        """Guarantee the shard ticks within one quantum of new work."""
        if (self._dead and shard in self._dead) or (
            self._stalled and shard in self._stalled
        ):
            return  # a dead or frozen core cannot be woken; supervision will
        handle = self._tick_handles[shard]
        now = self.simulator.now_ns
        if handle is not None and handle.active:
            if handle.time_ns <= now + self.quantum_ns:
                return
            # The shard is sleeping until a far-off deadline; pull its next
            # tick forward so the new packet is stamped promptly.
            self.simulator.cancel(handle)
        self._tick_handles[shard] = self.simulator.schedule_at(
            now, lambda shard=shard: self._tick(shard)
        )

    def _tick(self, shard: int) -> None:
        worker = self.workers[shard]
        now = self.simulator.now_ns
        self._tick_handles[shard] = None
        if self._faults is not None:
            action = self._faults.next_shard_action(shard)
            if action is not None:
                self._inject_shard_fault(shard, action, now)
                return  # the tick never runs; no next tick is scheduled
        if self._dead and shard in self._dead:
            return  # stale timer of a crashed core
        inbox = self._loan_inbox[shard]
        if inbox:
            # Thief role, first: splice freshly granted leases into this
            # shard's queue before the drain below, so due stolen packets
            # release this very tick.
            self._loan_inbox[shard] = []
            for lease in inbox:
                worker.accept_lease(lease, now)
        ingest_limit = self.ingest_per_quantum
        if self.shard_backlog_limit is not None:
            room = max(0, self.shard_backlog_limit - worker.backlog)
            ingest_limit = room if ingest_limit is None else min(ingest_limit, room)
        released = worker.tick(
            now, ingest_limit=ingest_limit, drain_limit=self.batch_per_quantum
        )
        if self.tracer is not None:
            self.tracer.emit(
                now,
                f"shard-{shard}",
                "drain_batch",
                {"released": len(released), "backlog": worker.backlog},
            )
        self._deliver(released, now)
        if self.steal_enabled and self.num_shards > 1:
            self._grant_steals(shard, now)
            self._maybe_request_steal(shard, now)
        self._schedule_next_tick(shard, now)

    def _deliver(self, released: List[Packet], now: int) -> None:
        """Hand released packets to the NIC side; settle leases they close.

        This runs once per drained packet for the whole runtime, so every
        per-packet lookup is hoisted into a local before the loop and the
        optional branches (transmit log, callback, open leases) are resolved
        once per call rather than once per packet.
        """
        finished: List[FlowLease] = []
        lookup = self.flows.lookup
        pending_col = self._pending
        log_append = self.transmit_log.append if self.record_transmits else None
        on_transmit = self.on_transmit
        open_leases = self._open_leases
        e2e = self._e2e
        for packet in released:
            packet.departure_ns = now
            if e2e is not None:
                submitted_ns = packet.metadata.pop("e2e_ns", None)
                if submitted_ns is not None:
                    e2e.record(now - submitted_ns)
            flow_id = packet.flow_id
            slot = lookup(flow_id)
            if slot >= 0:
                pending = pending_col[slot] - 1
                pending_col[slot] = pending if pending > 0 else 0
            if log_append is not None:
                log_append((now, packet))
            if on_transmit is not None:
                on_transmit(packet, now)
            if open_leases:
                lease_id = packet.metadata.get("lease_id")
                if lease_id is not None:
                    entry = open_leases.get(lease_id)
                    if entry is not None:
                        entry[1] -= 1
                        if entry[1] == 0:
                            del open_leases[lease_id]
                            finished.append(entry[0])
        for lease in finished:
            self._finish_lease(lease, now)
        if released and self.gc_interval_packets is not None:
            self._since_gc += len(released)
            if self._since_gc >= self.gc_interval_packets:
                self._since_gc = 0
                self._gc_flow_state(now)

    # -- work stealing -----------------------------------------------------

    def _grant_steals(self, shard: int, now: int) -> None:
        """Victim role: hand due windows to the thieves parked at ``shard``.

        Runs after the shard's own drain, so stealing only ever takes work
        the victim could not clear within its own quantum budget.  Requests
        park until the victim actually has a stealable window — the
        standing "work wanted" token of message-passing work stealing.
        """
        worker = self.workers[shard]
        channel = self._steal_channels[shard]
        steal_batch, steal_horizon_ns = self._steal_params()
        cutoff = now + steal_horizon_ns
        while len(channel):
            if worker.flows_on_loan or worker.leases_held or not worker.has_work_by(cutoff):
                break  # one lease out at a time / holding stolen work / nothing stealable
            if worker.backlog < self.steal_min_backlog:
                # The victim drained below the steal floor since the request
                # parked: a lease now would move work it can clear itself
                # next tick.  The request stays parked for the next burst.
                break
            request = channel.peek()
            assert request is not None
            thief_worker = self.workers[request.thief_shard]
            if (
                thief_worker.pending
                or thief_worker.leases_held
                or thief_worker.flows_on_loan
                or self._loan_inbox[request.thief_shard]
                or (self._dead and request.thief_shard in self._dead)
                or (self._stalled and request.thief_shard in self._stalled)
            ):
                # The thief found its own work since parking the request —
                # or already has a lease granted (possibly still sitting in
                # its inbox) or its own flows out on loan: one window per
                # idle thief at a time.
                channel.pop()
                thief_worker.steal.requests_stale += 1
                continue
            lease = worker.grant_lease(
                next(self._lease_seq), request.thief_shard, now, steal_batch,
                steal_horizon_ns,
            )
            if lease is None:
                # The donor refused despite the loop-top checks (kept
                # deliberately equivalent; this is the belt to those
                # braces): leave the request parked for a later tick.
                break
            channel.pop()
            if self._steal_tuner is not None:
                self._steal_tuner.observe(len(lease.packets))
            for flow_id in lease.flow_ids:
                self.sharder.lend(flow_id, shard)
            self._open_leases[lease.lease_id] = [lease, len(lease.packets)]
            self._loan_inbox[request.thief_shard].append(lease)
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    f"shard-{shard}",
                    "lease_grant",
                    {
                        "lease_id": lease.lease_id,
                        "thief": request.thief_shard,
                        "packets": len(lease.packets),
                        "flows": len(lease.flow_ids),
                    },
                )
            self._wake_shard(request.thief_shard)
            if self.lease_deadline_ns is not None:
                self._arm_supervision()

    def _steal_params(self) -> tuple[int, int]:
        """Effective ``(steal_batch, steal_horizon_ns)`` for the next grant.

        The adaptive tuner (``steal_adaptive=True``) shrinks both knobs
        toward the EWMA of observed lease sizes; otherwise the configured
        values apply unchanged.
        """
        if self._steal_tuner is not None:
            return self._steal_tuner.batch, self._steal_tuner.horizon_ns
        return self.steal_batch, self.steal_horizon_ns

    def _maybe_request_steal(self, shard: int, now: int) -> None:
        """Thief role: when empty, park a steal request at the busiest sibling.

        Only a shard with *nothing at all* in flight volunteers — a shard
        with merely no work due yet still owns future-paced backlog, and
        letting it steal would move load toward loaded cores (the hot shard
        is "idle right now" between its own paced releases most of the
        time).  The empty shard then sleeps with no timer armed; its sleep
        stays steal-aware because an arriving lease re-programs the tick
        through :meth:`_wake_shard`, exactly like fresh ingress.
        """
        worker = self.workers[shard]
        if worker.pending or worker.leases_held or worker.flows_on_loan:
            # Nothing at all may be in flight — and a donor whose flows are
            # out on lease is about to take back a deferred flush plus
            # re-ingested arrivals, so it is not idle either.
            return
        # Volunteer only while this core has done less than its fair share
        # of the run's work: an empty-but-cumulatively-hot shard (e.g. the
        # elephant's home at a burst tail) grabbing more work would deepen
        # the very bottleneck stealing exists to relieve.
        mean_cycles = sum(candidate.cost.total_cycles for candidate in self.workers) / self.num_shards
        if worker.cost.total_cycles > mean_cycles:
            return
        loads = [candidate.backlog + len(candidate.mailbox) for candidate in self.workers]
        # Only a shard loaded well beyond its siblings is worth robbing:
        # stealing between near-equal shards just churns handoff overhead,
        # ticks, and bitmap scans without relieving any bottleneck.
        floor = max(self.steal_min_backlog, 2 * sum(loads) // self.num_shards)
        victim = None
        victim_pending = floor - 1
        for other, pending in enumerate(loads):
            if other == shard:
                continue
            if self._dead and other in self._dead:
                continue  # a corpse's backlog is being recovered, not robbed
            if pending > victim_pending:
                victim, victim_pending = other, pending
        if victim is None:
            return
        # Park the request without waking the victim: a shard loaded enough
        # to rob keeps its own tick chain alive, and one that sleeps toward
        # a far deadline has nothing stealable inside the horizon anyway.
        # The grant lands at the victim's next natural safe point.
        outcome = self._steal_channels[victim].post(StealRequest(shard, now))
        if outcome == "accepted":
            worker.steal.requests_posted += 1
        elif outcome == "full":
            worker.steal.requests_dropped += 1

    def _finish_lease(self, lease: FlowLease, now: int) -> None:
        """The thief released the last stolen packet: return the lease."""
        self.workers[lease.thief_shard].finish_held_lease()
        if self.tracer is not None:
            self.tracer.emit(
                now,
                f"shard-{lease.thief_shard}",
                "lease_return",
                {"lease_id": lease.lease_id, "victim": lease.victim_shard},
            )
        if self._dead and lease.victim_shard in self._dead:
            # The donor died while its lease was out.  Bank the return for
            # the replacement worker: shapers re-install and the sharder's
            # loan entry clears at recovery (the dead core's deferred work
            # for these flows is already part of its crash loss).
            self._orphan_returns.setdefault(lease.victim_shard, []).append(lease)
            return
        victim = self.workers[lease.victim_shard]
        flushed = victim.end_lease(lease, now)
        for flow_id in lease.flow_ids:
            self.sharder.restore(flow_id)
        self._deliver(flushed, now)
        if victim.pending:
            self._wake_shard(lease.victim_shard)

    def _schedule_next_tick(self, shard: int, now: int) -> None:
        if (handle := self._tick_handles[shard]) is not None and handle.active:
            # A re-entrant submit() during this tick (an on_transmit callback
            # feeding packets back) already woke the shard; scheduling a
            # second tick here would fork a duplicate self-perpetuating
            # timer chain.
            return
        # The timer policy itself (idle → no timer; mailbox → one quantum;
        # deep-paced queue → jump to the soonest deadline) lives on the
        # worker so every execution backend programs identical wake-ups.
        next_ns = self.workers[shard].next_wake_ns(now, self.quantum_ns)
        if next_ns is None:
            # Idle — the next submit() wakes the shard (lease-deferred
            # packets deliberately don't count: _finish_lease wakes then).
            return
        self._tick_handles[shard] = self.simulator.schedule_at(
            next_ns, lambda shard=shard: self._tick(shard)
        )

    def _gc_flow_state(self, now_ns: int) -> None:
        """Reclaim per-flow state of flows with nothing in flight.

        A flow is reclaimed only when its shard holds no live pacing state
        for it (see :meth:`ShardWorker.gc_flow`); flows mid-pacing keep
        their home so a returning packet cannot jump ahead of the rate
        limit.

        With ``gc_sweep_limit`` set the sweep is incremental: a persistent
        cursor walks the slot space at most ``limit`` idle candidates per
        trigger and wraps, bounding GC cost per trigger regardless of how
        many flows are live.  Flows skipped this sweep are simply examined
        on a later one — the reclaimed set converges to exactly what one
        global scan finds, because the verdict per flow
        (:meth:`ShardWorker.gc_flow`) is independent of scan order.
        """
        flows = self.flows
        stats = flows.stats
        stats.gc_sweeps += 1
        key = flows.key
        home_col = self._home
        pending_col = self._pending
        loan_shard = self.sharder.loan_shard
        forget = self.sharder.forget
        workers = self.workers
        limit = self.gc_sweep_limit
        span = flows.slot_limit
        if limit is None:
            slots = iter(range(span))
        else:
            start = self._gc_cursor
            if start >= span:
                start = 0
            slots = itertools.chain(range(start, span), range(start))
        examined = 0
        for slot in slots:
            flow_id = key[slot]
            if flow_id < 0 or pending_col[slot] > 0:
                continue
            examined += 1
            home = home_col[slot]
            if home < 0:
                # A crash recovery re-homed this flow with nothing in
                # flight: no shard holds state for it, reclaim directly.
                flows.remove(flow_id)
                forget(flow_id)
                stats.gc_reclaimed += 1
            # Mid-lease the flow's pacing state lives inside the lease, not
            # on its shard, so the "no live pacing state" probe would
            # misfire and orphan the state the lease hands back — skip.
            elif loan_shard(flow_id) is None and workers[home].gc_flow(
                flow_id, now_ns
            ):
                flows.remove(flow_id)
                forget(flow_id)
                stats.gc_reclaimed += 1
            if limit is not None and examined >= limit:
                self._gc_cursor = slot + 1
                break
        stats.gc_examined += examined

    # -- rebalancing -------------------------------------------------------

    def _arm_rebalance(self) -> None:
        if self.rebalancer is None or self.rebalance_interval_ns is None:
            return
        if self._rebalance_handle is not None and self._rebalance_handle.active:
            return
        self._rebalance_handle = self.simulator.schedule(
            self.rebalance_interval_ns, self._rebalance_tick
        )

    def _rebalance_tick(self) -> None:
        assert self.rebalancer is not None
        self._rebalance_handle = None
        tracer = self.tracer
        now = self.simulator.now_ns if tracer is not None else 0
        for migration in self.rebalancer.plan():
            # Re-pin now; routing applies it once the flow drains (FIFO).
            self.sharder.pin(migration.flow_id, migration.dst_shard)
            if tracer is not None:
                tracer.emit(
                    now,
                    "supervisor",
                    "rebalance_migration",
                    {
                        "flow_id": migration.flow_id,
                        "src": migration.src_shard,
                        "dst": migration.dst_shard,
                        "window_packets": migration.window_packets,
                    },
                )
        self.sharder.reset_window()
        # Keep sweeping only while traffic is in flight; submit() re-arms.
        if any(worker.pending for worker in self.workers):
            self._arm_rebalance()

    # -- fault injection and supervision -----------------------------------

    def _inject_shard_fault(self, shard: int, action: str, now: int) -> None:
        """Arm one shard fault (fires from the victim's own tick).

        A crash marks the shard dead — its tick chain stops, wakes are
        suppressed, and its private state sits untouched until the
        supervision sweep performs the restart (detection latency is part of
        the modelled recovery time).  A stall just freezes the tick chain.
        """
        if action == "shard_crash":
            self._dead[shard] = now
            self.fault_stats.crashes_injected += 1
        else:
            self._stalled[shard] = now
            self.fault_stats.stalls_injected += 1
        if self.tracer is not None:
            self.tracer.emit(now, f"shard-{shard}", "fault_inject", {"kind": action})
        self._arm_supervision()

    def _arm_supervision(self) -> None:
        """Guarantee a supervision sweep within one supervise interval.

        Armed only at fault-injection sites and lease grants (when a lease
        deadline is configured) — a clean runtime never schedules one.
        """
        handle = self._supervise_handle
        if handle is not None and handle.active:
            return
        self._supervise_handle = self.simulator.schedule(
            self.supervise_interval_ns, self._supervise_tick
        )

    def _supervise_tick(self) -> None:
        """One supervision sweep: restart the dead, unfreeze the stuck.

        Detection is structural, not heartbeat-guesswork: a healthy shard
        with queued or mailbox work *always* has a tick timer armed (the
        self-perpetuating tick chain), so "work pending and no timer" is a
        precise liveness predicate — deadline-sleeping shards keep their
        far-off timer and never false-positive.  Re-arms itself only while
        unresolved failures (or open leases under a deadline) remain; future
        faults re-arm at their injection sites, so a plan entry beyond the
        run's horizon can never keep the event loop alive.
        """
        self._supervise_handle = None
        now = self.simulator.now_ns
        stats = self.fault_stats
        if self._dead:
            for shard in sorted(self._dead):
                if shard in self._dead:
                    self._recover_shard(shard, now)
        if self.lease_deadline_ns is not None and self._open_leases:
            deadline = self.lease_deadline_ns
            overdue = sorted(
                {
                    entry[0].thief_shard
                    for entry in self._open_leases.values()
                    if now - entry[0].granted_at_ns > deadline
                }
            )
            for thief in overdue:
                # Escalate-to-restart: a thief sitting on a lease past its
                # deadline is presumed hung.  Crash it — the standard
                # recovery reclaims every lease it holds and its victims
                # resume their deferred flows.
                stats.deadline_escalations += 1
                self._dead[thief] = now
                self._recover_shard(thief, now)
        for shard, worker in enumerate(self.workers):
            stalled_at = self._stalled.pop(shard, None) if self._stalled else None
            handle = self._tick_handles[shard]
            armed = handle is not None and handle.active
            has_work = worker.backlog > 0 or len(worker.mailbox) > 0
            if stalled_at is not None:
                stats.stalls_cleared += 1
                stats.recoveries += 1
                stats.recovery_ns_total += now - stalled_at
                self.recovery_log.append(
                    {
                        "kind": "shard_stall",
                        "shard": shard,
                        "failed_at_ns": stalled_at,
                        "recovered_at_ns": now,
                    }
                )
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "supervisor",
                        "fault_recover",
                        {"kind": "shard_stall", "shard": shard, "failed_at_ns": stalled_at},
                    )
                if (has_work or self._loan_inbox[shard]) and not armed:
                    self._wake_shard(shard)
            elif has_work and not armed:
                # Liveness belt for failure modes no flag marked.
                stats.watchdog_kicks += 1
                self._wake_shard(shard)
        if self._wedged:
            for lane in sorted(self._wedged):
                wedged_at = self._wedged.pop(lane)
                stats.wedges_cleared += 1
                stats.recoveries += 1
                stats.recovery_ns_total += now - wedged_at
                self.recovery_log.append(
                    {
                        "kind": "ingress_wedge",
                        "lane": lane,
                        "failed_at_ns": wedged_at,
                        "recovered_at_ns": now,
                    }
                )
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "supervisor",
                        "fault_recover",
                        {"kind": "ingress_wedge", "lane": lane, "failed_at_ns": wedged_at},
                    )
                if not self.ingress_cores[lane].ring.empty:
                    self._wake_ingress(lane)
        if (
            self._dead
            or self._stalled
            or self._wedged
            or (self.lease_deadline_ns is not None and self._open_leases)
        ):
            self._arm_supervision()

    def _recover_shard(self, shard: int, now: int) -> None:
        """Crash-restart one shard: salvage what survives, account the loss.

        Ordering matters:

        1. snapshot the dead incarnation's counters *before* dumping its
           state (the dump drains the queue through its own stats);
        2. reclaim every lease the dead shard held as thief — each victim
           re-adopts its travelled shapers and flushes its deferred flows;
           stolen packets still queued on the thief die in step 3, and a
           lease that never left the handoff inbox loses its whole burst;
        3. dump the core-private state: queued and lease-deferred packets
           are the crash loss, written off against the flow table;
        4. build the replacement and transplant what survives — the mailbox
           *object* (a producer-owned ring whose buffered arrivals replay
           into the fresh worker, keeping the ingress ``on_low`` wiring and
           stats continuity), open-loan markers for flows this shard had
           lent out, banked lease returns that arrived while it lay dead,
           and pacing state of flows that still have packets in flight here
           (:meth:`PacingTable.detach` → ``install``);
        5. flows homed here with nothing in flight re-home lazily: the home
           clears, the next packet routes by policy, and the re-armed
           rebalancer re-pins from fresh load figures.
        """
        crashed_at = self._dead.pop(shard)
        old = self.workers[shard]
        stats = self.fault_stats
        self._retired_shards.setdefault(shard, []).append(
            _RetiredShard(
                stats=old.stats.snapshot(),
                queue_stats=old.queue_stats_snapshot(),
                steals=old.steal.snapshot(),
                cycles=old.cost.total_cycles,
                mailbox_wait=(
                    old.mailbox_wait.snapshot() if old.mailbox_wait is not None else None
                ),
                queue_wait=(
                    old.queue_wait.snapshot() if old.queue_wait is not None else None
                ),
            )
        )
        lookup = self.flows.lookup
        pending_col = self._pending

        def write_off(packets) -> None:
            for packet in packets:
                slot = lookup(packet.flow_id)
                if slot >= 0:
                    pending = pending_col[slot] - 1
                    pending_col[slot] = pending if pending > 0 else 0
            stats.packets_lost += len(packets)

        inbox_ids = {lease.lease_id for lease in self._loan_inbox[shard]}
        self._loan_inbox[shard] = []
        reclaim = [
            lease_id
            for lease_id, entry in self._open_leases.items()
            if entry[0].thief_shard == shard
        ]
        for lease_id in reclaim:
            lease, _remaining = self._open_leases.pop(lease_id)
            stats.leases_reclaimed += 1
            if lease_id in inbox_ids:
                # Granted but never accepted: the burst died in the handoff.
                write_off([packet for _send_at, packet in lease.packets])
            if self._dead and lease.victim_shard in self._dead:
                # The victim crashed in the same sweep and is not yet
                # rebuilt: bank the return for its own recovery pass.
                self._orphan_returns.setdefault(lease.victim_shard, []).append(lease)
                continue
            victim = self.workers[lease.victim_shard]
            flushed = victim.end_lease(lease, now)
            for flow_id in lease.flow_ids:
                self.sharder.restore(flow_id)
            self._deliver(flushed, now)
            if victim.pending:
                self._wake_shard(lease.victim_shard)
        lost, loaned = old.crash_dump()
        write_off(lost)
        mailbox = old.mailbox
        stats.packets_salvaged += len(mailbox)
        fresh = ShardWorker(shard, **self._worker_config)
        # Same object, not a copy: self._mailboxes[shard] and the ingress
        # on_low wiring keep pointing at it, and its stats run on.
        fresh.mailbox = mailbox
        for lease in self._orphan_returns.pop(shard, ()):
            # Leases that came back while this shard lay dead: re-adopt the
            # travelled shapers; the deferred work died in the dump above.
            for flow_id, shaper in lease.shapers.items():
                fresh.adopt_shaper(flow_id, shaper)
                stats.shapers_recovered += 1
            for flow_id in lease.flow_ids:
                loaned.pop(flow_id, None)
                self.sharder.restore(flow_id)
        for flow_id, thief in loaned.items():
            fresh.mark_on_loan(flow_id, thief)
        home_col = self._home
        for flow_id, slot in self.flows.items():
            if home_col[slot] != shard:
                continue
            if pending_col[slot] > 0:
                # Packets survive (mailbox, or out with a thief): the flow
                # stays homed here and its pacing state rides across.
                shaper = old.pacing.detach(flow_id)
                if shaper is not None:
                    fresh.pacing.install(flow_id, shaper)
                    stats.shapers_recovered += 1
            else:
                home_col[slot] = -1
                stats.flows_rehomed += 1
                self.sharder.forget(flow_id)
        self.workers[shard] = fresh
        stats.shards_recovered += 1
        stats.recoveries += 1
        stats.recovery_ns_total += now - crashed_at
        self.recovery_log.append(
            {
                "kind": "shard_crash",
                "shard": shard,
                "failed_at_ns": crashed_at,
                "recovered_at_ns": now,
                "packets_lost": len(lost),
                "packets_salvaged": len(mailbox),
            }
        )
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "supervisor",
                "fault_recover",
                {
                    "kind": "shard_crash",
                    "shard": shard,
                    "failed_at_ns": crashed_at,
                    "packets_lost": len(lost),
                    "packets_salvaged": len(mailbox),
                },
            )
        self._arm_rebalance()
        if len(mailbox):
            self._wake_shard(shard)

    # -- metrics timeline --------------------------------------------------

    def _arm_timeline(self) -> None:
        """Guarantee a timeline sample within one sampling interval.

        Armed lazily from the submit paths (like rebalancing) so an idle
        runtime with a timeline configured holds no standing timer.
        """
        handle = self._timeline_handle
        if handle is not None and handle.active:
            return
        assert self.timeline is not None
        self._timeline_handle = self.simulator.schedule(
            self.timeline.interval_ns, self._timeline_tick
        )

    def _timeline_tick(self) -> None:
        assert self.timeline is not None
        self._timeline_handle = None
        self.timeline.sample(self.simulator.now_ns, self._timeline_gauges())
        # Re-arm only while something is in flight or unresolved — a
        # standing sampler must never keep the event loop alive on its own.
        if (
            self.pending
            or self._open_leases
            or self._dead
            or self._stalled
            or self._wedged
        ):
            self._arm_timeline()

    def _timeline_gauges(self) -> Dict[str, GaugeValue]:
        """One gauge sample: the runtime's load picture at this instant."""
        workers = self.workers
        gauges: Dict[str, GaugeValue] = {
            "shard_backlog": {str(w.shard_id): w.backlog for w in workers},
            "mailbox_occupancy": {str(w.shard_id): len(w.mailbox) for w in workers},
            "shard_cycles": {str(w.shard_id): w.cost.total_cycles for w in workers},
            "pending_packets": self.pending,
            "live_flows": len(self.flows),
            "pacing_flows": sum(len(w.pacing) for w in workers),
            "open_leases": len(self._open_leases),
            "flows_on_loan": sum(w.flows_on_loan for w in workers),
            "dead_shards": len(self._dead),
            "stalled_shards": len(self._stalled),
        }
        if self.ingress_cores:
            gauges["rx_ring_depth"] = {
                str(core.core_id): core.backlog for core in self.ingress_cores
            }
            gauges["rx_cycles"] = {
                str(core.core_id): core.cost.total_cycles
                for core in self.ingress_cores
            }
        return gauges

    # -- driving -----------------------------------------------------------

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Execute the workload; returns events processed.

        On the simulated backend this drives the shared clock (without a
        horizon it runs until every shard drains — worker ticks
        self-perpetuate only while work is pending).  On a parallel backend
        it fans the buffered :meth:`submit_at` schedule out to the shard
        cores, blocks until they all drain, and folds their results back
        into this runtime's telemetry, transmit log and drop counters
        (``until_ns``/``max_events`` don't apply there — the schedule runs
        to completion).
        """
        processed = self.backend.run(until_ns=until_ns, max_events=max_events)
        if self.backend.parallel:
            self._absorb_parallel_results()
        return processed

    def _absorb_parallel_results(self) -> None:
        """Fold the shard processes' results into the runtime's own counters."""
        results: Optional[List[ShardResult]] = self.backend.results
        if results is None:
            return
        self.ingress_drops = sum(result.drops for result in results)
        if self.record_transmits:
            # Within a shard the transmit order is exact; across shards the
            # same-nanosecond tie order is backend-defined, resolved here by
            # shard id so repeated runs merge deterministically.
            entries = [
                (departure_ns, result.shard_id, index, packet)
                for result in results
                for index, (departure_ns, packet) in enumerate(result.transmits)
            ]
            entries.sort(key=lambda entry: entry[:3])
            self.transmit_log = [
                (departure_ns, packet) for departure_ns, _shard, _idx, packet in entries
            ]

    def stop(self) -> None:
        """Cancel every outstanding shard, ingress, and rebalancing timer."""
        if self.simulator is None:
            return  # parallel backends hold no timers in this process
        for shard, handle in enumerate(self._tick_handles):
            if handle is not None and handle.active:
                self.simulator.cancel(handle)
            self._tick_handles[shard] = None
        for lane, handle in enumerate(self._ingress_handles):
            if handle is not None and handle.active:
                self.simulator.cancel(handle)
            self._ingress_handles[lane] = None
        if self._rebalance_handle is not None and self._rebalance_handle.active:
            self.simulator.cancel(self._rebalance_handle)
        self._rebalance_handle = None
        if self._supervise_handle is not None and self._supervise_handle.active:
            self.simulator.cancel(self._supervise_handle)
        self._supervise_handle = None
        if self._timeline_handle is not None and self._timeline_handle.active:
            self.simulator.cancel(self._timeline_handle)
        self._timeline_handle = None

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Packets in flight anywhere: RX rings + mailboxes + queues + lease deferrals.

        On a parallel backend before :meth:`run`, this counts the buffered
        schedule; after the run everything has drained by construction.
        """
        if self.backend.parallel:
            return self.backend.pending_submitted
        in_flight = sum(worker.pending for worker in self.workers)
        return in_flight + sum(core.backlog for core in self.ingress_cores)

    def flows_in_flight(self) -> int:
        """Sum of per-flow in-flight packet counts in the flow table.

        Zero after a complete drain: a non-zero residue means the ownership
        table believes packets exist that no queue holds (a stranded slot).
        """
        pending_col = self._pending
        return sum(pending_col[slot] for _flow_id, slot in self.flows.items())

    def residual_state(self) -> Dict[str, int]:
        """Post-drain audit: every gauge that must read zero once idle.

        The scenario fuzz suite's "no stranded state" invariant: after a
        workload fully drains there must be no packets anywhere in the
        pipeline, no flow-table slot claiming packets in flight, no flow on
        loan to a thief, no lease open or held, and no RX core parked on
        backpressure with a non-empty ring.
        """
        return {
            "pending_packets": self.pending,
            "flows_in_flight": self.flows_in_flight(),
            "loaned_flows": len(self.sharder.loaned_flows()),
            "open_leases": len(self._open_leases),
            "leases_held": sum(worker.leases_held for worker in self.workers),
            "flows_on_loan": sum(worker.flows_on_loan for worker in self.workers),
            "stalled_ingress_cores": sum(
                1
                for core in self.ingress_cores
                if core.stalled and not core.ring.empty
            ),
            "dead_shards": len(self._dead),
            "stalled_shards": len(self._stalled),
            "wedged_ingress_cores": len(self._wedged),
            "orphaned_lease_returns": sum(
                len(leases) for leases in self._orphan_returns.values()
            ),
        }

    @property
    def transmitted(self) -> int:
        """Packets released by all shards."""
        results = self.backend.results if self.backend.parallel else None
        if results is not None:
            return sum(result.stats.transmitted for result in results)
        total = sum(worker.stats.transmitted for worker in self.workers)
        if self._retired_shards:
            total += sum(
                retired.stats.transmitted
                for retirees in self._retired_shards.values()
                for retired in retirees
            )
        return total

    def _shard_telemetry(self) -> List[ShardTelemetry]:
        """Per-shard telemetry rows — live workers, or joined shard results."""
        results = self.backend.results if self.backend.parallel else None
        if results is not None:
            return [
                ShardTelemetry(
                    shard_id=result.shard_id,
                    ingested=result.stats.ingested,
                    transmitted=result.stats.transmitted,
                    ticks=result.stats.ticks,
                    idle_ticks=result.stats.idle_ticks,
                    backlog_peak=result.stats.backlog_peak,
                    cycles=result.cycles,
                    queue_stats=result.queue_stats,
                    mailbox=result.mailbox,
                    steals=StealStats(),
                )
                for result in results
            ]
        rows = []
        for worker in self.workers:
            stats = worker.stats
            queue_stats = worker.queue_stats_snapshot()
            steals = worker.steal.snapshot()
            cycles = worker.cost.total_cycles
            retirees = (
                self._retired_shards.get(worker.shard_id)
                if self._retired_shards
                else None
            )
            if retirees:
                # Fold the crashed incarnations' final counters back in so
                # a restart never makes work disappear from telemetry.
                stats = stats.snapshot()
                for retired in retirees:
                    stats.merge(retired.stats)
                    queue_stats.merge(retired.queue_stats)
                    steals.merge(retired.steals)
                    cycles += retired.cycles
                # merge() sums every field; a peak must take the max.
                stats.backlog_peak = max(
                    worker.stats.backlog_peak,
                    *(retired.stats.backlog_peak for retired in retirees),
                )
            rows.append(
                ShardTelemetry(
                    shard_id=worker.shard_id,
                    ingested=stats.ingested,
                    transmitted=stats.transmitted,
                    ticks=stats.ticks,
                    idle_ticks=stats.idle_ticks,
                    backlog_peak=stats.backlog_peak,
                    cycles=cycles,
                    queue_stats=queue_stats,
                    mailbox=worker.mailbox.stats,
                    steals=steals,
                )
            )
        return rows

    def _latency_telemetry(self) -> Dict[str, LogHistogram]:
        """Merge the per-seam latency histograms into runtime-wide ones.

        ``rx_sojourn`` is present whenever ingress cores ran (it is always
        recorded); the other seams appear only with ``latency_histograms``
        armed.  Crashed incarnations' histograms fold back in exactly like
        their counters, and a parallel run merges the picklable per-shard
        histograms off the joined :class:`ShardResult` rows.
        """
        latency: Dict[str, LogHistogram] = {}
        if self.ingress_cores:
            latency["rx_sojourn"] = LogHistogram.aggregate(
                core.sojourn_hist for core in self.ingress_cores
            )
        results = self.backend.results if self.backend.parallel else None
        if results is not None:
            mailbox = [r.mailbox_wait for r in results if r.mailbox_wait is not None]
            queue = [r.queue_wait for r in results if r.queue_wait is not None]
            e2e = [r.e2e_latency for r in results if r.e2e_latency is not None]
            if mailbox:
                latency["mailbox_wait"] = LogHistogram.aggregate(mailbox)
            if queue:
                latency["queue_sojourn"] = LogHistogram.aggregate(queue)
            if e2e:
                latency["e2e"] = LogHistogram.aggregate(e2e)
            return latency
        if not self.latency_histograms:
            return latency
        mailbox = [w.mailbox_wait for w in self.workers if w.mailbox_wait is not None]
        queue = [w.queue_wait for w in self.workers if w.queue_wait is not None]
        if self._retired_shards:
            for retirees in self._retired_shards.values():
                for retired in retirees:
                    if retired.mailbox_wait is not None:
                        mailbox.append(retired.mailbox_wait)
                    if retired.queue_wait is not None:
                        queue.append(retired.queue_wait)
        latency["mailbox_wait"] = LogHistogram.aggregate(mailbox)
        latency["queue_sojourn"] = LogHistogram.aggregate(queue)
        assert self._e2e is not None
        latency["e2e"] = self._e2e.snapshot()
        return latency

    def telemetry(self) -> RuntimeTelemetry:
        """Aggregate per-shard accounting into runtime-level telemetry.

        Works identically on every backend: the simulated path reads the
        live workers, a parallel run reads the picklable per-shard
        snapshots merged on join — same rows, same roll-up.
        """
        shards = self._shard_telemetry()
        cycles = [shard.cycles for shard in shards]
        results = self.backend.results if self.backend.parallel else None
        if results is not None:
            pacing_flows = sum(result.pacing_live_flows for result in results)
            pacing_bytes = sum(result.pacing_memory_bytes for result in results)
        else:
            pacing_flows = sum(len(worker.pacing) for worker in self.workers)
            pacing_bytes = sum(worker.pacing.memory_bytes() for worker in self.workers)
        flow_stats = self.flows.stats
        flow_state = {
            "live_flows": len(self.flows),
            "slot_limit": self.flows.slot_limit,
            "pacing_flows": pacing_flows,
            "memory_bytes": (
                self.flows.memory_bytes() + self.sharder.memory_bytes() + pacing_bytes
            ),
            "gc_sweeps": flow_stats.gc_sweeps,
            "gc_examined": flow_stats.gc_examined,
            "gc_reclaimed": flow_stats.gc_reclaimed,
            "window_evictions": self.sharder.stats.window_evictions,
        }
        ingress = [
            IngressTelemetry(
                core_id=core.core_id,
                stats=core.stats.snapshot(),
                cycles=core.cost.total_cycles,
                ring_backlog=core.backlog,
                ring_peak=core.ring.peak,
                sojourn=core.sojourn_hist.snapshot(),
            )
            for core in self.ingress_cores
        ]
        fault_block = self.fault_stats.as_dict()
        fault_block["recovery_log"] = list(self.recovery_log)
        return RuntimeTelemetry(
            shards=shards,
            queue_stats=QueueStats.aggregate(shard.queue_stats for shard in shards),
            total_cycles=sum(cycles) + sum(core.cycles for core in ingress),
            max_shard_cycles=max(cycles),
            transmitted=self.transmitted,
            ingress_drops=self.ingress_drops,
            migrations_applied=self.migrations_applied,
            rebalance_rounds=self.rebalancer.rounds if self.rebalancer else 0,
            # Summed over the telemetry rows, not the live workers, so the
            # counters of crashed incarnations stay included.
            steals_attempted=sum(shard.steals.requests_posted for shard in shards),
            steals_succeeded=sum(shard.steals.leases_received for shard in shards),
            packets_stolen=sum(shard.steals.packets_stolen for shard in shards),
            steal_cycles=sum(shard.steals.cycles_stolen for shard in shards),
            ingress=ingress,
            max_ingress_cycles=max((core.cycles for core in ingress), default=0.0),
            admission_drops=sum(core.stats.rx_dropped for core in ingress),
            flow_state=flow_state,
            faults=fault_block,
            latency=self._latency_telemetry(),
        )


__all__ = ["RuntimeTelemetry", "ShardTelemetry", "ShardedRuntime"]
