"""Table 1: qualitative comparison of schedulers.

The table itself is data (``repro.analysis.feature_matrix``); the benchmark
verifies the implemented artefacts actually exhibit the claimed properties
(the Eiffel queues provide ExtractMin and shaping; the timing wheel does not
offer ExtractMin; the PIFO baseline rank-on-enqueue only) and prints the
rendered table.
"""

from conftest import report

from repro.analysis import format_feature_matrix
from repro.core.queues import BucketSpec, CircularFFSQueue, TimingWheel


def check_claims() -> str:
    rendered = format_feature_matrix()
    cffs = CircularFFSQueue(BucketSpec(num_buckets=64))
    cffs.enqueue(3, "x")
    assert cffs.extract_min() == (3, "x")
    wheel = TimingWheel(num_slots=64)
    assert not hasattr(wheel, "extract_min")
    return rendered


def test_table1_feature_matrix(benchmark):
    rendered = benchmark(check_claims)
    report("Table 1 — scheduler feature comparison", rendered)
    benchmark.extra_info["rows"] = rendered.count("\n") - 3
