"""Unit tests for the exact and approximate gradient queues."""

import random

import pytest

from repro.core.queues import (
    ApproximateGradientQueue,
    BucketSpec,
    CircularApproximateGradientQueue,
    CircularGradientQueue,
    EmptyQueueError,
    GradientQueue,
    PriorityOutOfRangeError,
    gradient_capacity,
    gradient_shift,
    gradient_start_index,
)


class TestGradientMath:
    def test_shift_alpha_16_matches_paper(self):
        # The paper's worked example: alpha=16 gives a shift u(alpha) of 22.
        assert gradient_shift(16) in (22, 23)

    def test_start_index_alpha_16_near_paper(self):
        # Paper: g(alpha, M) decays to near zero at M = 124 for alpha = 16.
        assert 110 <= gradient_start_index(16) <= 135

    def test_capacity_alpha_16_order_of_magnitude(self):
        # Paper: 523 usable buckets for alpha=16 with 64-bit coefficients.
        assert 300 <= gradient_capacity(16, word_bits=64) <= 900

    def test_shift_grows_with_alpha(self):
        assert gradient_shift(32) > gradient_shift(16) > gradient_shift(4)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            gradient_shift(0)
        with pytest.raises(ValueError):
            gradient_start_index(-1)


class TestExactGradientQueue:
    def test_sorted_drain(self):
        rng = random.Random(2)
        queue = GradientQueue(BucketSpec(num_buckets=200))
        priorities = [rng.randrange(200) for _ in range(500)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_theorem1_critical_point_tracks_min(self):
        # The curvature coefficients always identify the extremal bucket
        # exactly (Theorem 1), regardless of which buckets are occupied.
        rng = random.Random(9)
        queue = GradientQueue(BucketSpec(num_buckets=64))
        occupied = set()
        for _ in range(200):
            priority = rng.randrange(64)
            queue.enqueue(priority, priority)
            occupied.add(priority)
            assert queue.peek_min()[0] == min(occupied)
            if rng.random() < 0.5:
                extracted, _ = queue.extract_min()
                assert extracted == min(occupied)
                # Only discard from the reference when the bucket drained.
                if all(p != extracted for p, _ in _entries(queue)):
                    occupied.discard(extracted)

    def test_coefficients_zero_when_empty(self):
        queue = GradientQueue(BucketSpec(num_buckets=32))
        queue.enqueue(3, "x")
        queue.extract_min()
        assert queue.curvature_coefficients() == (0, 0)

    def test_fifo_within_bucket(self):
        queue = GradientQueue(BucketSpec(num_buckets=16))
        queue.enqueue(4, "a")
        queue.enqueue(4, "b")
        assert queue.extract_min() == (4, "a")
        assert queue.extract_min() == (4, "b")

    def test_out_of_range(self):
        queue = GradientQueue(BucketSpec(num_buckets=16))
        with pytest.raises(PriorityOutOfRangeError):
            queue.enqueue(16, "x")

    def test_empty_raises(self):
        queue = GradientQueue(BucketSpec(num_buckets=16))
        with pytest.raises(EmptyQueueError):
            queue.extract_min()


def _entries(queue):
    """Peek at the internal buckets of a gradient queue (test helper)."""
    for bucket in queue._buckets:
        for entry in bucket:
            yield entry


class TestApproximateGradientQueue:
    def test_dense_occupancy_is_exact(self):
        # When every bucket is occupied the approximation has zero error.
        queue = ApproximateGradientQueue(
            BucketSpec(num_buckets=400), alpha=16, track_errors=True
        )
        for priority in range(400):
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(range(400))
        assert queue.average_selection_error == 0.0

    def test_uniform_workload_low_error(self):
        rng = random.Random(1)
        queue = ApproximateGradientQueue(
            BucketSpec(num_buckets=500), alpha=16, track_errors=True
        )
        for _ in range(4000):
            queue.enqueue(rng.randrange(500), None)
        while not queue.empty:
            queue.extract_min()
        # Uniformly filled buckets (8 packets/bucket on average) keep the
        # occupancy high and the error negligible.
        assert queue.average_selection_error < 1.0

    def test_sparse_occupancy_can_err_but_never_loses_elements(self):
        rng = random.Random(4)
        queue = ApproximateGradientQueue(
            BucketSpec(num_buckets=500), alpha=16, track_errors=True
        )
        priorities = [rng.randrange(500) for _ in range(50)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        # Conservation: every element comes back exactly once.
        assert sorted(drained) == sorted(priorities)

    def test_selection_error_rate_reported(self):
        queue = ApproximateGradientQueue(
            BucketSpec(num_buckets=300), alpha=16, track_errors=True
        )
        # Concentration at the low-priority end plus one lone high-priority
        # element is the paper's Appendix B error scenario.
        for priority in range(150, 300):
            queue.enqueue(priority, priority)
        queue.enqueue(10, "lone")
        queue.peek_min()
        assert queue.selection_error_rate >= 0.0
        assert queue.average_selection_error >= 0.0

    def test_strict_capacity_enforced(self):
        capacity = gradient_capacity(16, 64)
        with pytest.raises(ValueError):
            ApproximateGradientQueue(
                BucketSpec(num_buckets=capacity + 100),
                alpha=16,
                strict_capacity=True,
            )

    def test_error_tracking_off_by_default(self):
        queue = ApproximateGradientQueue(BucketSpec(num_buckets=100))
        queue.enqueue(5, "x")
        queue.extract_min()
        assert queue.average_selection_error == 0.0
        assert queue.selection_error_rate == 0.0

    def test_empty_raises(self):
        queue = ApproximateGradientQueue(BucketSpec(num_buckets=100))
        with pytest.raises(EmptyQueueError):
            queue.extract_min()

    def test_reset_error_tracking(self):
        queue = ApproximateGradientQueue(
            BucketSpec(num_buckets=100), track_errors=True
        )
        queue.enqueue(50, "x")
        queue.extract_min()
        queue.reset_error_tracking()
        assert queue.average_selection_error == 0.0


class TestCircularGradientQueues:
    def test_circular_exact_moving_range(self):
        queue = CircularGradientQueue(BucketSpec(num_buckets=32))
        now = 0
        for wave in range(20):
            for offset in (2, 7, 20):
                queue.enqueue(now + offset, (wave, offset))
            drained = [queue.extract_min()[0] for _ in range(3)]
            assert drained == sorted(drained)
            now += 32

    def test_circular_approx_conserves_elements(self):
        rng = random.Random(12)
        queue = CircularApproximateGradientQueue(BucketSpec(num_buckets=256), alpha=16)
        priorities = [rng.randrange(0, 512) for _ in range(600)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert sorted(drained) == sorted(priorities)

    def test_circular_extract_due(self):
        queue = CircularApproximateGradientQueue(BucketSpec(num_buckets=64))
        for timestamp in (3, 9, 40, 90):
            queue.enqueue(timestamp, f"t{timestamp}")
        released = queue.extract_due(now=40)
        assert sorted(p for p, _ in released) == [3, 9, 40]

    def test_beyond_horizon_rank_not_extracted_before_nearer_post_rotation_ranks(self):
        # Regression (mirrors the cFFS rotation fix): entries parked in the
        # overflow offset used to be dequeued with far-future ranks once
        # their window rotated into the primary position.
        queue = CircularGradientQueue(BucketSpec(num_buckets=4))
        queue.enqueue(100, "far-future")  # beyond both windows
        queue.enqueue(1, "due-now")
        assert queue.extract_min() == (1, "due-now")
        queue.enqueue(5, "rotates")
        assert queue.extract_min() == (5, "rotates")
        queue.enqueue(9, "nearer")  # new secondary window after rotation
        assert queue.extract_min() == (9, "nearer")
        assert queue.extract_min() == (100, "far-future")

    def test_overflow_drains_sorted_across_rotations(self):
        queue = CircularApproximateGradientQueue(BucketSpec(num_buckets=16), alpha=16)
        priorities = [70, 3, 40, 18, 90, 9]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_merged_stats_include_window_counters(self):
        queue = CircularApproximateGradientQueue(BucketSpec(num_buckets=64))
        queue.enqueue(1, "a")
        queue.extract_min()
        merged = queue.merged_stats()
        assert merged["divisions"] >= 1
        assert merged["enqueues"] >= 2  # adapter + window both count
