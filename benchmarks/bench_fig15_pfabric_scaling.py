"""Figure 15: pFabric max rate vs number of flows — cFFS vs binary heap.

The paper: the Eiffel (cFFS) implementation sustains line rate at ~5x the
number of flows of the binary-heap implementation, because on-dequeue
re-ranking is an O(1) bucket move instead of an O(n) re-heapify.
"""

from conftest import report

from repro.analysis import format_series
from repro.bess import BessExperimentConfig, crossover_flows, run_figure15

FLOW_COUNTS = [100, 1000, 10_000, 100_000]
CONFIG = BessExperimentConfig()


def run_experiment():
    return run_figure15(FLOW_COUNTS, config=CONFIG)


def test_fig15_pfabric_scaling(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = format_series(
        "pFabric max supported rate (1500 B packets, one core)",
        list(results.values()),
        x_label="flows",
        y_label="Mbps",
    )
    eiffel_cross = crossover_flows(results["pfabric_eiffel"], CONFIG.line_rate_bps)
    heap_cross = crossover_flows(results["pfabric_heap"], CONFIG.line_rate_bps)
    ratio = (eiffel_cross or 0) / max(1, heap_cross or 1)
    text += (
        f"\n\nflows sustaining line rate: eiffel={eiffel_cross}, heap={heap_cross}"
        f"\nEiffel supports ~{ratio:.0f}x more flows at line rate (paper: ~5x)"
    )
    report("Figure 15 — pFabric scaling", text)
    benchmark.extra_info["line_rate_flows"] = {
        "eiffel": eiffel_cross,
        "heap": heap_cross,
    }
    assert results["pfabric_eiffel"].y[-1] > results["pfabric_heap"].y[-1]
    assert ratio >= 5
