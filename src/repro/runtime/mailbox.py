"""Batched SPSC mailboxes: the ingress-to-shard handoff.

On real multi-core schedulers the dispatching core never touches another
core's queue structures directly — it posts packets into a single-producer /
single-consumer ring (a BESS queue module, a kernel per-CPU backlog) and the
owning core drains the ring in batches at the top of its scheduling loop.
That handoff is what keeps the hot data structures core-local.

:class:`Mailbox` models that ring: the ingress side pushes (bounded, with
drop accounting, like a real ring that overflows), the shard side drains one
batch per scheduling quantum.  In simulation both sides run on one thread,
so there is no locking — the SPSC discipline survives as the API shape:
exactly one producer calls ``push``/``push_batch`` and exactly one consumer
calls ``drain``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, Iterable, List, Optional, TypeVar

from ..core.queues.base import CounterStatsMixin

T = TypeVar("T")


@dataclass
class MailboxStats(CounterStatsMixin):
    """Counters kept by one mailbox."""

    pushed: int = 0
    dropped: int = 0
    drained: int = 0
    drain_calls: int = 0
    peak_occupancy: int = 0


class Mailbox(Generic[T]):
    """Bounded FIFO handoff between one producer and one consumer.

    Args:
        capacity: maximum resident items; ``None`` means unbounded (the
            simulation default — backpressure is then the runtime's problem,
            as it is for an unbounded qdisc backlog).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.stats = MailboxStats()
        self._items: Deque[T] = deque()

    # -- producer side -----------------------------------------------------

    def push(self, item: T) -> bool:
        """Post one item; returns False (and counts a drop) when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._items.append(item)
        self.stats.pushed += 1
        if len(self._items) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._items)
        return True

    def push_batch(self, items: Iterable[T]) -> int:
        """Post a burst of items; returns how many were accepted.

        Items beyond the free space are dropped (tail drop), matching ring
        overflow semantics: earlier items of the burst are kept.
        """
        return sum(1 for item in items if self.push(item))

    # -- consumer side -----------------------------------------------------

    def drain(self, limit: Optional[int] = None) -> List[T]:
        """Remove and return up to ``limit`` items in FIFO order.

        One call per scheduling quantum is the intended pattern; the whole
        available batch is returned when ``limit`` is ``None``.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        take = len(self._items) if limit is None else min(limit, len(self._items))
        batch = [self._items.popleft() for _ in range(take)]
        self.stats.drained += take
        self.stats.drain_calls += 1
        return batch

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """True when no items await the consumer."""
        return not self._items


__all__ = ["Mailbox", "MailboxStats"]
