"""Discrete-event simulation core for the datacenter fabric experiments."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Simulator:
    """A minimal discrete-event simulator (nanosecond clock).

    Events are ``(time, sequence, callback)`` triples in a binary heap; the
    sequence number keeps same-time events in scheduling order, which keeps
    packet orderings deterministic.
    """

    def __init__(self) -> None:
        self.now_ns = 0
        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0

    def schedule(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError("delay_ns must be non-negative")
        self.schedule_at(self.now_ns + delay_ns, callback)

    def schedule_at(self, time_ns: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time_ns`` (>= now)."""
        if time_ns < self.now_ns:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._events, (time_ns, next(self._sequence), callback))

    def run(self, until_ns: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the horizon / event budget / queue exhaustion.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._events:
            if until_ns is not None and self._events[0][0] > until_ns:
                break
            if max_events is not None and processed >= max_events:
                break
            time_ns, _seq, callback = heapq.heappop(self._events)
            self.now_ns = time_ns
            callback()
            processed += 1
        self._processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        """Events still queued."""
        return len(self._events)

    @property
    def processed_events(self) -> int:
        """Total events processed so far."""
        return self._processed


__all__ = ["Simulator"]
