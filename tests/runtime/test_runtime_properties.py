"""Property-based tests for the sharded runtime.

The load-bearing invariant of the whole subsystem: **sharding, rebalancing
and work stealing never reorder a flow** — whatever the flow mix, shard
count, pacing rate, submission pattern, migration schedule, or steal
interleaving, each flow's packets leave in exactly the order they were
submitted (the Eiffel per-flow primitive's contract, now across cores).
"""

from hypothesis import given, settings, strategies as st

from repro.core.model.packet import Packet
from repro.runtime import FlowSharder, ShardedRuntime

QUANTUM_NS = 10_000


@st.composite
def workloads(draw):
    """A random submission schedule: bursts of flow ids over time."""
    num_flows = draw(st.integers(min_value=1, max_value=12))
    num_bursts = draw(st.integers(min_value=1, max_value=8))
    bursts = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_flows - 1),
                min_size=1,
                max_size=30,
            )
        )
        for _ in range(num_bursts)
    ]
    return bursts


@given(
    bursts=workloads(),
    num_shards=st.integers(min_value=1, max_value=8),
    rate_kind=st.sampled_from(["unpaced", "fast", "slow"]),
    rebalance=st.booleans(),
    steal=st.booleans(),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_per_flow_fifo_never_violated(bursts, num_shards, rate_kind, rebalance, steal, hash_seed):
    rate = {"unpaced": None, "fast": 10e9, "slow": 50e6}[rate_kind]
    runtime = ShardedRuntime(
        num_shards,
        sharder=FlowSharder(num_shards, hash_seed=hash_seed),
        default_rate_bps=rate,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=16,
        rebalance_interval_ns=3 * QUANTUM_NS if rebalance else None,
        steal_enabled=steal,
        steal_batch=8,
        steal_min_backlog=1,
    )
    submitted = {}
    total = 0
    for burst in bursts:
        packets = [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in burst]
        for packet in packets:
            submitted.setdefault(packet.flow_id, []).append(packet.packet_id)
        runtime.submit_batch(packets)
        # Interleave submission with partial progress so migrations can land
        # between bursts of the same flow.
        runtime.run(until_ns=runtime.simulator.now_ns + 2 * QUANTUM_NS)
        total += len(packets)
    runtime.run()

    assert runtime.transmitted == total
    observed = {}
    for _now, packet in runtime.transmit_log:
        observed.setdefault(packet.flow_id, []).append(packet.packet_id)
    # Per-flow FIFO: transmit order equals submission order, exactly.
    assert observed == submitted


@given(
    num_shards=st.sampled_from([2, 4, 8]),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=20, deadline=None)
def test_uniform_hash_spreads_many_flows(num_shards, hash_seed):
    sharder = FlowSharder(num_shards, hash_seed=hash_seed)
    placements = [sharder.shard_for(flow_id) for flow_id in range(512)]
    counts = [placements.count(shard) for shard in range(num_shards)]
    # Every shard takes some flows, and no shard takes the majority of a
    # 512-flow population (an extremely weak bound any decent mix passes).
    assert min(counts) > 0
    assert max(counts) < 512 * 0.6


@given(bursts=workloads(), num_shards=st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_conservation_no_loss_no_duplication(bursts, num_shards):
    runtime = ShardedRuntime(
        num_shards, default_rate_bps=1e9, quantum_ns=QUANTUM_NS
    )
    all_ids = []
    for burst in bursts:
        packets = [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in burst]
        all_ids.extend(packet.packet_id for packet in packets)
        runtime.submit_batch(packets)
    runtime.run()
    released_ids = [packet.packet_id for _now, packet in runtime.transmit_log]
    assert sorted(released_ids) == sorted(all_ids)


@given(
    bursts=workloads(),
    num_shards=st.integers(min_value=2, max_value=8),
    rate_kind=st.sampled_from(["unpaced", "fast", "slow"]),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
    steal_batch=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=40, deadline=None)
def test_stealing_with_rebalancing_preserves_order_and_conservation(
    bursts, num_shards, rate_kind, hash_seed, steal_batch
):
    """Both skew repairs live at once: leases and migrations must compose.

    Whatever interleaving of steals, lease returns, deferred flushes and
    lazy migrations the schedule produces, per-flow delivery order equals
    arrival order exactly and no packet is lost or duplicated.
    """
    rate = {"unpaced": None, "fast": 10e9, "slow": 50e6}[rate_kind]
    runtime = ShardedRuntime(
        num_shards,
        sharder=FlowSharder(num_shards, hash_seed=hash_seed),
        default_rate_bps=rate,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=16,
        rebalance_interval_ns=3 * QUANTUM_NS,
        steal_enabled=True,
        steal_batch=steal_batch,
        steal_min_backlog=1,
    )
    submitted = {}
    total = 0
    for burst in bursts:
        packets = [Packet(flow_id=flow_id, size_bytes=1500) for flow_id in burst]
        for packet in packets:
            submitted.setdefault(packet.flow_id, []).append(packet.packet_id)
        runtime.submit_batch(packets)
        # Partial progress between bursts so leases and migrations land at
        # every phase of the flows' lifetime, not only at the very end.
        runtime.run(until_ns=runtime.simulator.now_ns + 2 * QUANTUM_NS)
        total += len(packets)
    runtime.run()

    assert runtime.transmitted == total
    observed = {}
    for _now, packet in runtime.transmit_log:
        observed.setdefault(packet.flow_id, []).append(packet.packet_id)
    # Per-flow FIFO *and* conservation in one equality: same flows, same
    # packets, same order.
    assert observed == submitted
    # Every lease returned; no flow is stranded on loan.
    assert runtime.sharder.loaned_flows() == {}
    assert all(worker.flows_on_loan == 0 for worker in runtime.workers)
    assert all(worker.leases_held == 0 for worker in runtime.workers)
