"""Figure 19: normalized FCT vs load — DCTCP vs pFabric vs pFabric-Approx.

Paper setup: ns-2, 144-host leaf-spine, web-search workload, load 0.1-0.8;
three panels (average FCT of (0,100kB] flows, their 99th percentile, and the
average FCT of (10MB,inf) flows).  Here: the packet-level simulator on a
scaled leaf-spine fabric with the same workload.  The claim under test is
that replacing the exact switch priority queue with the approximate gradient
queue leaves the FCT curves essentially unchanged, with DCTCP as the anchor.

The experiment now runs from the declarative
:func:`repro.scenario.figures.figure19_spec`: the compiled scenario binds
the same :class:`~repro.netsim.FabricExperimentConfig` the hand-wired
version used (the golden-equivalence suite asserts the results are
identical), and the shape checks below are the spec's own assertion blocks
(``fct_small_flow_advantage`` and ``fct_approx_tolerance``), enforced by
``result.check()`` inside the scenario runner.
"""

from conftest import report

from repro.analysis import Series, format_series
from repro.scenario.figures import figure19_spec, run_figure19_from_spec

SPEC = figure19_spec()
LOADS = list(SPEC.traffic.loads)


def run_experiment():
    # Runs the compiled scenario and enforces its assertion blocks: pFabric
    # must beat DCTCP on small-flow FCT at the highest load, and the
    # approximate variant must track exact pFabric within the tolerance.
    return run_figure19_from_spec(SPEC)


def test_fig19_normalized_fct(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    panels = {
        "avg normalized FCT, (0, 100kB] flows": lambda r: r.small_flow_avg(),
        "p99 normalized FCT, (0, 100kB] flows": lambda r: r.small_flow_p99(),
        "avg normalized FCT, (10MB, inf) flows": lambda r: r.large_flow_avg(),
    }
    text_blocks = []
    summary = {}
    for title, metric in panels.items():
        series = []
        for scheme, runs in results.items():
            current = Series(name=scheme)
            for run in runs:
                value = metric(run)
                current.add(run.load, round(value, 2) if value == value else -1.0)
            series.append(current)
        summary[title] = {s.name: dict(zip(s.x, s.y)) for s in series}
        text_blocks.append(
            format_series(title, series, x_label="load", y_label="norm. FCT")
        )
    report("Figure 19 — pFabric with approximate queues", "\n\n".join(text_blocks))
    benchmark.extra_info["panels"] = summary

    # Belt and braces on top of the spec's declarative assertions: the same
    # shape checks stated directly against the returned runs.
    dctcp = results["dctcp"][-1]
    pfabric = results["pfabric"][-1]
    approx = results["pfabric_approx"][-1]
    assert pfabric.small_flow_avg() < dctcp.small_flow_avg()
    assert abs(approx.small_flow_avg() - pfabric.small_flow_avg()) <= max(
        0.5, 0.5 * pfabric.small_flow_avg()
    )
