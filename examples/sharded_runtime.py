#!/usr/bin/env python3
"""Sharded runtime demo: 4 virtual cores, Zipf traffic, rebalancing, stealing.

Builds a 4-shard scheduling runtime (one Eiffel cFFS queue + per-flow pacing
per shard, RSS-style flow hashing at ingress), pushes a Zipf-skewed packet
stream through it, and compares shard balance across the three policies:

* **static** — hashing alone: the shard that drew the elephant flows is the
  bottleneck core;
* **rebalance** — the skew-aware rebalancer migrates hot flows off the
  bottleneck shard, waiting for each flow to drain first so per-flow FIFO
  is never violated; a single elephant flow, however, cannot be migrated
  away from itself;
* **rebalance + steal** — idle shards additionally take over the busy
  shard's imminent due window under an order-preserving flow lease
  (ownership, timestamps and pacing state travel with the lease), which
  splits even one elephant flow across cores *in time*.

The **execution backend** walkthrough then reruns a workload with
``backend="process"``: the same four shards execute as four real OS
processes (arrival schedules crossing over shared-memory SPSC rings, each
shard replaying its schedule on a private virtual clock), and the modelled
telemetry comes back *identical* to the simulated run — the simulation's
per-core claims, executed on actual cores.

It then switches on the **ingress pipeline** (``ingress_cores=N``): RX cores
with their own cycle accounts sit between the NIC bursts and the shard
mailboxes, classify in batches, and pause on mailbox watermarks — the
backpressure walkthrough at the end drives the same pipeline at 2x its
paced drain rate and shows that nothing is lost (the RX ring grows), while
arming a CoDel-style admission policy trades a bounded drop rate for a far
lower p99 RX sojourn.

The closing **flow-state engine** block measures what per-flow state costs
at scale: bytes/flow for a dict of ``ShapingTransaction`` objects vs the
array-backed ``PacingTable`` (several times smaller), then a churn storm —
short Zipf flows from a million-id universe — through the runtime with
bounded incremental GC sweeps, showing the dense slot space tracking the
live population rather than the id universe.

Run:  python examples/sharded_runtime.py
"""

import gc
import random
import time
import tracemalloc

from repro.core.model import Packet
from repro.core.model.transactions import RateLimit, ShapingTransaction
from repro.cpu import CpuMeter
from repro.runtime import CoDelPolicy, PacingTable, ShardedRuntime
from repro.traffic import OpenLoopBurstSource, ZipfFlowSampler

NUM_SHARDS = 4
NUM_FLOWS = 64
NUM_PACKETS = 6_000
QUANTUM_NS = 10_000
INGRESS_BURST = 128  # one interrupt-coalesced NIC RX pull
INGRESS_BURST_QUANTA = 8
RATE_BPS = 10e9


def drive(rebalance: bool, steal: bool = False):
    """Run the Zipf workload through a fresh runtime; return its telemetry."""
    runtime = ShardedRuntime(
        NUM_SHARDS,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        rebalance_interval_ns=16 * QUANTUM_NS if rebalance else None,
        steal_enabled=steal,
        record_transmits=False,
    )
    sampler = ZipfFlowSampler(NUM_FLOWS, skew=1.2, rng=random.Random(7))
    flow_ids = sampler.sample_flows(NUM_PACKETS)
    for index in range(0, NUM_PACKETS, INGRESS_BURST):
        chunk = flow_ids[index : index + INGRESS_BURST]
        when_ns = (index // INGRESS_BURST) * INGRESS_BURST_QUANTA * QUANTUM_NS

        def offer(chunk=chunk):
            runtime.submit_batch([Packet(flow_id=f, size_bytes=1500) for f in chunk])

        runtime.simulator.schedule_at(when_ns, offer)
    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start
    return runtime.telemetry(), elapsed


def describe(title: str, telemetry, elapsed: float) -> None:
    print(f"{title}:")
    for shard in telemetry.shards:
        bar = "#" * (shard.transmitted // 60)
        print(
            f"  shard {shard.shard_id}: {shard.transmitted:5d} packets  "
            f"{shard.cycles / 1e3:7.1f} kcycles  {bar}"
        )
    line = (
        f"  imbalance (max/mean) = {telemetry.imbalance:.2f}, "
        f"bottleneck = {telemetry.max_shard_cycles / 1e3:.1f} kcycles, "
        f"migrations = {telemetry.migrations_applied}"
    )
    if telemetry.steals_succeeded:
        line += (
            f", steals = {telemetry.steals_succeeded} leases / "
            f"{telemetry.packets_stolen} packets"
        )
    print(line)
    meter_hz = CpuMeter().cycles_per_second  # the clock the benchmarks model
    modelled = telemetry.transmitted * meter_hz / telemetry.max_shard_cycles
    wall = telemetry.transmitted / max(elapsed, 1e-9)
    print(
        f"  throughput: modelled {modelled / 1e6:.1f} Mops/s "
        f"(bottleneck core) | wall-clock {wall / 1e6:.3f} Mops/s "
        f"(single-threaded harness)"
    )
    print()


def drive_backend(backend: str):
    """The same timed workload on a chosen execution backend."""
    runtime = ShardedRuntime(
        NUM_SHARDS,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        gc_interval_packets=None,  # keep the simulated run decomposable too
        backend=backend,
        record_transmits=False,
    )
    sampler = ZipfFlowSampler(NUM_FLOWS, skew=1.2, rng=random.Random(7))
    flow_ids = sampler.sample_flows(NUM_PACKETS)
    # submit_at is the backend-portable way to drive a timed workload: the
    # simulated backend schedules the burst as a clock event, a parallel
    # backend buffers it into the schedule run() fans out to the shard cores.
    for index in range(0, NUM_PACKETS, INGRESS_BURST):
        chunk = flow_ids[index : index + INGRESS_BURST]
        when_ns = (index // INGRESS_BURST) * INGRESS_BURST_QUANTA * QUANTUM_NS
        runtime.submit_at(when_ns, [Packet(flow_id=f, size_bytes=1500) for f in chunk])
    start = time.perf_counter()
    runtime.run()
    return runtime.telemetry(), time.perf_counter() - start


def describe_backends() -> None:
    print(
        "\n--- execution backends: the modelled cores made real ---\n"
        'The same workload, once with backend="simulated" (all shards on one\n'
        'virtual clock) and once with backend="process" (one OS process per\n'
        "shard, fed over shared-memory rings, private virtual clocks):\n"
    )
    simulated, simulated_sec = drive_backend("simulated")
    process, process_sec = drive_backend("process")
    for title, telemetry, elapsed in (
        ("simulated", simulated, simulated_sec),
        ("process", process, process_sec),
    ):
        per_shard = "/".join(str(s.transmitted) for s in telemetry.shards)
        print(
            f"  {title:<10} {telemetry.transmitted} transmitted "
            f"(per shard {per_shard}), bottleneck "
            f"{telemetry.max_shard_cycles / 1e3:.1f} kcycles, "
            f"wall {elapsed * 1e3:.0f} ms"
        )
    identical = [s.as_dict() for s in simulated.shards] == [
        s.as_dict() for s in process.shards
    ]
    print(
        f"  modelled telemetry identical: {identical} — the parallel run is\n"
        "  a bit-exact replay of the simulation, so wall clock is the only\n"
        "  thing that changes with the host's core count."
    )


def drive_ingress(admission, overload_factor=2.0, num_packets=8_000):
    """Run the pipeline behind one RX core at ``overload_factor``x capacity."""
    flows, rate_bps = 16, 1e9  # aggregate drain ~1.33 Mpps
    runtime = ShardedRuntime(
        2,
        default_rate_bps=rate_bps,
        quantum_ns=QUANTUM_NS,
        ingress_cores=1,
        admission=admission,
        rx_ring_capacity=256,
        mailbox_capacity=96,
        shard_backlog_limit=64,
        record_transmits=False,
    )
    capacity_pps = flows * rate_bps / (1500 * 8)
    source = OpenLoopBurstSource(
        offered_pps=overload_factor * capacity_pps, num_flows=flows
    )
    offered = 0
    for when_ns, burst in source.bursts(num_packets):
        offered += len(burst)
        runtime.simulator.schedule_at(
            when_ns, (lambda b: (lambda: runtime.submit_batch(b)))(burst)
        )
    runtime.run()
    telemetry = runtime.telemetry()
    # RX sojourns are always recorded into a bounded log2-bucketed histogram.
    p99 = telemetry.ingress[0].sojourn.quantile(0.99)
    return offered, telemetry, p99


def describe_ingress() -> None:
    print(
        "\n--- ingress pipeline: backpressure vs admission at 2x overload ---\n"
        "One RX core (its own cycle account) feeds 2 shards through bounded\n"
        "mailboxes; the offered rate is twice what the paced flows can drain.\n"
    )
    offered, plain, p99 = drive_ingress(admission=None)
    core = plain.ingress[0]
    print(
        f"  backpressure: {plain.transmitted}/{offered} delivered, "
        f"{plain.admission_drops + plain.ingress_drops} dropped "
        f"(ring grew to {core.ring_peak}), "
        f"{core.stats.stalled_ticks} stalled pulls, p99 RX sojourn {p99 / 1e3:.0f} us"
    )
    offered, codel, p99 = drive_ingress(
        admission=lambda: CoDelPolicy(target_ns=50_000, interval_ns=100_000)
    )
    print(
        f"  CoDel:        {codel.transmitted}/{offered} delivered, "
        f"{codel.admission_drops} dropped, p99 RX sojourn {p99 / 1e3:.0f} us\n"
        "  Backpressure never loses a packet — the RX ring absorbs the burst —\n"
        "  while CoDel-style admission bounds latency instead of occupancy.\n"
        "  The bottleneck analysis now has an ingress row: "
        f"bottleneck = max(shard {codel.max_shard_cycles / 1e3:.0f}k, "
        f"ingress {codel.max_ingress_cycles / 1e3:.0f}k) kcycles."
    )


def _held_bytes(build) -> int:
    """tracemalloc delta of whatever ``build`` leaves alive."""
    gc.collect()
    tracemalloc.start()
    try:
        base = tracemalloc.get_traced_memory()[0]
        state = build()
        held = tracemalloc.get_traced_memory()[0] - base
    finally:
        tracemalloc.stop()
    del state
    return held


def describe_flow_state(num_flows: int = 50_000) -> None:
    print(
        "\n--- flow-state engine: bytes/flow at scale ---\n"
        "Per-flow pacing state held two ways: one ShapingTransaction object\n"
        f"per flow in a dict (the pre-engine layout) vs one PacingTable slot\n"
        f"(dense array columns), both holding {num_flows} live flows:\n"
    )

    def dict_engine():
        return {
            flow: ShapingTransaction(f"flow-{flow}", RateLimit(RATE_BPS))
            for flow in range(num_flows)
        }

    def array_engine():
        table = PacingTable(shard_id=0)
        for flow in range(num_flows):
            table.touch(flow, RATE_BPS, 1500, 0)
        return table

    dict_bytes = _held_bytes(dict_engine) / num_flows
    array_bytes = _held_bytes(array_engine) / num_flows
    print(
        f"  dict of objects: {dict_bytes:6.1f} B/flow\n"
        f"  array columns:   {array_bytes:6.1f} B/flow "
        f"({dict_bytes / array_bytes:.1f}x smaller)"
    )

    # The same engine inside the runtime, under churn with incremental GC:
    # short Zipf flows over a million-id universe arrive and die, bounded
    # GC sweeps reclaim idle slots, and the dense slot space tracks the
    # *live* population, not the total id universe.
    runtime = ShardedRuntime(
        NUM_SHARDS,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        gc_interval_packets=256,
        gc_sweep_limit=128,
        record_transmits=False,
    )
    flow_ids = ZipfFlowSampler(1_000_000, skew=1.05, seed=11).sample_flows(4_000)
    runtime.submit_batch([Packet(flow_id=f, size_bytes=1500) for f in flow_ids])
    runtime.run()
    state = runtime.telemetry().flow_state
    print(
        f"  churn storm (4k pkts, 1M-id Zipf universe): "
        f"{state['live_flows']} flows live at drain, "
        f"slot high-water {state['slot_limit']}, "
        f"{state['gc_reclaimed']} reclaimed in {state['gc_sweeps']} bounded "
        f"sweeps, state {state['memory_bytes'] / 1024:.0f} KiB"
    )


def main() -> None:
    print(
        f"{NUM_PACKETS} packets, {NUM_FLOWS} Zipf-skewed flows, "
        f"{NUM_SHARDS} shards (one cFFS queue + shaper per shard)\n"
    )
    static, static_sec = drive(rebalance=False)
    describe("static RSS hashing", static, static_sec)
    rebalanced, rebalanced_sec = drive(rebalance=True)
    describe("with skew-aware rebalancing", rebalanced, rebalanced_sec)
    stolen, stolen_sec = drive(rebalance=True, steal=True)
    describe("with rebalancing + work stealing", stolen, stolen_sec)
    gain = static.max_shard_cycles / stolen.max_shard_cycles
    print(
        "The rebalancer pins hot flows away from the bottleneck shard once\n"
        "they drain, and idle shards lease the remaining elephant's due\n"
        "windows (per-flow FIFO preserved by the ownership handoff), cutting\n"
        f"the bottleneck core's work by {100 * (1 - 1 / gain):.0f}% — "
        f"{gain:.2f}x modelled aggregate throughput."
    )
    describe_backends()
    describe_ingress()
    describe_flow_state()


if __name__ == "__main__":
    main()
