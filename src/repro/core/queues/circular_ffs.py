"""Circular Hierarchical FFS-based queue — the paper's cFFS (Figure 4).

Packet ranks (deadlines, transmission timestamps) span a *moving* range: the
window of valid ranks slides forward as time advances.  A plain hierarchical
FFS queue covers a fixed range only, and naive modulo indexing corrupts the
bitmap ordering, so the cFFS composes **two** hierarchical FFS queues:

* the *primary* queue covers ``[h_index, h_index + q_size * granularity)``;
* the *secondary* queue covers the range immediately after the primary.

Elements beyond even the secondary range are enqueued into the secondary
queue's **last bucket** (losing exact ordering, which the paper accepts
because ranges are easy to size per policy).  When the primary queue drains
and the minimum now lives in the secondary queue, the two queues *rotate*:
pointers (bucket arrays + bitmaps) are swapped and ``h_index`` advances by
one window.  On rotation the incoming primary's unsorted overflow bucket is
re-dispatched into the new secondary range, so the ordering approximation
stays bounded to one window as the paper intends — far-future ranks are
never dequeued as if they were due.

This is the shard workers' hot queue (20k buckets per shard), so the
interpreter-level layout matters: both windows draw their bucket FIFOs from
one shared free list (``_buckets[i] is None`` while bucket ``i`` is empty,
drained deques are recycled, nothing is preallocated), the bitmap trees
memoise their minimum (see :class:`~repro.core.queues.hierarchical_ffs.FFSBitmapTree`),
and the batch paths run on hoisted locals with per-batch stats settlement.
The modelled operation counts are identical to the straightforward
implementation — only the interpreter work changed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Iterator, List, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    validate_priority,
)
from .ffs import DEFAULT_WORD_WIDTH
from .hierarchical_ffs import FFSBitmapTree


class _Window:
    """One of the two rotating halves of a cFFS: buckets + bitmap tree.

    ``buckets[i]`` is ``None`` while bucket ``i`` is empty; deques are
    acquired from the queue-wide free list on first append and recycled when
    a bucket drains.
    """

    __slots__ = ("buckets", "tree", "size", "free")

    def __init__(
        self,
        num_buckets: int,
        word_width: int,
        free: List[Deque[tuple[int, Any]]],
    ) -> None:
        self.buckets: list[Optional[Deque[tuple[int, Any]]]] = [None] * num_buckets
        self.tree = FFSBitmapTree(num_buckets, word_width)
        self.size = 0
        self.free = free

    @property
    def empty(self) -> bool:
        return self.size == 0

    def recycle(self, bucket: int, entries: Deque[tuple[int, Any]]) -> None:
        """Return a drained bucket deque to the shared free list."""
        self.buckets[bucket] = None
        self.free.append(entries)


class CircularFFSQueue(IntegerPriorityQueue):
    """cFFS: a hierarchical FFS queue over a moving range of priorities.

    Args:
        spec: bucket layout. ``spec.base_priority`` seeds the initial
            ``h_index`` (minimum priority covered by the primary window).
        word_width: FFS word width (64 matches x86-64 BSF).
        allow_stale: when True (default), priorities smaller than ``h_index``
            are clamped into the first bucket of the primary window instead
            of raising.  This mirrors how a shaper treats packets whose
            transmission time is already in the past: send as soon as
            possible.
    """

    __slots__ = ("word_width", "allow_stale", "h_index", "_primary", "_secondary", "_free")

    def __init__(
        self,
        spec: BucketSpec,
        word_width: int = DEFAULT_WORD_WIDTH,
        allow_stale: bool = True,
    ) -> None:
        super().__init__(spec)
        self.word_width = word_width
        self.allow_stale = allow_stale
        self.h_index = spec.base_priority
        self._free: List[Deque[tuple[int, Any]]] = []
        self._primary = _Window(spec.num_buckets, word_width, self._free)
        self._secondary = _Window(spec.num_buckets, word_width, self._free)

    # -- range bookkeeping -------------------------------------------------

    @property
    def window_span(self) -> int:
        """Priority units covered by one window."""
        return self.spec.num_buckets * self.spec.granularity

    @property
    def primary_range(self) -> tuple[int, int]:
        """Half-open priority range ``[lo, hi)`` covered by the primary window."""
        return self.h_index, self.h_index + self.window_span

    @property
    def secondary_range(self) -> tuple[int, int]:
        """Half-open priority range covered by the secondary window."""
        lo = self.h_index + self.window_span
        return lo, lo + self.window_span

    def _bucket_in_primary(self, priority: int) -> int:
        return (priority - self.h_index) // self.spec.granularity

    def _bucket_in_secondary(self, priority: int) -> int:
        lo = self.h_index + self.window_span
        return (priority - lo) // self.spec.granularity

    # -- core operations ----------------------------------------------------

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        stats = self.stats
        stats.enqueues += 1
        stats.bucket_lookups += 1
        lo, hi = self.primary_range
        if priority < lo:
            if not self.allow_stale:
                raise ValueError(
                    f"priority {priority} precedes queue head index {lo}"
                )
            # Stale rank: treat as due immediately.
            self._enqueue_window(self._primary, 0, priority, item)
            return
        if priority < hi:
            self._enqueue_window(
                self._primary, self._bucket_in_primary(priority), priority, item
            )
            return
        slo, shi = self.secondary_range
        if priority < shi:
            self._enqueue_window(
                self._secondary, self._bucket_in_secondary(priority), priority, item
            )
            return
        # Beyond both windows: last bucket of the secondary queue, unsorted.
        stats.overflow_enqueues += 1
        self._enqueue_window(
            self._secondary, self.spec.num_buckets - 1, priority, item
        )

    def _enqueue_window(
        self, window: _Window, bucket: int, priority: int, item: Any
    ) -> None:
        entries = window.buckets[bucket]
        if entries is None:
            free = window.free
            entries = free.pop() if free else deque()
            window.buckets[bucket] = entries
            self.stats.word_scans += window.tree.set(bucket)
        entries.append((priority, item))
        window.size += 1
        self._size += 1

    def _rotate(self) -> None:
        """Swap primary and secondary windows and advance ``h_index``.

        The incoming primary window may carry an unsorted overflow (last)
        bucket of beyond-horizon ranks; those are re-dispatched into the new
        secondary range so they are not dequeued as if they were due.
        """
        self._primary, self._secondary = self._secondary, self._primary
        self.h_index += self.window_span
        self.stats.rotations += 1
        self._rebucket_overflow()

    def _rebucket_overflow(self) -> None:
        """Re-dispatch the new primary's overflow bucket after a rotation.

        Entries whose rank falls inside the last bucket's own range stay put;
        everything else belongs to the new secondary window (or its overflow
        bucket) now that ``h_index`` has advanced.
        """
        last = self.spec.num_buckets - 1
        primary = self._primary
        entries = primary.buckets[last]
        if entries is None:
            return
        last_floor = self.h_index + last * self.spec.granularity
        _lo, hi = self.primary_range
        if all(last_floor <= priority < hi for priority, _item in entries):
            return  # everything legitimately belongs to the last bucket
        free = self._free
        keep: Deque[tuple[int, Any]] = free.pop() if free else deque()
        moved = 0
        scanned = 0
        stats = self.stats
        _slo, shi = self.secondary_range
        secondary = self._secondary
        while entries:
            entry = entries.popleft()
            priority = entry[0]
            stats.linear_scans += 1
            if priority < hi:
                window = primary
                bucket = self._bucket_in_primary(priority)
                if bucket == last:
                    keep.append(entry)
                    continue
            elif priority < shi:
                window = secondary
                bucket = self._bucket_in_secondary(priority)
            else:
                window = secondary
                bucket = last
            target = window.buckets[bucket]
            if target is None:
                target = free.pop() if free else deque()
                window.buckets[bucket] = target
                scanned += window.tree.set(bucket)
            target.append(entry)
            if window is secondary:
                moved += 1
        if keep:
            entries.extend(keep)
            keep.clear()
            free.append(keep)
        else:
            free.append(keep)
            scanned += primary.tree.clear(last)
            primary.recycle(last, entries)
        stats.word_scans += scanned
        primary.size -= moved
        secondary.size += moved

    def _fast_forward_if_overflow_only(self) -> None:
        """Jump ``h_index`` ahead when only far-future overflow ranks remain.

        Called with an empty primary window.  If every remaining element sits
        in the secondary's overflow bucket and none of them lands within the
        next window either, rotating one window at a time would shuffle the
        same overflow entries forward once per window; instead ``h_index``
        jumps straight to the window preceding the minimum remaining rank so
        the upcoming rotation places it in the primary range.
        """
        last = self.spec.num_buckets - 1
        first, scanned = self._secondary.tree.first_set()
        self.stats.word_scans += scanned
        if first != last:
            return
        entries = self._secondary.buckets[last]
        self.stats.linear_scans += len(entries)
        min_priority = min(priority for priority, _item in entries)
        span = self.window_span
        if min_priority < self.h_index + 2 * span:
            return
        self.h_index += ((min_priority - self.h_index) // span - 1) * span

    def _advance_to_nonempty(self) -> _Window:
        """Rotate until the primary window holds the minimum element."""
        while self._primary.size == 0 and self._secondary.size != 0:
            self._fast_forward_if_overflow_only()
            self._rotate()
        if self._primary.size == 0:
            raise EmptyQueueError("circular FFS queue is empty")
        return self._primary

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty CircularFFSQueue")
        window = self._advance_to_nonempty()
        bucket, scanned = window.tree.first_set()
        stats = self.stats
        stats.word_scans += scanned
        entries = window.buckets[bucket]
        entry = entries.popleft()
        window.size -= 1
        if not entries:
            stats.word_scans += window.tree.clear(bucket)
            window.recycle(bucket, entries)
        stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty CircularFFSQueue")
        window = self._advance_to_nonempty()
        bucket, scanned = window.tree.first_set()
        self.stats.word_scans += scanned
        return window.buckets[bucket][0]

    # -- batch operations --------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one bucket lookup and tree update per bucket.

        Packets append straight into their bucket FIFOs (no intermediate
        grouping lists); the distinct-bucket count that the amortised
        ``bucket_lookups`` charge needs is tracked with a key set.  Counters
        settle in one place even if validation rejects a pair mid-batch — in
        which case the already-inserted prefix stays enqueued and counted,
        exactly like the base class's per-element default.
        """
        stats = self.stats
        lo, hi = self.primary_range
        _slo, shi = self.secondary_range
        granularity = self.spec.granularity
        num_buckets = self.spec.num_buckets
        last = num_buckets - 1
        allow_stale = self.allow_stale
        primary = self._primary
        secondary = self._secondary
        primary_buckets = primary.buckets
        secondary_buckets = secondary.buckets
        free = self._free
        seen: set[int] = set()
        seen_add = seen.add
        count = 0
        primary_count = 0
        overflowed = 0
        scans = 0
        try:
            for pair in pairs:
                priority = pair[0]
                if type(priority) is not int:
                    priority = validate_priority(priority)
                    pair = (priority, pair[1])
                if priority < hi:
                    if priority >= lo:
                        bucket = (priority - lo) // granularity
                    elif allow_stale:
                        bucket = 0  # stale rank: due immediately
                    else:
                        raise ValueError(
                            f"priority {priority} precedes queue head index {lo}"
                        )
                    window = primary
                    buckets = primary_buckets
                    seen_add(bucket)
                    primary_count += 1
                else:
                    if priority < shi:
                        bucket = (priority - hi) // granularity
                    else:
                        overflowed += 1
                        bucket = last
                    window = secondary
                    buckets = secondary_buckets
                    seen_add(num_buckets + bucket)
                entries = buckets[bucket]
                if entries is None:
                    entries = free.pop() if free else deque()
                    buckets[bucket] = entries
                    scans += window.tree.set(bucket)
                entries.append(pair)
                count += 1
        finally:
            stats.enqueues += count
            stats.overflow_enqueues += overflowed
            stats.bucket_lookups += len(seen)
            stats.word_scans += scans
            primary.size += primary_count
            secondary.size += count - primary_count
            self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one tree walk per bucket visited."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        taken = 0
        while taken < n and self._size:
            window = self._advance_to_nonempty()
            bucket, scanned = window.tree.first_set()
            scans = scanned
            entries = window.buckets[bucket]
            space = n - taken
            if space >= len(entries):
                take = len(entries)
                batch.extend(entries)
                entries.clear()
                scans += window.tree.clear(bucket)
                window.recycle(bucket, entries)
            else:
                take = space
                popleft = entries.popleft
                for _ in range(take):
                    batch.append(popleft())
            window.size -= take
            taken += take
            self._size -= take
            stats = self.stats
            stats.word_scans += scans
            stats.dequeues += take
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        """Drain every element whose priority is ``<= now`` (up to ``limit``).

        This is the operation a shaping qdisc performs when its timer fires:
        release every packet whose transmission timestamp has passed.  The
        batch implementation walks the bitmap tree once per bucket drained
        instead of twice per element (peek + extract), and a bucket whose
        whole priority range has passed is released with one extend instead
        of per-element head checks (the re-bucketing invariant guarantees the
        primary window holds no beyond-range rank outside bucket 0's stale
        clamps, which are always due).
        """
        released: list[tuple[int, Any]] = []
        granularity = self.spec.granularity
        stats = self.stats
        taken = 0
        while self._size and (limit is None or taken < limit):
            window = self._advance_to_nonempty()
            bucket, scanned = window.tree.first_set()
            scans = scanned
            entries = window.buckets[bucket]
            # Whole-bucket fast path.  Every entry of a primary bucket has a
            # rank below the bucket ceiling (stale ranks are clamped into
            # bucket 0 and are older still), so a passed ceiling means the
            # whole FIFO is due.
            if (
                self.h_index + (bucket + 1) * granularity - 1 <= now
                and (limit is None or limit - taken >= len(entries))
            ):
                take = len(entries)
                released.extend(entries)
                entries.clear()
                scans += window.tree.clear(bucket)
                window.recycle(bucket, entries)
                window.size -= take
                taken += take
                self._size -= take
                stats.word_scans += scans
                stats.dequeues += take
                continue
            take = 0
            while entries and entries[0][0] <= now:
                if limit is not None and taken + take >= limit:
                    break
                released.append(entries.popleft())
                take += 1
            window.size -= take
            taken += take
            self._size -= take
            stats.word_scans += scans
            stats.dequeues += take
            if not entries:
                stats.word_scans += window.tree.clear(bucket)
                window.recycle(bucket, entries)
                continue
            break  # head not yet due, or the limit was reached
        return released

    def remove(self, priority: int, item: Any) -> bool:
        """Remove a specific ``(priority, item)`` pair; True when found.

        Candidate buckets that are empty sit behind the free list as ``None``
        entries, so a miss costs one load per candidate — no deque scan.
        """
        priority = validate_priority(priority)
        for window, bucket in self._candidate_buckets(priority):
            queue = window.buckets[bucket]
            if queue is None:
                continue
            for index, entry in enumerate(queue):
                if entry[0] == priority and entry[1] is item:
                    del queue[index]
                    window.size -= 1
                    self._size -= 1
                    if not queue:
                        self.stats.word_scans += window.tree.clear(bucket)
                        window.recycle(bucket, queue)
                    return True
        return False

    def _candidate_buckets(self, priority: int) -> Iterator[tuple[_Window, int]]:
        """Buckets that may hold an element of ``priority``.

        Beyond-window priorities may sit in *either* window's overflow (last)
        bucket: new overflow lands in the secondary's last bucket, but after a
        rotation previously overflowed entries live in the primary's last
        bucket until the next rotation re-dispatches them.
        """
        lo, hi = self.primary_range
        _slo, shi = self.secondary_range
        last = self.spec.num_buckets - 1
        if priority < lo:
            yield self._primary, 0
        elif priority < hi:
            yield self._primary, self._bucket_in_primary(priority)
        elif priority < shi:
            yield self._secondary, self._bucket_in_secondary(priority)
            yield self._primary, last
        else:
            yield self._secondary, last
            yield self._primary, last


__all__ = ["CircularFFSQueue"]
