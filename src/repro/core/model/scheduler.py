"""The Eiffel scheduler: annotator → enqueue → queue → dequeue (Figure 1).

:class:`EiffelScheduler` glues the model pieces together:

* a **packet annotator** maps each packet to a leaf of the policy hierarchy
  (and may attach metadata the ranking functions need);
* the **enqueue component** walks the packet through the hierarchy's rate
  limits — every rate limit becomes a transmission timestamp in the single
  :class:`~repro.core.model.shaper.DecoupledShaper` — and finally pushes the
  packet into the :class:`~repro.core.model.tree.SchedulingTree`;
* the **queue** is the tree (work-conserving ordering) plus the shaper
  (non-work-conserving gating);
* the **dequeue component** first releases due packets from the shaper and
  then pops the tree in policy order.

One simplification relative to the step-by-step Figure 8 walk is made: a
packet clears *all* of its rate-limit gates before it is pushed onto its full
leaf-to-root PIFO path, instead of entering intermediate PQs between gates.
Because a packet can never be transmitted before its last gate clears, the
sequence of transmitted packets is identical; only the instant at which
intermediate WFQ virtual times observe the packet differs.  This keeps the
tree's "pending elements = pending packets" invariant intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from .packet import Packet
from .shaper import DecoupledShaper
from .tree import SchedulingTree

#: Maps a packet to the name of the policy leaf it belongs to.
PacketAnnotator = Callable[[Packet], str]


@dataclass
class SchedulerStats:
    """Counters describing scheduler activity."""

    enqueued: int = 0
    dequeued: int = 0
    shaped: int = 0
    dropped: int = 0
    per_leaf: Dict[str, int] = field(default_factory=dict)


class EiffelScheduler:
    """A programmable packet scheduler assembled from Eiffel building blocks.

    Args:
        tree: the compiled policy hierarchy.
        annotator: maps packets to leaf names; defaults to reading
            ``packet.metadata['leaf']``.
        shaper: shared decoupled shaper; created with defaults when omitted
            and any tree node carries a rate limit.
        pacing_rate_bps: optional aggregate pacing applied at the root (the
            "pace aggregate" of Figure 7), expressed as one more shaping
            transaction on the root node.
    """

    def __init__(
        self,
        tree: SchedulingTree,
        annotator: Optional[PacketAnnotator] = None,
        shaper: Optional[DecoupledShaper] = None,
        pacing_rate_bps: Optional[float] = None,
    ) -> None:
        self.tree = tree
        self.annotator = annotator or self._default_annotator
        needs_shaper = pacing_rate_bps is not None or any(
            node.shaping is not None for node in tree
        )
        self.shaper = shaper or (DecoupledShaper() if needs_shaper else None)
        if pacing_rate_bps is not None:
            from .transactions import RateLimit, ShapingTransaction

            root = tree.root
            root.shaping = ShapingTransaction(
                f"{root.name}.pacing", RateLimit(pacing_rate_bps)
            )
        self.stats = SchedulerStats()
        self._ready: List[Packet] = []

    # -- annotator --------------------------------------------------------------

    @staticmethod
    def _default_annotator(packet: Packet) -> str:
        leaf = packet.metadata.get("leaf")
        if leaf is None:
            raise ValueError(
                "packet carries no 'leaf' annotation and no annotator was provided"
            )
        return leaf

    # -- enqueue -----------------------------------------------------------------

    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        """Admit ``packet`` into the scheduler at time ``now_ns``."""
        self.enqueue_batch((packet,), now_ns)

    def enqueue_batch(self, packets: Iterable[Packet], now_ns: int = 0) -> int:
        """Admit a batch of packets with one amortised shaper insert.

        Ungated packets go straight into the tree; gated packets are stamped
        by their first rate limit and handed to the shaper in a single
        batched ``schedule_batch`` call, so a NIC burst costs one queue-index
        update per timestamp bucket instead of one per packet.
        """
        gated: List[tuple[Packet, int, Callable[[Packet, int], None]]] = []
        count = 0
        for packet in packets:
            leaf_name = self.annotator(packet)
            self.stats.enqueued += 1
            self.stats.per_leaf[leaf_name] = self.stats.per_leaf.get(leaf_name, 0) + 1
            gates = self.tree.shaping_transactions_on_path(leaf_name)
            count += 1
            if not gates or self.shaper is None:
                self.tree.enqueue(leaf_name, packet, now_ns)
                continue
            self.stats.shaped += 1
            send_at = gates[0].stamp(packet, now_ns)

            def continuation(
                released: Packet,
                release_ns: int,
                leaf_name: str = leaf_name,
                gates=gates,
            ) -> None:
                self._schedule_through_gates(
                    released, leaf_name, gates, 1, release_ns
                )

            gated.append((packet, send_at, continuation))
        if gated:
            assert self.shaper is not None
            self.shaper.schedule_batch(gated)
        return count

    def _schedule_through_gates(
        self,
        packet: Packet,
        leaf_name: str,
        gates,
        gate_index: int,
        now_ns: int,
    ) -> None:
        """Send ``packet`` through gate ``gate_index``; recurse on release."""
        if gate_index >= len(gates):
            self.tree.enqueue(leaf_name, packet, now_ns)
            return
        gate = gates[gate_index]
        send_at = gate.stamp(packet, now_ns)
        assert self.shaper is not None

        def continuation(released: Packet, release_ns: int) -> None:
            self._schedule_through_gates(
                released, leaf_name, gates, gate_index + 1, release_ns
            )

        self.shaper.schedule(packet, send_at, continuation)

    # -- dequeue -----------------------------------------------------------------

    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        """Release shaper gates up to ``now_ns`` and pop the next packet."""
        if self.shaper is not None:
            self.shaper.release_due(now_ns)
        packet = self.tree.dequeue(now_ns)
        if packet is not None:
            packet.departure_ns = now_ns
            self.stats.dequeued += 1
        return packet

    def dequeue_all_due(self, now_ns: int = 0) -> List[Packet]:
        """Pop every packet currently eligible for transmission at ``now_ns``.

        The shaper's gates are released once for the whole drain (its
        batched ``release_due`` already hands over every due packet,
        including continuation re-inserts), so only the tree is popped per
        packet instead of paying a shaper sweep per packet.
        """
        if self.shaper is not None:
            self.shaper.release_due(now_ns)
        released: List[Packet] = []
        while True:
            packet = self.tree.dequeue(now_ns)
            if packet is None:
                break
            packet.departure_ns = now_ns
            self.stats.dequeued += 1
            released.append(packet)
        return released

    # -- timer support -------------------------------------------------------------

    def next_event_ns(self) -> Optional[int]:
        """Earliest time at which new work becomes available.

        This is the ``SoonestDeadline()`` the kernel qdisc uses to program its
        wake-up timer: the earliest shaper timestamp if the tree is idle, or
        "now" (0) when the tree already has ready packets.
        """
        if not self.tree.empty:
            return 0
        if self.shaper is not None:
            return self.shaper.next_event_ns()
        return None

    # -- introspection ----------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Packets currently held (tree + shaper)."""
        held = len(self.tree)
        if self.shaper is not None:
            held += len(self.shaper)
        return held

    @property
    def empty(self) -> bool:
        """True when neither the tree nor the shaper holds packets."""
        return self.pending == 0


__all__ = ["EiffelScheduler", "PacketAnnotator", "SchedulerStats"]
