"""Unit tests for the three qdiscs and the timer subsystem."""

import pytest

from repro.core.model import Packet
from repro.kernel import CarouselQdisc, EiffelQdisc, FQPacingQdisc, HrTimer

NS_PER_MS = 1_000_000

ALL_QDISCS = [FQPacingQdisc, CarouselQdisc, EiffelQdisc]


class TestHrTimer:
    def test_program_and_fire(self):
        timer = HrTimer()
        timer.program(100)
        assert timer.armed
        assert not timer.due(50)
        assert timer.due(100)
        assert timer.fire() == 100
        assert not timer.armed
        assert timer.programs == 1
        assert timer.fires == 1

    def test_granularity_rounds_up(self):
        timer = HrTimer(granularity_ns=100)
        timer.program(101)
        assert timer.expiry_ns == 200

    def test_cancel(self):
        timer = HrTimer()
        timer.program(10)
        timer.cancel()
        assert not timer.armed
        assert timer.cancellations == 1

    def test_fire_disarmed_raises(self):
        with pytest.raises(RuntimeError):
            HrTimer().fire()

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            HrTimer(granularity_ns=0)


def paced_qdisc(qdisc_cls, rate_bps=12e6):
    qdisc = qdisc_cls()
    qdisc.set_flow_rate(1, rate_bps)
    return qdisc


@pytest.mark.parametrize("qdisc_cls", ALL_QDISCS)
class TestQdiscShaping:
    def test_unpaced_packet_released_immediately(self, qdisc_cls):
        qdisc = qdisc_cls()
        qdisc.enqueue_packet(Packet(flow_id=5), now_ns=0)
        released = qdisc.dequeue_due(now_ns=0)
        assert len(released) == 1

    def test_paced_flow_spacing(self, qdisc_cls):
        # 12 Mbps, 1500 B packets -> 1 ms spacing.
        qdisc = paced_qdisc(qdisc_cls)
        for _ in range(4):
            qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        first = qdisc.dequeue_due(now_ns=0)
        assert len(first) == 1
        nothing_yet = qdisc.dequeue_due(now_ns=NS_PER_MS // 2)
        assert nothing_yet == []
        second = qdisc.dequeue_due(now_ns=NS_PER_MS + NS_PER_MS // 4)
        assert len(second) == 1
        rest = qdisc.dequeue_due(now_ns=10 * NS_PER_MS)
        assert len(rest) == 2

    def test_soonest_deadline_none_when_idle(self, qdisc_cls):
        qdisc = qdisc_cls()
        assert qdisc.soonest_deadline_ns(now_ns=0) is None

    def test_soonest_deadline_when_busy(self, qdisc_cls):
        qdisc = paced_qdisc(qdisc_cls)
        qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        qdisc.dequeue_due(now_ns=0)
        qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        deadline = qdisc.soonest_deadline_ns(now_ns=0)
        assert deadline is not None
        assert deadline > 0

    def test_backlog_tracking(self, qdisc_cls):
        qdisc = paced_qdisc(qdisc_cls)
        for _ in range(3):
            qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        assert qdisc.backlog == 3
        qdisc.dequeue_due(now_ns=0)
        assert qdisc.backlog == 2

    def test_costs_are_charged(self, qdisc_cls):
        qdisc = paced_qdisc(qdisc_cls)
        for _ in range(10):
            qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        qdisc.dequeue_due(now_ns=100 * NS_PER_MS)
        assert qdisc.system_cost.total_cycles > 0
        assert qdisc.total_cycles() >= qdisc.system_cost.total_cycles

    def test_aggregate_rate_adherence(self, qdisc_cls):
        # 100 packets of 1500 B at 120 Mbps should take ~10 ms to drain.
        qdisc = paced_qdisc(qdisc_cls, rate_bps=120e6)
        for _ in range(100):
            qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        released_early = qdisc.dequeue_due(now_ns=5 * NS_PER_MS)
        released_late = qdisc.dequeue_due(now_ns=11 * NS_PER_MS)
        assert 40 <= len(released_early) <= 60
        assert len(released_early) + len(released_late) == 100


class TestFQPacingSpecifics:
    def test_garbage_collection_reclaims_idle_flows(self):
        qdisc = FQPacingQdisc(gc_interval_packets=10, gc_idle_ns=1000)
        for flow in range(5):
            qdisc.enqueue_packet(Packet(flow_id=flow), now_ns=0)
        qdisc.dequeue_due(now_ns=0)
        assert qdisc.active_flows == 5
        # Much later, new traffic triggers GC and the idle flows disappear.
        for _ in range(12):
            qdisc.enqueue_packet(Packet(flow_id=100), now_ns=10_000_000)
        assert qdisc.active_flows <= 2

    def test_per_flow_isolation(self):
        qdisc = FQPacingQdisc()
        qdisc.set_flow_rate(1, 1e6)
        qdisc.set_flow_rate(2, 1e9)
        for _ in range(3):
            qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
            qdisc.enqueue_packet(Packet(flow_id=2, size_bytes=1500), now_ns=0)
        released = qdisc.dequeue_due(now_ns=100_000)
        fast = sum(1 for p in released if p.flow_id == 2)
        slow = sum(1 for p in released if p.flow_id == 1)
        assert fast == 3
        assert slow <= 1


class TestCarouselSpecifics:
    def test_polls_every_slot(self):
        qdisc = CarouselQdisc(slot_ns=1_000)
        qdisc.set_flow_rate(1, 12e6)
        qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        # The next run is one slot away, not the actual packet deadline.
        assert qdisc.soonest_deadline_ns(now_ns=0) == 1_000

    def test_slot_scan_cost_charged(self):
        qdisc = CarouselQdisc(slot_ns=1_000, horizon_ns=1_000_000)
        qdisc.set_flow_rate(1, 1e6)
        qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        qdisc.dequeue_due(now_ns=500_000)
        assert qdisc.softirq_cost.breakdown().get("linear_scan", 0) > 0


class TestEiffelSpecifics:
    def test_exact_deadline(self):
        qdisc = EiffelQdisc()
        qdisc.set_flow_rate(1, 12e6)
        qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        qdisc.dequeue_due(now_ns=0)
        qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        deadline = qdisc.soonest_deadline_ns(now_ns=0)
        assert deadline == pytest.approx(1_000_000, rel=0.01)

    def test_ffs_cost_charged_not_heap(self):
        qdisc = EiffelQdisc()
        qdisc.set_flow_rate(1, 100e6)
        for _ in range(20):
            qdisc.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        qdisc.dequeue_due(now_ns=10 * NS_PER_MS)
        breakdown = {
            **qdisc.system_cost.breakdown(),
            **qdisc.softirq_cost.breakdown(),
        }
        assert breakdown.get("ffs_word", 0) > 0


class TestMultiQueueQdisc:
    def _mq(self, num_shards=4, rate_bps=1e9):
        from repro.runtime import MultiQueueQdisc

        return MultiQueueQdisc(
            num_shards,
            lambda shard: EiffelQdisc(default_rate_bps=rate_bps),
        )

    def test_hashes_packets_to_children(self):
        mq = self._mq()
        for flow in range(64):
            mq.enqueue_packet(Packet(flow_id=flow % 16, size_bytes=1500), now_ns=0)
        assert mq.backlog == 64
        backlogs = [child.backlog for child in mq.children]
        assert sum(backlogs) == 64
        assert sum(1 for backlog in backlogs if backlog) > 1

    def test_same_flow_same_child(self):
        mq = self._mq()
        for _ in range(8):
            mq.enqueue_packet(Packet(flow_id=3, size_bytes=1500), now_ns=0)
        occupied = [child.backlog for child in mq.children]
        assert occupied.count(0) == len(mq.children) - 1

    def test_dequeue_due_drains_all_children(self):
        mq = self._mq()
        for flow in range(32):
            mq.enqueue_packet(Packet(flow_id=flow, size_bytes=1500), now_ns=0)
        released = mq.dequeue_due(1_000_000_000)
        assert len(released) == 32
        assert mq.backlog == 0
        assert mq.stats.dequeued == 32

    def test_budget_is_shared_across_children(self):
        mq = self._mq()
        for flow in range(32):
            mq.enqueue_packet(Packet(flow_id=flow, size_bytes=1500), now_ns=0)
        released = mq.dequeue_due(1_000_000_000, budget=10)
        assert len(released) == 10
        assert mq.backlog == 22

    def test_soonest_deadline_is_min_over_children(self):
        mq = self._mq()
        assert mq.soonest_deadline_ns(0) is None
        mq.enqueue_packet(Packet(flow_id=1, size_bytes=1500), now_ns=0)
        mq.enqueue_packet(Packet(flow_id=2, size_bytes=1500), now_ns=0)
        deadline = mq.soonest_deadline_ns(0)
        children = [
            child.soonest_deadline_ns(0)
            for child in mq.children
            if child.backlog
        ]
        assert deadline == min(children)

    def test_per_flow_fifo_through_mq(self):
        mq = self._mq()
        packets = [Packet(flow_id=flow % 6, size_bytes=1500) for flow in range(48)]
        for packet in packets:
            mq.enqueue_packet(packet, now_ns=0)
        released = mq.dequeue_due(10_000_000_000)
        per_flow = {}
        for packet in released:
            per_flow.setdefault(packet.flow_id, []).append(packet.packet_id)
        for flow, ids in per_flow.items():
            assert ids == sorted(ids), f"flow {flow} reordered"

    def test_cycle_accounting_views(self):
        mq = self._mq()
        for flow in range(32):
            mq.enqueue_packet(Packet(flow_id=flow, size_bytes=1500), now_ns=0)
        mq.dequeue_due(1_000_000_000)
        total = mq.total_cycles()
        bottleneck = mq.max_child_cycles()
        assert total > 0
        assert 0 < bottleneck < total
        # The root's accounts mirror every child delta, so the root view
        # equals the sum of the children's own accounts.
        assert total == pytest.approx(
            sum(child.total_cycles() for child in mq.children)
        )
        mq.reset_costs()
        assert mq.total_cycles() == 0

    def test_runs_under_kernel_simulation(self):
        from repro.kernel import KernelSimulation

        mq = self._mq(num_shards=2, rate_bps=40e6)
        simulation = KernelSimulation(mq, tsq_limit=2)
        sample = simulation.run_closed_loop_interval(
            flow_ids=list(range(8)), start_ns=0, duration_ns=2_000_000
        )
        assert simulation.transmitted > 0
        assert sample.total_cycles > 0
        # The interval sample must include the children's per-core work, not
        # just the mq root's driver charges.
        assert sample.total_cycles == pytest.approx(mq.total_cycles())
        assert sample.total_cycles > mq.max_child_cycles()
