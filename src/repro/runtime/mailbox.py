"""Batched SPSC mailboxes: the ingress-to-shard handoff.

On real multi-core schedulers the dispatching core never touches another
core's queue structures directly — it posts packets into a single-producer /
single-consumer ring (a BESS queue module, a kernel per-CPU backlog) and the
owning core drains the ring in batches at the top of its scheduling loop.
That handoff is what keeps the hot data structures core-local.

:class:`Mailbox` models that ring: the ingress side pushes (bounded, with
drop accounting, like a real ring that overflows), the shard side drains one
batch per scheduling quantum.  In simulation both sides run on one thread,
so there is no locking — the SPSC discipline survives as the API shape:
exactly one producer calls ``push``/``push_batch`` and exactly one consumer
calls ``drain``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, Iterable, List, Optional, TypeVar

from ..core.queues.base import CounterStatsMixin

T = TypeVar("T")


@dataclass(slots=True)
class MailboxStats(CounterStatsMixin):
    """Counters kept by one mailbox."""

    pushed: int = 0
    dropped: int = 0
    drained: int = 0
    drain_calls: int = 0
    peak_occupancy: int = 0


class Mailbox(Generic[T]):
    """Bounded FIFO handoff between one producer and one consumer.

    Args:
        capacity: maximum resident items; ``None`` means unbounded (the
            simulation default — backpressure is then the runtime's problem,
            as it is for an unbounded qdisc backlog).
    """

    __slots__ = ("capacity", "stats", "_items")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.stats = MailboxStats()
        self._items: Deque[T] = deque()

    # -- producer side -----------------------------------------------------

    def push(self, item: T) -> bool:
        """Post one item; returns False (and counts a drop) when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._items.append(item)
        self.stats.pushed += 1
        if len(self._items) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._items)
        return True

    def push_batch(self, items: Iterable[T]) -> int:
        """Post a burst of items; returns how many were accepted.

        Items beyond the free space are dropped (tail drop), matching ring
        overflow semantics: earlier items of the burst are kept.  The whole
        burst lands with one ``deque.extend`` — the producer-side analogue of
        a ring's bulk write — instead of a Python-level loop of pushes.
        """
        if not isinstance(items, (list, tuple)):
            items = list(items)
        ring = self._items
        capacity = self.capacity
        offered = len(items)
        if capacity is None:
            take = offered
        else:
            take = min(offered, max(0, capacity - len(ring)))
            if take < offered:
                items = items[:take]
        ring.extend(items)
        stats = self.stats
        stats.pushed += take
        stats.dropped += offered - take
        occupancy = len(ring)
        if occupancy > stats.peak_occupancy:
            stats.peak_occupancy = occupancy
        return take

    # -- consumer side -----------------------------------------------------

    def drain(self, limit: Optional[int] = None) -> List[T]:
        """Remove and return up to ``limit`` items in FIFO order.

        One call per scheduling quantum is the intended pattern; the whole
        available batch is returned when ``limit`` is ``None``.  The full
        drain is one ``list()`` + ``clear()`` — the ring's bulk read.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        items = self._items
        if limit is None or limit >= len(items):
            batch = list(items)
            items.clear()
        else:
            popleft = items.popleft
            batch = [popleft() for _ in range(limit)]
        stats = self.stats
        stats.drained += len(batch)
        stats.drain_calls += 1
        return batch

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """True when no items await the consumer."""
        return not self._items


__all__ = ["Mailbox", "MailboxStats"]
