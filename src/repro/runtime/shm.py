"""Shared-memory SPSC rings: the cross-process mailbox transport.

The simulated :class:`~repro.runtime.mailbox.Mailbox` keeps its SPSC
discipline purely as API shape — one thread plays both sides.  When shards
run on real OS cores (:class:`~repro.runtime.backend.ProcessBackend`), the
same single-producer / single-consumer handoff has to cross an address-space
boundary, and this module provides it: a fixed-size byte ring over
:class:`multiprocessing.shared_memory.SharedMemory` carrying length-framed
pickled records.

The layout is the classic lock-free SPSC ring (DPDK ``rte_ring`` single
producer/consumer mode, an io_uring SQ ring):

* two monotonically increasing 64-bit cursors live at the head of the
  segment — ``head`` (consumer, bytes read) and ``tail`` (producer, bytes
  written); the payload area is everything after them;
* the producer alone writes ``tail``, the consumer alone writes ``head``;
  each side only *reads* the other's cursor, so no locks are needed —
  an 8-byte aligned store is atomic on every platform CPython runs on,
  and a stale read of the opposing cursor is always *conservative*
  (the producer under-estimates free space, the consumer under-estimates
  available bytes);
* records are ``u32`` length + ``u32`` CRC-32 of the payload + payload,
  written with at most two ``memoryview`` copies (wraparound splits a
  record across the ring edge).

Capacity is fixed at creation; :meth:`ShmRing.push` returns ``False`` when
the record does not fit (the producer spins or backs off — policy belongs to
the caller, exactly as :class:`~repro.runtime.mailbox.Mailbox` leaves drop
vs. backpressure to the runtime).

Frame integrity: a consumer that races a torn producer write (or maps a
segment scribbled on by a crashed peer) must never hand garbage bytes to
``pickle.loads`` — unpickling attacker-shaped or torn data is both a
correctness and a safety hole.  Every record therefore carries its length
and a CRC-32 of its payload; :meth:`ShmRing.pop` validates both and raises
the typed :class:`ShmFrameCorrupt` instead of decoding a torn frame.  The
head cursor is deliberately *not* advanced past a corrupt frame, so the
failure is sticky and the supervising side can diagnose or discard the
whole ring (the process backend restarts the consumer on a fresh ring).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from multiprocessing import shared_memory
from typing import Any, Optional

_CURSORS = struct.Struct("<QQ")  # head (consumer), tail (producer)
_FRAME = struct.Struct("<II")  # payload length, CRC-32 of the payload
HEADER_BYTES = _CURSORS.size


class ShmFrameCorrupt(RuntimeError):
    """A framed record failed its length or CRC-32 validation.

    Raised by :meth:`ShmRing.pop_bytes` / :meth:`ShmRing.pop` instead of
    returning (or unpickling) torn bytes.  The ring's head cursor is left
    on the corrupt frame, so repeated pops keep failing — corruption is a
    transport-level fault the owner must handle, not skippable data.
    """


class ShmRing:
    """A single-producer / single-consumer byte ring in shared memory.

    Args:
        capacity: payload bytes the ring can hold (excluding the cursor
            header).  Must comfortably exceed the largest single record:
            a record of ``capacity - 8`` bytes is the hard limit.
        name: attach to an existing ring by shared-memory name; ``None``
            creates a fresh segment.

    Exactly one process may call :meth:`push` and exactly one may call
    :meth:`pop`; the creator is expected to :meth:`unlink` once, every
    attacher only :meth:`close`\\ s.
    """

    __slots__ = ("capacity", "_shm", "_buf", "_data", "_owner", "_last_record")

    def __init__(self, capacity: int = 1 << 20, name: Optional[str] = None) -> None:
        if name is None:
            if capacity <= _FRAME.size:
                raise ValueError("capacity must exceed the 8-byte record header")
            self._shm = shared_memory.SharedMemory(
                create=True, size=HEADER_BYTES + capacity
            )
            self._owner = True
            self.capacity = capacity
            _CURSORS.pack_into(self._shm.buf, 0, 0, 0)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            self.capacity = self._shm.size - HEADER_BYTES
            # Attaching re-registers the segment with the resource tracker
            # (CPython < 3.13 has no track=False).  Under the fork start
            # method the attacher shares the owner's tracker process, whose
            # name cache is a set — the re-register is idempotent and the
            # owner's unlink() retires the single entry, so no compensation
            # is needed here (an explicit unregister would instead strip the
            # owner's registration and make unlink() race the tracker).
        self._buf = self._shm.buf
        self._data = self._shm.buf[HEADER_BYTES:]
        self._last_record: Optional[tuple[int, int]] = None

    # -- cursor access -----------------------------------------------------

    @property
    def name(self) -> str:
        """Shared-memory segment name (hand to the attaching process)."""
        return self._shm.name

    def _cursors(self) -> tuple[int, int]:
        return _CURSORS.unpack_from(self._buf, 0)

    def _set_head(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 0, value)

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 8, value)

    def __len__(self) -> int:
        head, tail = self._cursors()
        return tail - head

    @property
    def free_bytes(self) -> int:
        """Bytes the producer can still write before the ring is full."""
        return self.capacity - len(self)

    # -- wrapping byte copies ----------------------------------------------

    def _write(self, offset: int, payload: bytes) -> None:
        start = offset % self.capacity
        end = start + len(payload)
        if end <= self.capacity:
            self._data[start:end] = payload
        else:
            first = self.capacity - start
            self._data[start:] = payload[:first]
            self._data[: len(payload) - first] = payload[first:]

    def _read(self, offset: int, length: int) -> bytes:
        start = offset % self.capacity
        end = start + length
        if end <= self.capacity:
            return bytes(self._data[start:end])
        first = self.capacity - start
        return bytes(self._data[start:]) + bytes(self._data[: length - first])

    # -- producer side -----------------------------------------------------

    def _push_framed(self, payload: bytes, crc: int) -> bool:
        needed = _FRAME.size + len(payload)
        if needed > self.capacity:
            raise ValueError(
                f"record of {len(payload)} bytes exceeds ring capacity {self.capacity}"
            )
        head, tail = self._cursors()
        if needed > self.capacity - (tail - head):
            return False
        self._write(tail, _FRAME.pack(len(payload), crc))
        self._write(tail + _FRAME.size, payload)
        self._set_tail(tail + needed)
        self._last_record = (tail + _FRAME.size, len(payload))
        return True

    def push_bytes(self, payload: bytes) -> bool:
        """Write one framed record; False when it does not fit right now."""
        return self._push_framed(payload, zlib.crc32(payload))

    def push(self, record: Any) -> bool:
        """Pickle and write one record; False when the ring is full."""
        return self.push_bytes(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))

    def push_corrupted(self, record: Any) -> bool:
        """Write one record whose stored CRC is deliberately wrong.

        Race-free fault injection for a *live* consumer: the bad CRC is in
        place before the tail cursor makes the record visible, so the
        consumer's pop deterministically raises :class:`ShmFrameCorrupt`
        (unlike :meth:`corrupt_last_record`, which mutates bytes the consumer
        may already have read).  Producer side only, like :meth:`push`.
        """
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        return self._push_framed(payload, zlib.crc32(payload) ^ 0xFFFFFFFF)

    # -- consumer side -----------------------------------------------------

    def corrupt_last_record(self) -> None:
        """Flip one payload byte of the most recently pushed record.

        Producer-side fault injection for torn-frame testing: the consumer's
        next :meth:`pop` of that record fails its CRC check and raises
        :class:`ShmFrameCorrupt`.  Only meaningful while the record is still
        unread (the cursor maths does not check).
        """
        if self._last_record is None:
            raise RuntimeError("no record has been pushed yet")
        offset, length = self._last_record
        start = offset % self.capacity
        self._data[start] = self._data[start] ^ 0xFF

    def pop_bytes(self) -> Optional[bytes]:
        """Read one framed record, or ``None`` when the ring is empty.

        Raises :class:`ShmFrameCorrupt` — without advancing the head cursor
        — when the frame's length field is torn or the payload fails its
        CRC-32, so torn bytes never reach the unpickler.
        """
        head, tail = self._cursors()
        if tail - head < _FRAME.size:
            return None
        length, crc = _FRAME.unpack(self._read(head, _FRAME.size))
        if length > self.capacity - _FRAME.size or _FRAME.size + length > tail - head:
            raise ShmFrameCorrupt(
                f"torn frame header: claimed {length} payload bytes with "
                f"{tail - head} readable in a ring of capacity {self.capacity}"
            )
        payload = self._read(head + _FRAME.size, length)
        actual = zlib.crc32(payload)
        if actual != crc:
            raise ShmFrameCorrupt(
                f"frame CRC mismatch: header says {crc:#010x}, payload hashes "
                f"to {actual:#010x} ({length} bytes at ring offset {head % self.capacity})"
            )
        self._set_head(head + _FRAME.size + length)
        return payload

    def pop(self) -> Any:
        """Read and unpickle one record; the sentinel ``None`` is a value.

        Returns the module-level :data:`RING_EMPTY` marker when no record is
        available, so ``None`` payloads stay distinguishable from emptiness.
        """
        payload = self.pop_bytes()
        if payload is None:
            return RING_EMPTY
        return pickle.loads(payload)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach this process's mapping (both sides must call this; idempotent)."""
        if self._data is None:
            return
        # Release exported memoryviews before closing the mapping, or the
        # SharedMemory destructor raises BufferError.
        self._data.release()
        self._buf = None
        self._data = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - interpreter-dependent
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every side closed)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class RingEmpty:
    """Sentinel type returned by :meth:`ShmRing.pop` on an empty ring."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RING_EMPTY"


RING_EMPTY = RingEmpty()

__all__ = ["HEADER_BYTES", "RING_EMPTY", "RingEmpty", "ShmFrameCorrupt", "ShmRing"]
