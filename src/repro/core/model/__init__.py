"""Eiffel's programming model: the extended PIFO abstraction (Objective 2)."""

from .compiler import compile_policy, describe_policy
from .packet import Flow, FlowState, FlowTable, Packet
from .pifo import PIFOBlock, default_queue_factory
from .policy import Discipline, PolicyNodeSpec, PolicySpec, parse_policy
from .scheduler import EiffelScheduler, SchedulerStats
from .shaper import DecoupledShaper, ShaperChain
from .transactions import (
    PerFlowSchedulingTransaction,
    RateLimit,
    SchedulingTransaction,
    ShapingTransaction,
)
from .tree import (
    FIFORankPolicy,
    NodeConfig,
    NodeRankPolicy,
    SchedulingTree,
    StrictPriorityRankPolicy,
    TreeNode,
    WFQRankPolicy,
)

__all__ = [
    "DecoupledShaper",
    "Discipline",
    "EiffelScheduler",
    "FIFORankPolicy",
    "Flow",
    "FlowState",
    "FlowTable",
    "NodeConfig",
    "NodeRankPolicy",
    "PIFOBlock",
    "Packet",
    "PerFlowSchedulingTransaction",
    "PolicyNodeSpec",
    "PolicySpec",
    "RateLimit",
    "SchedulerStats",
    "SchedulingTransaction",
    "SchedulingTree",
    "ShaperChain",
    "ShapingTransaction",
    "StrictPriorityRankPolicy",
    "TreeNode",
    "WFQRankPolicy",
    "compile_policy",
    "default_queue_factory",
    "describe_policy",
    "parse_policy",
]
