"""TOML round-trip: ``load(dump(spec)) == spec`` for every valid spec.

Property-tested over the same strategy the fuzz suite runs end-to-end, so
the round-trip guarantee covers exactly the spec space the rest of the
suite exercises — plus the canonical figure specs and the None/"none"
encoding corner explicitly.
"""

from hypothesis import HealthCheck, given, settings

from repro.scenario import (
    IngressSpec,
    PolicyTreeSpec,
    RuntimeSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    dump_toml,
    dump_toml_file,
    figure13_spec,
    figure19_spec,
    load_toml,
    load_toml_file,
)
from repro.scenario.fuzz import parallel_backend_specs, scenario_specs

ROUND_TRIP_SETTINGS = dict(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**ROUND_TRIP_SETTINGS)
@given(spec=scenario_specs())
def test_round_trip_over_random_runtime_specs(spec):
    assert load_toml(dump_toml(spec)) == spec


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=parallel_backend_specs())
def test_round_trip_over_parallel_backend_specs(spec):
    assert load_toml(dump_toml(spec)) == spec


def test_round_trip_of_the_canonical_figure_specs():
    for spec in (figure13_spec(), figure19_spec()):
        assert load_toml(dump_toml(spec)) == spec


def test_round_trip_through_a_file(tmp_path):
    spec = figure19_spec()
    path = dump_toml_file(spec, tmp_path / "fig19.toml")
    assert load_toml_file(path) == spec


def test_none_is_spelled_as_the_string_none_and_reads_back():
    spec = ScenarioSpec(
        topology=TopologySpec(kind="runtime"),
        policy=PolicyTreeSpec(default_rate_bps=None),
        ingress=IngressSpec(mailbox_capacity=None, shard_backlog_limit=None),
        runtime=RuntimeSpec(rebalance_interval_ns=None, gc_interval_packets=None),
    )
    text = dump_toml(spec)
    assert 'default_rate_bps = "none"' in text
    assert 'mailbox_capacity = "none"' in text
    assert 'rebalance_interval_ns = "none"' in text
    loaded = load_toml(text)
    assert loaded == spec
    assert loaded.policy.default_rate_bps is None
    assert loaded.runtime.gc_interval_packets is None


def test_flow_rates_survive_as_pairs():
    spec = ScenarioSpec(
        policy=PolicyTreeSpec(default_rate_bps=1e9,
                              flow_rates=((0, 5e9), (7, 2.5e8))),
    )
    loaded = load_toml(dump_toml(spec))
    assert loaded.policy.flow_rates == ((0, 5e9), (7, 2.5e8))
    assert all(isinstance(fid, int) for fid, _rate in loaded.policy.flow_rates)
    assert all(isinstance(rate, float) for _fid, rate in loaded.policy.flow_rates)


def test_missing_keys_take_dataclass_defaults():
    loaded = load_toml('name = "minimal"\n\n[traffic]\nnum_flows = 4\n')
    defaults = ScenarioSpec()
    assert loaded.name == "minimal"
    assert loaded.traffic.num_flows == 4
    assert loaded.traffic.pattern == defaults.traffic.pattern
    assert loaded.runtime == defaults.runtime
    assert loaded.assertions == defaults.assertions


def test_dump_is_stable_and_parses_as_plain_toml():
    import tomllib

    spec = figure13_spec()
    first, second = dump_toml(spec), dump_toml(spec)
    assert first == second  # byte-stable: diffs in committed specs are real
    parsed = tomllib.loads(first)
    assert parsed["name"] == spec.name
    assert parsed["topology"]["kind"] == "bess"
