"""BESS-like busy-polling pipeline: modules, tasks, and cycle accounting.

BESS (the Berkeley Extensible Software Switch) represents packet processing
as a pipeline of modules; connected modules form a *task* that a busy-polling
core runs repeatedly, passing packet batches from module to module.  On a
single core, the maximum sustainable rate is set by how many cycles one
packet costs across the pipeline — which is precisely the metric of
Figures 12, 13 and 15 ("maximum supported aggregate rate ... on a single
core").

The reproduction models that arithmetic explicitly: every module charges its
per-batch and per-packet work to a shared :class:`~repro.cpu.CostModel`, and
:class:`Pipeline.max_rate_bps` converts cycles/packet into the rate one core
sustains, capped by the NIC line rate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..core.model.packet import Packet
from ..cpu import CostModel, CpuMeter


class Module(abc.ABC):
    """One BESS module: receives a batch of packets, emits a batch."""

    name: str = "module"

    def __init__(self) -> None:
        self.cost: Optional[CostModel] = None
        self.downstream: Optional["Module"] = None

    def connect(self, downstream: "Module") -> "Module":
        """Connect this module's output to ``downstream``; returns downstream."""
        self.downstream = downstream
        return downstream

    def attach_cost_model(self, cost: CostModel) -> None:
        """Give the module the pipeline's shared cost model."""
        self.cost = cost

    def charge(self, operation: str, count: float = 1.0) -> None:
        """Charge an operation if a cost model is attached."""
        if self.cost is not None:
            self.cost.charge(operation, count)

    @abc.abstractmethod
    def process_batch(self, batch: List[Packet], now_ns: int) -> List[Packet]:
        """Process a batch and return the packets to pass downstream."""

    def push(self, batch: List[Packet], now_ns: int) -> List[Packet]:
        """Process a batch and forward the result through the pipeline."""
        if batch:
            self.charge("batch_overhead")
        output = self.process_batch(batch, now_ns)
        if self.downstream is not None:
            return self.downstream.push(output, now_ns)
        return output


class Source(Module):
    """Head-of-pipeline module wrapping a packet generator."""

    name = "source"

    def __init__(self, generator) -> None:
        super().__init__()
        self.generator = generator

    def process_batch(self, batch: List[Packet], now_ns: int) -> List[Packet]:
        return self.generator.next_batch()


class Sink(Module):
    """Tail module: counts transmitted packets and bytes."""

    name = "sink"

    def __init__(self) -> None:
        super().__init__()
        self.packets = 0
        self.bytes = 0

    def process_batch(self, batch: List[Packet], now_ns: int) -> List[Packet]:
        self.packets += len(batch)
        self.bytes += sum(packet.size_bytes for packet in batch)
        return batch


class BufferModule(Module):
    """Per-traffic-class batching buffer (the paper's ``Buffer`` modules).

    Packets are staged per class and only released downstream once a class
    has accumulated ``batch_bytes`` worth of payload, amortising the
    downstream scheduler's per-lookup cost over the batch (Section 4,
    userspace implementation; 10 KB is the threshold the paper borrows from
    hClock).
    """

    name = "buffer"

    def __init__(self, batch_bytes: int = 10_000) -> None:
        super().__init__()
        if batch_bytes <= 0:
            raise ValueError("batch_bytes must be positive")
        self.batch_bytes = batch_bytes
        self._staged: dict[int, List[Packet]] = {}
        self._staged_bytes: dict[int, int] = {}

    def process_batch(self, batch: List[Packet], now_ns: int) -> List[Packet]:
        released: List[Packet] = []
        for packet in batch:
            staged = self._staged.setdefault(packet.flow_id, [])
            staged.append(packet)
            self.charge("enqueue")
            total = self._staged_bytes.get(packet.flow_id, 0) + packet.size_bytes
            self._staged_bytes[packet.flow_id] = total
            if total >= self.batch_bytes:
                released.extend(staged)
                self._staged[packet.flow_id] = []
                self._staged_bytes[packet.flow_id] = 0
        return released

    def flush(self) -> List[Packet]:
        """Release everything still staged (end of run)."""
        released: List[Packet] = []
        for flow_id, staged in self._staged.items():
            released.extend(staged)
            self._staged[flow_id] = []
            self._staged_bytes[flow_id] = 0
        return released


@dataclass
class PipelineReport:
    """Outcome of driving a pipeline for a number of batches."""

    packets: int
    bytes: int
    cycles: float

    @property
    def cycles_per_packet(self) -> float:
        """Average modelled cycles spent per transmitted packet."""
        if self.packets == 0:
            return float("inf")
        return self.cycles / self.packets


class Pipeline:
    """A single-task pipeline run by one busy-polling core."""

    def __init__(self, modules: Iterable[Module], meter: Optional[CpuMeter] = None) -> None:
        self.modules = list(modules)
        if not self.modules:
            raise ValueError("pipeline needs at least one module")
        self.cost = CostModel()
        self.meter = meter or CpuMeter()
        for first, second in zip(self.modules, self.modules[1:]):
            first.connect(second)
        for module in self.modules:
            module.attach_cost_model(self.cost)

    def run(self, batches: int, now_ns: int = 0) -> PipelineReport:
        """Run ``batches`` iterations of the task and report cycle costs."""
        sink = self.modules[-1]
        if not isinstance(sink, Sink):
            raise TypeError("the last pipeline module must be a Sink")
        start_packets = sink.packets
        start_bytes = sink.bytes
        start_cycles = self.cost.total_cycles
        for _ in range(batches):
            self.modules[0].push([], now_ns)
        return PipelineReport(
            packets=sink.packets - start_packets,
            bytes=sink.bytes - start_bytes,
            cycles=self.cost.total_cycles - start_cycles,
        )

    def max_rate_bps(
        self,
        report: PipelineReport,
        packet_bytes: int,
        line_rate_bps: float,
        rate_limit_bps: Optional[float] = None,
    ) -> float:
        """Maximum rate one core sustains, given measured cycles per packet."""
        if report.packets == 0:
            return 0.0
        achievable = self.meter.max_bit_rate(report.cycles_per_packet, packet_bytes)
        achievable = min(achievable, line_rate_bps)
        if rate_limit_bps is not None:
            achievable = min(achievable, rate_limit_bps)
        return achievable


__all__ = [
    "BufferModule",
    "Module",
    "Pipeline",
    "PipelineReport",
    "Sink",
    "Source",
]
