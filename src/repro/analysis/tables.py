"""Plain-text tables and series so benchmarks print paper-style results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """One named data series: x values and y values (one figure line)."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x_value: float, y_value: float) -> None:
        """Append one point."""
        self.x.append(x_value)
        self.y.append(y_value)

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class Table:
    """A simple column-oriented table."""

    title: str
    columns: List[str]
    rows: List[Sequence] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a table as aligned plain text."""
    header = [table.columns]
    body = [[_format_cell(value) for value in row] for row in table.rows]
    widths = [
        max(len(row[index]) for row in header + body) if header + body else 0
        for index in range(len(table.columns))
    ]
    lines = [table.title, ""]
    lines.append(
        "  ".join(column.ljust(widths[i]) for i, column in enumerate(table.columns))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: Sequence[Series],
    x_label: str = "x",
    y_label: str = "y",
    x_format: Optional[str] = None,
) -> str:
    """Render several series as one table keyed by their shared x values."""
    all_x: List[float] = []
    for current in series:
        for x_value in current.x:
            if x_value not in all_x:
                all_x.append(x_value)
    all_x.sort()
    columns = [x_label] + [f"{current.name} ({y_label})" for current in series]
    table = Table(title=title, columns=columns)
    for x_value in all_x:
        row: List = [x_value if x_format is None else x_format.format(x_value)]
        for current in series:
            try:
                index = current.x.index(x_value)
                row.append(current.y[index])
            except ValueError:
                row.append("-")
        table.add_row(*row)
    return format_table(table)


def speedup_summary(baseline: Series, improved: Series, name: str = "speedup") -> Dict[float, float]:
    """Per-x ratio baseline/improved (how many times better the improved series is)."""
    ratios: Dict[float, float] = {}
    for x_value, baseline_y in zip(baseline.x, baseline.y):
        if x_value in improved.x:
            improved_y = improved.y[improved.x.index(x_value)]
            if improved_y:
                ratios[x_value] = baseline_y / improved_y
    return ratios


__all__ = ["Series", "Table", "format_series", "format_table", "speedup_summary"]
