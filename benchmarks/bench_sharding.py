"""Shard-scaling benchmark — the horizontal-scaling counterpart of Figure 13.

Sweeps the sharded runtime over shard counts (1/2/4/8) under two flow-hash
workloads:

* **uniform** — flow ids drawn uniformly, the case RSS-style hashing is
  built for: per-shard load splits evenly and aggregate throughput should
  improve monotonically with shard count;
* **zipf** — Zipf-skewed flow popularity (a few elephant flows carry most
  packets), the adversarial case: the shard that drew the hottest flows
  becomes the bottleneck core, and hashing cannot repair it.

Each workload runs under the full cross of the two skew-repair policies:
the skew-aware **rebalancer** (whole-flow migration) and **work stealing**
(an idle shard takes over a busy sibling's due window under an
order-preserving flow lease) — four policy keys per distribution.  The two
mechanisms attack different halves of the problem: migration spreads the
flow *population*, stealing splits a single elephant flow *in time*, so the
Zipf bottleneck imbalance should be strictly lower with stealing stacked on
rebalancing than with rebalancing alone, while the uniform rows stay
untouched within noise (stealing's thief/victim gates keep balanced shards
from churning work back and forth).

Throughput is *modelled* the way a real multi-core deployment is limited:
every shard is one core, all cores run concurrently, so the run's wall time
is the bottleneck shard's cycle consumption at the modelled clock —
``aggregate ops/sec = packets * clock / max_shard_cycles``.  The harness's
single-threaded wall-clock rate is also recorded (as ``harness_ops_per_sec``)
but carries no scaling signal, since the simulation itself runs on one
Python thread.

Results land in ``BENCH_sharding.json`` at the repo root: the scaling-axis
perf artifact future PRs build on.  Run standalone
(``python benchmarks/bench_sharding.py``) to regenerate it with full
iteration counts; the pytest entry points run a smoke-sized sweep with the
scaling assertions.
"""

import json
import random
import time
from pathlib import Path

from conftest import report

from repro.core.model.packet import Packet
from repro.cpu import CpuMeter
from repro.runtime import ShardedRuntime
from repro.traffic import ZipfFlowSampler

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharding.json"

SHARD_COUNTS = [1, 2, 4, 8]
NUM_FLOWS = 256
RATE_BPS = 10e9  # per-flow pacing rate (10G access links)
PACKET_BYTES = 1500
QUANTUM_NS = 10_000
BATCH_PER_QUANTUM = 64
# Ingress arrives in NIC RX bursts (interrupt-coalesced pulls), at an
# average rate — INGRESS_BURST packets every INGRESS_BURST_QUANTA quanta,
# i.e. 16 packets per quantum — chosen so flows drain between bursts
# (1500 B at 10 Gbps is 1.2 us): the idle gaps are what allow the FIFO-safe
# rebalancer to land its migrations, exactly as kernel RPS/mq only re-steer
# a flow whose queue went empty, and the burst heads are where the skewed
# shard piles up the deep stamped window that work stealing leases out.
INGRESS_BURST = 128  # packets offered per simulated RX pull
INGRESS_BURST_QUANTA = 8  # quanta between RX pulls
ZIPF_SKEW = 1.2
REBALANCE_INTERVAL_NS = 16 * QUANTUM_NS
STEAL_MIN_BACKLOG = 8
SEED = 20_190_226  # NSDI'19

#: The policy axes: (rebalance, steal) in a full cross.
POLICIES = {
    "rebalance_off_steal_off": (False, False),
    "rebalance_on_steal_off": (True, False),
    "rebalance_off_steal_on": (False, True),
    "rebalance_on_steal_on": (True, True),
}

FULL_PACKETS = 20_000
SMOKE_PACKETS = 4_000

METER = CpuMeter()  # 3 GHz modelled cores


def _flow_sequence(distribution: str, num_packets: int) -> list:
    rng = random.Random(SEED)
    if distribution == "uniform":
        return [rng.randrange(NUM_FLOWS) for _ in range(num_packets)]
    if distribution == "zipf":
        return ZipfFlowSampler(NUM_FLOWS, skew=ZIPF_SKEW, rng=rng).sample_flows(
            num_packets
        )
    raise ValueError(f"unknown distribution {distribution!r}")


def _run_one(num_shards: int, flow_ids: list, rebalance: bool, steal: bool) -> dict:
    """One configuration: drive the runtime to completion, report telemetry."""
    runtime = ShardedRuntime(
        num_shards,
        default_rate_bps=RATE_BPS,
        quantum_ns=QUANTUM_NS,
        batch_per_quantum=BATCH_PER_QUANTUM,
        rebalance_interval_ns=REBALANCE_INTERVAL_NS if rebalance else None,
        steal_enabled=steal,
        steal_min_backlog=STEAL_MIN_BACKLOG,
        record_transmits=False,
    )
    simulator = runtime.simulator

    # Open-loop ingress: INGRESS_BURST packets per RX pull, as a NIC RX loop
    # would hand interrupt-coalesced bursts to the dispatching core.
    for index in range(0, len(flow_ids), INGRESS_BURST):
        chunk = flow_ids[index : index + INGRESS_BURST]
        when_ns = (index // INGRESS_BURST) * INGRESS_BURST_QUANTA * QUANTUM_NS

        def offer(chunk=chunk) -> None:
            runtime.submit_batch(
                [Packet(flow_id=flow_id, size_bytes=PACKET_BYTES) for flow_id in chunk]
            )

        simulator.schedule_at(when_ns, offer)

    start = time.perf_counter()
    runtime.run()
    elapsed = time.perf_counter() - start

    telemetry = runtime.telemetry()
    assert telemetry.transmitted == len(flow_ids)
    packets = telemetry.transmitted
    aggregate_ops = packets * METER.cycles_per_second / telemetry.max_shard_cycles
    return {
        "num_shards": num_shards,
        "transmitted": packets,
        "aggregate_ops_per_sec": aggregate_ops,
        "max_shard_cycles": telemetry.max_shard_cycles,
        "total_cycles": telemetry.total_cycles,
        "cycles_per_packet": telemetry.total_cycles / packets,
        "bottleneck_cycles_per_packet": telemetry.max_shard_cycles / packets,
        "imbalance": telemetry.imbalance,
        "migrations": telemetry.migrations_applied,
        "rebalance_rounds": telemetry.rebalance_rounds,
        "steals_attempted": telemetry.steals_attempted,
        "steals_succeeded": telemetry.steals_succeeded,
        "packets_stolen": telemetry.packets_stolen,
        "steal_cycles": telemetry.steal_cycles,
        "per_shard_transmitted": [
            shard.transmitted for shard in telemetry.shards
        ],
        "harness_ops_per_sec": packets / max(elapsed, 1e-9),
        "elapsed_sec": elapsed,
    }


def run_sharding_sweep(num_packets: int = FULL_PACKETS) -> dict:
    """Full sweep: shard counts x {uniform, zipf} x {rebalance, steal} cross."""
    scenarios: dict = {}
    for distribution in ("uniform", "zipf"):
        flow_ids = _flow_sequence(distribution, num_packets)
        scenarios[distribution] = {}
        for key, (rebalance, steal) in POLICIES.items():
            scenarios[distribution][key] = {
                str(shards): _run_one(shards, flow_ids, rebalance, steal)
                for shards in SHARD_COUNTS
            }
    return {
        "benchmark": "sharding_scaling",
        "description": (
            "Sharded runtime throughput vs shard count under uniform and "
            "Zipf-skewed flow hashes, across the {rebalancer} x {work "
            "stealing} policy cross.  aggregate_ops_per_sec models "
            "concurrent per-core execution: packets * clock / "
            "bottleneck-shard cycles."
        ),
        "workload": {
            "num_packets": num_packets,
            "num_flows": NUM_FLOWS,
            "flow_rate_bps": RATE_BPS,
            "packet_bytes": PACKET_BYTES,
            "quantum_ns": QUANTUM_NS,
            "batch_per_quantum": BATCH_PER_QUANTUM,
            "ingress_burst": INGRESS_BURST,
            "ingress_burst_quanta": INGRESS_BURST_QUANTA,
            "zipf_skew": ZIPF_SKEW,
            "rebalance_interval_ns": REBALANCE_INTERVAL_NS,
            "steal_min_backlog": STEAL_MIN_BACKLOG,
            "seed": SEED,
            "modelled_clock_hz": METER.cycles_per_second,
        },
        "shard_counts": SHARD_COUNTS,
        "scenarios": scenarios,
    }


def write_artifact(results: dict, path: Path = ARTIFACT_PATH) -> Path:
    """Write ``BENCH_sharding.json`` (the scaling-trajectory artifact)."""
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def _format_sweep(results: dict) -> str:
    lines = []
    header = f"{'scenario':<24}" + "".join(f"s={shards:<16}" for shards in results["shard_counts"])
    lines.append(header + " (modelled Mops/s | imbalance | wall Mops/s)")
    for distribution, by_rebalance in results["scenarios"].items():
        for key, by_shards in by_rebalance.items():
            row = f"{distribution + '/' + key:<24}"
            for shards in results["shard_counts"]:
                run = by_shards[str(shards)]
                row += (
                    f"{run['aggregate_ops_per_sec'] / 1e6:5.2f}|{run['imbalance']:4.2f}"
                    f"|{run['harness_ops_per_sec'] / 1e6:4.2f}w  "
                )
            lines.append(row)
    return "\n".join(lines)


# -- pytest entry points ------------------------------------------------------


def test_sharding_scaling_sweep(benchmark, tmp_path):
    results = benchmark.pedantic(
        run_sharding_sweep, kwargs={"num_packets": SMOKE_PACKETS}, rounds=1, iterations=1
    )
    # The committed BENCH_sharding.json holds the full-size run (plus
    # machine-dependent wall-clock numbers), so the test writes to a scratch
    # path; regenerate deliberately via `python benchmarks/bench_sharding.py`.
    path = write_artifact(results, tmp_path / "BENCH_sharding.json")
    report("Sharding sweep — aggregate throughput vs shard count", _format_sweep(results))
    benchmark.extra_info["artifact"] = str(path)

    uniform = results["scenarios"]["uniform"]["rebalance_off_steal_off"]
    # The acceptance gate: aggregate throughput improves monotonically from
    # 1 -> 4 shards under the uniform hash, and 4 shards beat 1 outright.
    assert (
        uniform["1"]["aggregate_ops_per_sec"]
        < uniform["2"]["aggregate_ops_per_sec"]
        < uniform["4"]["aggregate_ops_per_sec"]
    ), _format_sweep(results)
    assert uniform["4"]["aggregate_ops_per_sec"] > uniform["1"]["aggregate_ops_per_sec"]
    # Stealing must leave the uniform rows untouched within noise: balanced
    # shards have nothing worth robbing, so the thief/victim gates should
    # keep the handoff machinery out of the way.
    uniform_steal = results["scenarios"]["uniform"]["rebalance_off_steal_on"]
    for shards in SHARD_COUNTS:
        off = uniform["%d" % shards]["aggregate_ops_per_sec"]
        on = uniform_steal["%d" % shards]["aggregate_ops_per_sec"]
        assert 0.93 <= on / off <= 1.10, (
            f"uniform throughput moved beyond noise at {shards} shards: "
            f"{off / 1e6:.2f} -> {on / 1e6:.2f} Mops/s\n" + _format_sweep(results)
        )
    # The tentpole gate: stacking work stealing on the rebalancer strictly
    # lowers the Zipf bottleneck imbalance at 4 and 8 shards — stealing
    # splits the elephant flow in time, which migration alone cannot.
    zipf_rebalance = results["scenarios"]["zipf"]["rebalance_on_steal_off"]
    zipf_both = results["scenarios"]["zipf"]["rebalance_on_steal_on"]
    for shards in (4, 8):
        off = zipf_rebalance[str(shards)]
        on = zipf_both[str(shards)]
        assert on["packets_stolen"] > 0, f"no steals landed at {shards} shards"
        assert on["imbalance"] < off["imbalance"], (
            f"stealing did not lower the Zipf imbalance at {shards} shards: "
            f"{off['imbalance']:.3f} -> {on['imbalance']:.3f}\n" + _format_sweep(results)
        )
    # Conservation at every point of the sweep.
    for by_policy in results["scenarios"].values():
        for by_shards in by_policy.values():
            for run in by_shards.values():
                assert run["transmitted"] == SMOKE_PACKETS


def test_zipf_rebalancing_repairs_imbalance(benchmark):
    flow_ids = _flow_sequence("zipf", SMOKE_PACKETS)

    def run_pair():
        return (
            _run_one(4, flow_ids, rebalance=False, steal=False),
            _run_one(4, flow_ids, rebalance=True, steal=False),
        )

    static, rebalanced = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    report(
        "Zipf skew, 4 shards — static vs rebalanced",
        (
            f"static:     imbalance={static['imbalance']:.2f} "
            f"agg={static['aggregate_ops_per_sec'] / 1e6:.2f} Mops/s\n"
            f"rebalanced: imbalance={rebalanced['imbalance']:.2f} "
            f"agg={rebalanced['aggregate_ops_per_sec'] / 1e6:.2f} Mops/s "
            f"({rebalanced['migrations']} migrations)"
        ),
    )
    assert rebalanced["migrations"] > 0, "rebalancer never migrated a flow"
    assert rebalanced["imbalance"] <= static["imbalance"] + 1e-9
    assert (
        rebalanced["aggregate_ops_per_sec"]
        >= static["aggregate_ops_per_sec"] * 0.95
    )


def test_zipf_stealing_beats_rebalance_only(benchmark):
    """Work stealing stacked on rebalancing: strictly lower Zipf imbalance."""
    flow_ids = _flow_sequence("zipf", SMOKE_PACKETS)

    def run_pair():
        return (
            _run_one(8, flow_ids, rebalance=True, steal=False),
            _run_one(8, flow_ids, rebalance=True, steal=True),
        )

    rebalanced, stolen = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    report(
        "Zipf skew, 8 shards — rebalance-only vs rebalance+steal",
        (
            f"rebalance only:  imbalance={rebalanced['imbalance']:.2f} "
            f"agg={rebalanced['aggregate_ops_per_sec'] / 1e6:.2f} Mops/s\n"
            f"rebalance+steal: imbalance={stolen['imbalance']:.2f} "
            f"agg={stolen['aggregate_ops_per_sec'] / 1e6:.2f} Mops/s "
            f"({stolen['steals_succeeded']} leases, "
            f"{stolen['packets_stolen']} packets stolen)"
        ),
    )
    assert stolen["packets_stolen"] > 0, "work stealing never landed a lease"
    assert stolen["imbalance"] < rebalanced["imbalance"]
    assert (
        stolen["aggregate_ops_per_sec"]
        >= rebalanced["aggregate_ops_per_sec"] * 0.95
    )


if __name__ == "__main__":
    sweep = run_sharding_sweep()
    artifact = write_artifact(sweep)
    print(_format_sweep(sweep))
    print(f"\nwrote {artifact}")
