"""Unit tests for the sharding layer: FlowSharder, ShardRebalancer, Mailbox."""

import pytest

from repro.runtime import (
    FlowSharder,
    Mailbox,
    ShardRebalancer,
    rss_hash,
)


class TestRssHash:
    def test_deterministic(self):
        assert rss_hash(42) == rss_hash(42)
        assert rss_hash(42, seed=1) == rss_hash(42, seed=1)

    def test_seed_changes_placement(self):
        values_a = [rss_hash(flow, seed=1) % 8 for flow in range(64)]
        values_b = [rss_hash(flow, seed=2) % 8 for flow in range(64)]
        assert values_a != values_b

    def test_avalanches_dense_ids(self):
        # Sequential flow ids must spread over shards, not stripe trivially.
        shards = [rss_hash(flow) % 4 for flow in range(1000)]
        counts = [shards.count(shard) for shard in range(4)]
        assert min(counts) > 150  # each shard gets a meaningful share


class TestFlowSharder:
    def test_hash_policy_is_stable(self):
        sharder = FlowSharder(4)
        first = [sharder.shard_for(flow) for flow in range(100)]
        second = [sharder.shard_for(flow) for flow in range(100)]
        assert first == second
        assert all(0 <= shard < 4 for shard in first)

    def test_round_robin_policy_sticks(self):
        sharder = FlowSharder(3, policy="round_robin")
        assert [sharder.shard_for(flow) for flow in (10, 20, 30, 40)] == [0, 1, 2, 0]
        # Re-lookups keep the first-seen assignment.
        assert sharder.shard_for(20) == 1

    def test_pin_overrides_policy_and_unpin_restores(self):
        sharder = FlowSharder(4)
        natural = sharder.shard_for(7)
        target = (natural + 1) % 4
        sharder.pin(7, target)
        assert sharder.shard_for(7) == target
        assert sharder.pinned_shard(7) == target
        sharder.unpin(7)
        assert sharder.shard_for(7) == natural

    def test_load_window(self):
        sharder = FlowSharder(2)
        sharder.record(1, 0, packets=3)
        sharder.record(2, 1, packets=1)
        assert sharder.shard_loads() == [3, 1]
        assert sharder.flow_loads() == {1: 3, 2: 1}
        assert sharder.imbalance() == pytest.approx(1.5)
        sharder.reset_window()
        assert sharder.shard_loads() == [0, 0]
        assert sharder.imbalance() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSharder(0)
        with pytest.raises(ValueError):
            FlowSharder(2, policy="nope")
        with pytest.raises(ValueError):
            FlowSharder(2).pin(1, 5)


class TestShardRebalancer:
    def _loaded_sharder(self):
        """Two shards, everything pinned so placement is explicit."""
        sharder = FlowSharder(2)
        for flow, shard in ((1, 0), (2, 0), (3, 1)):
            sharder.pin(flow, shard)
        return sharder

    def test_migrates_hot_flow_to_cold_shard(self):
        sharder = self._loaded_sharder()
        sharder.record(1, 0, packets=60)
        sharder.record(2, 0, packets=40)
        sharder.record(3, 1, packets=10)
        plan = ShardRebalancer(sharder, imbalance_threshold=1.1).plan()
        assert plan, "expected at least one migration"
        moved = plan[0]
        assert moved.src_shard == 0 and moved.dst_shard == 1
        # flow 1 (60 packets) would overshoot (10+60 > 100-60); flow 2 moves.
        assert moved.flow_id == 2

    def test_no_plan_when_balanced(self):
        sharder = self._loaded_sharder()
        sharder.record(1, 0, packets=10)
        sharder.record(3, 1, packets=10)
        assert ShardRebalancer(sharder).plan() == []

    def test_skips_unsplittable_elephant(self):
        sharder = FlowSharder(2)
        sharder.pin(1, 0)
        sharder.record(1, 0, packets=100)
        # One flow is the entire imbalance; migrating it only moves the spot.
        assert ShardRebalancer(sharder, imbalance_threshold=1.1).plan() == []

    def test_respects_migration_budget(self):
        sharder = FlowSharder(2)
        for flow in range(10):
            sharder.pin(flow, 0)
            sharder.record(flow, 0, packets=10)
        plan = ShardRebalancer(
            sharder, imbalance_threshold=1.0, max_migrations_per_round=2
        ).plan()
        assert len(plan) <= 2

    def test_single_shard_never_plans(self):
        sharder = FlowSharder(1)
        sharder.record(1, 0, packets=100)
        assert ShardRebalancer(sharder).plan() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRebalancer(FlowSharder(2), imbalance_threshold=0.5)
        with pytest.raises(ValueError):
            ShardRebalancer(FlowSharder(2), max_migrations_per_round=0)


class TestMailbox:
    def test_fifo_order(self):
        mailbox = Mailbox()
        for item in range(5):
            assert mailbox.push(item)
        assert mailbox.drain() == [0, 1, 2, 3, 4]
        assert mailbox.empty

    def test_drain_limit(self):
        mailbox = Mailbox()
        mailbox.push_batch(range(10))
        assert mailbox.drain(limit=3) == [0, 1, 2]
        assert len(mailbox) == 7
        assert mailbox.drain(limit=0) == []

    def test_capacity_tail_drop(self):
        mailbox = Mailbox(capacity=3)
        accepted = mailbox.push_batch(range(5))
        assert accepted == 3
        assert not mailbox.push(99)
        assert mailbox.stats.dropped == 3
        assert mailbox.drain() == [0, 1, 2]

    def test_stats(self):
        mailbox = Mailbox()
        mailbox.push_batch(range(4))
        mailbox.drain(limit=2)
        mailbox.drain()
        stats = mailbox.stats
        assert stats.pushed == 4
        assert stats.drained == 4
        assert stats.drain_calls == 2
        assert stats.peak_occupancy == 4
        assert stats.as_dict()["pushed"] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            Mailbox(capacity=0)
        with pytest.raises(ValueError):
            Mailbox().drain(limit=-1)

    def test_capacity_one_alternates_push_and_drain(self):
        # The smallest legal ring: one slot, every second push must drop
        # until the consumer makes room again.
        mailbox = Mailbox(capacity=1)
        assert mailbox.push("a")
        assert not mailbox.push("b")
        assert mailbox.stats.dropped == 1
        assert mailbox.drain() == ["a"]
        assert mailbox.push("c")
        assert mailbox.drain(limit=1) == ["c"]
        assert mailbox.empty
        assert mailbox.stats.pushed == 2
        assert mailbox.stats.drained == 2
        assert mailbox.stats.peak_occupancy == 1

    def test_drop_accounting_across_snapshot_and_diff(self):
        # Consumers charge deltas phase by phase: drops recorded before a
        # snapshot must never leak into the next phase's diff.
        mailbox = Mailbox(capacity=2)
        mailbox.push_batch(range(5))  # 2 accepted, 3 dropped
        earlier = mailbox.stats.snapshot()
        assert earlier.dropped == 3
        mailbox.drain()
        mailbox.push_batch(range(3))  # 2 accepted, 1 dropped
        delta = mailbox.stats.diff(earlier)
        assert delta.dropped == 1
        assert delta.pushed == 2
        assert delta.drained == 2
        # The snapshot is independent of the live counters.
        assert earlier.dropped == 3
        assert mailbox.stats.dropped == 4

    def test_peak_occupancy_tracks_batched_pushes(self):
        mailbox = Mailbox()
        mailbox.push_batch(range(4))
        assert mailbox.stats.peak_occupancy == 4
        mailbox.drain(limit=3)
        # A later, smaller high-water mark must not lower the peak...
        mailbox.push_batch(range(2))
        assert mailbox.stats.peak_occupancy == 4
        # ...and a larger one raises it, counted mid-batch, not per call.
        mailbox.push_batch(range(10))
        assert mailbox.stats.peak_occupancy == 13
        bounded = Mailbox(capacity=3)
        bounded.push_batch(range(100))
        assert bounded.stats.peak_occupancy == 3
        assert bounded.stats.dropped == 97


class TestMailboxWatermarks:
    """High/low watermark hysteresis: the pause/resume edges of backpressure."""

    def test_pause_and_resume_edges_fire_callbacks(self):
        events = []
        mailbox = Mailbox(
            capacity=8,
            high_watermark=4,
            low_watermark=1,
            on_high=lambda: events.append("high"),
            on_low=lambda: events.append("low"),
        )
        mailbox.push_batch(range(3))
        assert not mailbox.paused and events == []
        mailbox.push(3)  # occupancy 4 == high: the rising edge
        assert mailbox.paused
        assert events == ["high"]
        assert mailbox.stats.stalls == 1
        mailbox.drain(limit=2)  # occupancy 2 > low: still inside the band
        assert mailbox.paused and events == ["high"]
        mailbox.drain(limit=1)  # occupancy 1 == low: the falling edge
        assert not mailbox.paused
        assert events == ["high", "low"]

    def test_one_stall_per_episode_not_per_push(self):
        mailbox = Mailbox(capacity=8, high_watermark=2, low_watermark=0)
        mailbox.push_batch(range(4))  # crosses high once mid-batch
        mailbox.push(99)  # already paused: no second stall
        assert mailbox.stats.stalls == 1
        mailbox.drain()
        assert not mailbox.paused
        mailbox.push_batch(range(3))
        assert mailbox.stats.stalls == 2

    def test_hysteresis_at_capacity_one(self):
        # The smallest legal band: high=1, low=0 — every resident item
        # pauses the producer, and only a full drain resumes it.
        mailbox = Mailbox(capacity=1, high_watermark=1, low_watermark=0)
        assert mailbox.push("a")
        assert mailbox.paused
        assert mailbox.drain() == ["a"]
        assert not mailbox.paused
        assert mailbox.push("b")
        assert mailbox.paused
        assert mailbox.stats.stalls == 2

    def test_hysteresis_at_capacity_n_with_default_low(self):
        # configure_watermarks defaults low to high // 2.
        mailbox = Mailbox(capacity=10)
        mailbox.configure_watermarks(10)
        assert mailbox.low_watermark == 5
        mailbox.push_batch(range(10))
        assert mailbox.paused
        mailbox.drain(limit=4)  # occupancy 6 > 5: still paused
        assert mailbox.paused
        mailbox.drain(limit=1)  # occupancy 5 == low: resumed
        assert not mailbox.paused
        # Re-crossing high pauses again (a second episode).
        mailbox.push_batch(range(5))
        assert mailbox.paused
        assert mailbox.stats.stalls == 2

    def test_configure_after_fill_detects_existing_occupancy(self):
        mailbox = Mailbox()
        mailbox.push_batch(range(6))
        mailbox.configure_watermarks(4, 2)
        assert mailbox.paused  # installing the watermark sees occupancy 6
        assert mailbox.stats.stalls == 1

    def test_clearing_watermarks_unpauses(self):
        mailbox = Mailbox(capacity=4, high_watermark=2)
        mailbox.push_batch(range(3))
        assert mailbox.paused
        mailbox.configure_watermarks(None)
        assert not mailbox.paused
        assert mailbox.high_watermark is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Mailbox(capacity=4, high_watermark=5)
        with pytest.raises(ValueError):
            Mailbox(high_watermark=0)
        with pytest.raises(ValueError):
            Mailbox(high_watermark=4, low_watermark=4)
        with pytest.raises(ValueError):
            Mailbox(high_watermark=4, low_watermark=-1)


class TestRebalancerResidency:
    def test_plans_from_residency_not_placement(self):
        # Flow 1 was re-pinned to shard 1 but never drained: its packets
        # still run on shard 0, and the planner must see it there.
        sharder = FlowSharder(2)
        for flow, shard in ((1, 0), (2, 0), (3, 1)):
            sharder.pin(flow, shard)
        sharder.record(1, 0, packets=60)
        sharder.record(2, 0, packets=40)
        sharder.record(3, 1, packets=10)
        sharder.pin(1, 1)  # pending migration, not yet effective
        plan = ShardRebalancer(sharder, imbalance_threshold=1.1).plan()
        assert plan, "expected a migration despite the stale pin"
        # The plan moves load off shard 0, where the packets actually ran.
        assert all(migration.src_shard == 0 for migration in plan)
