"""Cross-shard work stealing: bounded request channels and flow leases.

The rebalancer migrates *whole flows*, so a single elephant flow still
bottlenecks the shard it lives on (the Zipf rows of ``BENCH_sharding.json``).
Work stealing attacks exactly that case: an **idle** shard (the thief) takes
over a bounded batch of a busy sibling's (the victim's) imminent work — the
packets due within the next scheduling horizon — while the flow's remaining
packets stay behind.  A flow is thereby *split across cores in time* without
ever being split in order.

Order preservation is the hard part, and it is carried by an explicit
**flow-ownership lease** (:class:`FlowLease`):

* the victim extracts the due window *atomically* — for every flow touched,
  the stolen packets are a stamp-ordered prefix of that flow's queued
  packets, because per-flow timestamps are monotone;
* every flow in the batch is marked **on loan**: the victim defers its own
  drains of that flow (due packets park in a side buffer) and defers
  stamping of new arrivals, because the flow's pacing state
  (:class:`~repro.core.model.transactions.ShapingTransaction`) travels with
  the lease exactly as it does with a rebalancer migration;
* the thief releases the stolen packets through its own paced drain (their
  timestamps are preserved), and once the last one has left, the lease
  *returns*: shapers are re-adopted, deferred packets flush, and the flow is
  whole again on its home shard.

The request side is a bounded :class:`StealChannel` per victim — the
message-passing shape of real work-stealing runtimes (an idle core parks a
steal request; the owner hands work over at a safe point), which keeps the
hot structures single-writer: only the victim ever touches its own queue.

That single-writer discipline is the protocol's real-core seam: grant and
release are plain message handoffs (a lease is just a record crossing a
ring, like the shared-memory rings of :mod:`repro.runtime.shm`), with no
shared mutable queue state to lock.  The parallel execution backends of
:mod:`repro.runtime.backend` do not yet drive it — they currently require
stealing disabled, because a lease couples two shards' clocks — so today
stealing runs on the simulated backend only; the channel/lease message
shapes are what a cross-process implementation would reuse verbatim.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..core.model.packet import Packet
from ..core.model.transactions import ShapingTransaction
from ..core.queues import QueueStats
from ..core.queues.base import CounterStatsMixin


@dataclass(slots=True)
class StealStats(CounterStatsMixin):
    """Per-shard stealing counters, split by role.

    Thief-role counters: ``requests_posted`` / ``requests_dropped`` (channel
    full) / ``requests_stale`` (the thief found its own work before the grant
    landed), ``leases_received``, ``packets_stolen``, and ``cycles_stolen`` —
    the modelled cycles this shard spent *splicing in* other shards' work
    (cross-core handoff, the victim-side extraction carried by the lease,
    and the re-enqueue into its own queue).  The subsequent paced release of
    the stolen packets goes through the thief's ordinary drain path and is
    charged to its cost account like any other traffic, so ``cycles_stolen``
    is the protocol's overhead, not the full load moved off the victim.

    Victim-role counters: ``leases_granted`` / ``leases_returned``,
    ``packets_lent``, and the deferral accounting that protects per-flow
    FIFO while a lease is out (``drains_deferred`` / ``ingests_deferred``).
    """

    requests_posted: int = 0
    requests_dropped: int = 0
    requests_stale: int = 0
    leases_received: int = 0
    packets_stolen: int = 0
    cycles_stolen: float = 0.0
    leases_granted: int = 0
    leases_returned: int = 0
    packets_lent: int = 0
    drains_deferred: int = 0
    ingests_deferred: int = 0


@dataclass(frozen=True)
class StealRequest:
    """One idle shard's parked request to take over a victim's due work."""

    thief_shard: int
    posted_at_ns: int


@dataclass(slots=True)
class StealChannelStats(CounterStatsMixin):
    """Counters kept by one steal-request channel."""

    posted: int = 0
    duplicates: int = 0
    dropped_full: int = 0
    popped: int = 0


class StealChannel:
    """Bounded FIFO of :class:`StealRequest` entries parked at one victim.

    A request *parks* until the victim has stealable work — the standing
    "work wanted" token of message-passing work stealing — so the channel
    deduplicates per thief (an idle shard holds at most one outstanding
    request per victim) and bounds total occupancy like any other
    cross-core ring (:class:`~repro.runtime.mailbox.Mailbox` semantics:
    overflow is dropped and counted, never blocked on).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.stats = StealChannelStats()
        self._requests: Deque[StealRequest] = deque()
        self._parked: set[int] = set()

    def post(self, request: StealRequest) -> str:
        """Park ``request``; returns ``"accepted"``, ``"duplicate"`` or ``"full"``."""
        if request.thief_shard in self._parked:
            self.stats.duplicates += 1
            return "duplicate"
        if self.capacity is not None and len(self._requests) >= self.capacity:
            self.stats.dropped_full += 1
            return "full"
        self._requests.append(request)
        self._parked.add(request.thief_shard)
        self.stats.posted += 1
        return "accepted"

    def peek(self) -> Optional[StealRequest]:
        """The oldest parked request, or ``None`` when empty."""
        return self._requests[0] if self._requests else None

    def pop(self) -> StealRequest:
        """Remove and return the oldest parked request."""
        request = self._requests.popleft()
        self._parked.discard(request.thief_shard)
        self.stats.popped += 1
        return request

    def __len__(self) -> int:
        return len(self._requests)

    @property
    def empty(self) -> bool:
        """True when no requests are parked."""
        return not self._requests


class StealTuner:
    """Adaptive steal sizing: an EWMA of observed lease sizes drives the knobs.

    The configured ``steal_batch`` / ``steal_horizon_ns`` are treated as
    *ceilings*; the tuner only ever shrinks them toward what victims actually
    hand over.  When every lease comes back small (shallow due windows — the
    common case between bursts), a full-sized grant just makes the donor scan
    a wide horizon for packets that are not there, so the tuner narrows both
    knobs; when leases fill the batch again the EWMA climbs and the knobs
    recover toward their ceilings within a few observations.

    Shrinking is strictly safe for the FIFO protocol: a smaller batch or
    horizon changes only *how much* of a victim's due window one lease
    carries, never its stamp-ordered-prefix shape, so every ordering argument
    of :class:`FlowLease` applies unchanged (the differential tests pin this).

    The effective batch is ``clamp(round(2 * ewma), min_batch, base_batch)``
    — twice the typical lease size, so a victim that starts handing over
    fuller windows has headroom to be observed doing it — and the horizon
    scales proportionally with the batch (floored at ``min_horizon_ns`` so a
    run of empty observations cannot pin stealing off permanently).
    """

    __slots__ = (
        "base_batch",
        "base_horizon_ns",
        "alpha",
        "min_batch",
        "min_horizon_ns",
        "ewma",
        "observations",
    )

    def __init__(
        self,
        base_batch: int,
        base_horizon_ns: int,
        alpha: float = 0.25,
        min_batch: int = 1,
        min_horizon_ns: Optional[int] = None,
    ) -> None:
        if base_batch <= 0:
            raise ValueError("base_batch must be positive")
        if base_horizon_ns < 0:
            raise ValueError("base_horizon_ns must be non-negative")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 < min_batch <= base_batch:
            raise ValueError("min_batch must be in [1, base_batch]")
        self.base_batch = base_batch
        self.base_horizon_ns = base_horizon_ns
        self.alpha = alpha
        self.min_batch = min_batch
        # An eighth of the ceiling keeps a sliver of lookahead even after a
        # long run of single-packet leases.
        self.min_horizon_ns = (
            base_horizon_ns // 8 if min_horizon_ns is None else min_horizon_ns
        )
        # Start at the ceiling: the first grants behave exactly like the
        # non-adaptive configuration until real lease sizes arrive.
        self.ewma = float(base_batch)
        self.observations = 0

    def observe(self, lease_size: int) -> None:
        """Feed one granted lease's packet count into the EWMA."""
        if lease_size < 0:
            raise ValueError("lease_size must be non-negative")
        self.ewma += self.alpha * (lease_size - self.ewma)
        self.observations += 1

    @property
    def batch(self) -> int:
        """Effective ``steal_batch`` for the next grant."""
        return max(self.min_batch, min(self.base_batch, round(2.0 * self.ewma)))

    @property
    def horizon_ns(self) -> int:
        """Effective ``steal_horizon_ns`` for the next grant."""
        scaled = self.base_horizon_ns * self.batch // self.base_batch
        return max(self.min_horizon_ns, scaled)


@dataclass
class FlowLease:
    """An atomic, order-preserving handoff of one due window to a thief.

    ``packets`` are ``(send_at_ns, packet)`` pairs in extraction (global
    stamp) order; for each flow in ``flow_ids`` they form a prefix of that
    flow's stamped sequence.  ``shapers`` carries the pacing state of every
    paced flow on loan (stateless flows are simply absent).  ``queue_delta``
    is the extraction work measured on the victim's queue but *charged to
    the thief's* cycle account — on real hardware the thief's core executes
    the pops, and moving those cycles off the bottleneck core is the whole
    point of stealing.
    """

    lease_id: int
    victim_shard: int
    thief_shard: int
    packets: List[Tuple[int, Packet]]
    flow_ids: Tuple[int, ...]
    shapers: Dict[int, ShapingTransaction] = field(default_factory=dict)
    queue_delta: QueueStats = field(default_factory=QueueStats)
    granted_at_ns: int = 0

    def __len__(self) -> int:
        return len(self.packets)


__all__ = [
    "FlowLease",
    "StealChannel",
    "StealChannelStats",
    "StealRequest",
    "StealStats",
    "StealTuner",
]
