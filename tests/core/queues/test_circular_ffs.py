"""Unit tests for the circular hierarchical FFS queue (cFFS)."""

import random

import pytest

from repro.core.queues import BucketSpec, CircularFFSQueue, EmptyQueueError


def make_queue(num_buckets=64, granularity=1, base=0, **kwargs):
    return CircularFFSQueue(
        BucketSpec(num_buckets=num_buckets, granularity=granularity, base_priority=base),
        **kwargs,
    )


class TestRanges:
    def test_initial_ranges(self):
        queue = make_queue(num_buckets=10, granularity=5, base=100)
        assert queue.primary_range == (100, 150)
        assert queue.secondary_range == (150, 200)
        assert queue.window_span == 50

    def test_rotation_advances_head(self):
        queue = make_queue(num_buckets=4, granularity=1, base=0)
        queue.enqueue(6, "secondary")  # falls in the secondary window [4, 8)
        assert queue.extract_min() == (6, "secondary")
        assert queue.h_index == 4
        assert queue.stats.rotations == 1


class TestOrdering:
    def test_orders_across_windows(self):
        queue = make_queue(num_buckets=8)
        queue.enqueue(12, "second")  # secondary window
        queue.enqueue(3, "first")  # primary window
        assert queue.extract_min() == (3, "first")
        assert queue.extract_min() == (12, "second")

    def test_moving_range_many_rotations(self):
        queue = make_queue(num_buckets=16)
        # Enqueue/dequeue in waves so the range keeps moving far beyond the
        # original window.
        now = 0
        for wave in range(50):
            for offset in (1, 5, 9):
                queue.enqueue(now + offset, (wave, offset))
            drained = [queue.extract_min() for _ in range(3)]
            assert [p for p, _ in drained] == sorted(p for p, _ in drained)
            now += 16
        assert queue.stats.rotations > 10

    def test_random_within_two_windows_fully_sorted(self):
        rng = random.Random(5)
        queue = make_queue(num_buckets=128)
        priorities = [rng.randrange(0, 256) for _ in range(1000)]
        for priority in priorities:
            queue.enqueue(priority, priority)
        drained = [p for p, _ in queue.extract_all()]
        assert drained == sorted(priorities)

    def test_overflow_bucket_loses_fine_order_but_keeps_elements(self):
        queue = make_queue(num_buckets=4)
        # Horizon is 4+4=8; priorities >= 8 overflow into the last bucket.
        queue.enqueue(100, "way-out-1")
        queue.enqueue(90, "way-out-2")
        queue.enqueue(1, "now")
        assert queue.stats.overflow_enqueues == 2
        drained = list(queue.extract_all())
        assert drained[0] == (1, "now")
        assert {item for _, item in drained[1:]} == {"way-out-1", "way-out-2"}


class TestStaleAndErrors:
    def test_stale_priority_clamped_to_head(self):
        queue = make_queue(num_buckets=8, base=100)
        queue.enqueue(50, "stale")
        queue.enqueue(103, "fresh")
        priority, item = queue.extract_min()
        assert item == "stale"
        assert priority == 50  # original priority is preserved in the entry

    def test_stale_priority_rejected_when_disallowed(self):
        queue = make_queue(num_buckets=8, base=100, allow_stale=False)
        with pytest.raises(ValueError):
            queue.enqueue(50, "stale")

    def test_empty_queue_raises(self):
        queue = make_queue()
        with pytest.raises(EmptyQueueError):
            queue.extract_min()
        with pytest.raises(EmptyQueueError):
            queue.peek_min()


class TestExtractDue:
    def test_extract_due_releases_only_past(self):
        queue = make_queue(num_buckets=32)
        for timestamp in (5, 10, 15, 20):
            queue.enqueue(timestamp, f"t{timestamp}")
        released = queue.extract_due(now=12)
        assert [p for p, _ in released] == [5, 10]
        assert len(queue) == 2

    def test_extract_due_empty(self):
        queue = make_queue()
        assert queue.extract_due(now=100) == []


class TestRemove:
    def test_remove_from_primary(self):
        queue = make_queue(num_buckets=16)
        token = object()
        queue.enqueue(5, token)
        queue.enqueue(5, "other")
        assert queue.remove(5, token)
        assert len(queue) == 1

    def test_remove_from_secondary(self):
        queue = make_queue(num_buckets=16)
        token = object()
        queue.enqueue(20, token)  # secondary window [16, 32)
        assert queue.remove(20, token)
        assert queue.empty

    def test_remove_missing(self):
        queue = make_queue(num_buckets=16)
        assert not queue.remove(3, "ghost")
