"""Unit tests for policy descriptions, the parser, and the compiler."""

import pytest

from repro.core.model import (
    Discipline,
    PolicyNodeSpec,
    PolicySpec,
    compile_policy,
    describe_policy,
    parse_policy,
)
from repro.core.model import Packet


def figure7_policy():
    """The hierarchical policy of Figure 7: nested rate limits plus pacing."""
    return PolicySpec(
        name="figure7",
        nodes=[
            PolicyNodeSpec(name="root", discipline=Discipline.WFQ),
            PolicyNodeSpec(name="left", parent="root", weight=0.3),
            PolicyNodeSpec(
                name="right", parent="root", weight=0.7, rate_limit_bps=10e6,
                discipline=Discipline.WFQ,
            ),
            PolicyNodeSpec(name="right_a", parent="right", weight=0.5),
            PolicyNodeSpec(
                name="right_b", parent="right", weight=0.5, rate_limit_bps=7e6
            ),
        ],
        pacing_rate_bps=20e6,
        flow_to_leaf={1: "left", 2: "right_a", 3: "right_b"},
    )


class TestPolicySpecValidation:
    def test_valid_policy_passes(self):
        figure7_policy().validate()

    def test_requires_single_root(self):
        spec = PolicySpec(
            name="bad",
            nodes=[PolicyNodeSpec(name="a"), PolicyNodeSpec(name="b")],
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_unknown_parent(self):
        spec = PolicySpec(
            name="bad",
            nodes=[
                PolicyNodeSpec(name="root"),
                PolicyNodeSpec(name="x", parent="ghost"),
            ],
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_duplicate_names(self):
        spec = PolicySpec(
            name="bad",
            nodes=[PolicyNodeSpec(name="root"), PolicyNodeSpec(name="root", parent="root")],
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_unknown_flow_mapping(self):
        spec = PolicySpec(
            name="bad",
            nodes=[PolicyNodeSpec(name="root")],
            flow_to_leaf={1: "ghost"},
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_cycle_detection(self):
        spec = PolicySpec(
            name="bad",
            nodes=[
                PolicyNodeSpec(name="root"),
                PolicyNodeSpec(name="a", parent="b"),
                PolicyNodeSpec(name="b", parent="a"),
            ],
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_node_spec_validation(self):
        with pytest.raises(ValueError):
            PolicyNodeSpec(name="x", weight=0)
        with pytest.raises(ValueError):
            PolicyNodeSpec(name="x", rate_limit_bps=-1)
        with pytest.raises(ValueError):
            PolicyNodeSpec(name="x", pifo_buckets=0)

    def test_leaf_helpers(self):
        spec = figure7_policy()
        assert set(spec.leaf_names()) == {"left", "right_a", "right_b"}
        assert spec.leaf_for_flow(2) == "right_a"
        assert spec.leaf_for_flow(999) == "left"  # first leaf fallback
        assert [child.name for child in spec.children_of("right")] == [
            "right_a",
            "right_b",
        ]


class TestParser:
    def test_parse_round_trip(self):
        text = """
        # Figure 7 policy
        root wfq
        root -> left   [weight=0.3]
        root -> right  [weight=0.7] [rate=10e6] wfq
        right -> right_a [weight=0.5]
        right -> right_b [weight=0.5] [rate=7e6]
        pacing 20e6
        """
        spec = parse_policy(text, name="figure7")
        assert spec.pacing_rate_bps == 20e6
        assert spec.node("right").rate_limit_bps == 10e6
        assert spec.node("right").discipline is Discipline.WFQ
        assert spec.node("left").weight == pytest.approx(0.3)
        assert set(spec.leaf_names()) == {"left", "right_a", "right_b"}

    def test_parse_unknown_parent_raises(self):
        with pytest.raises(ValueError):
            parse_policy("root\nghost -> leaf")


class TestCompiler:
    def test_compiled_scheduler_transmits_all_packets(self):
        scheduler = compile_policy(figure7_policy())
        packets = [
            Packet(flow_id=flow, size_bytes=1500) for flow in (1, 2, 3) for _ in range(5)
        ]
        for packet in packets:
            scheduler.enqueue(packet, now_ns=0)
        # All packets clear their gates well within a second at >= 7 Mbps.
        drained = scheduler.dequeue_all_due(now_ns=10_000_000_000)
        assert len(drained) == len(packets)
        assert scheduler.empty

    def test_rate_limits_delay_packets(self):
        scheduler = compile_policy(figure7_policy())
        # Flow 3 goes through the 7 Mbps leaf: 10 x 1500 B = 120 kbit needs
        # ~17 ms; almost nothing should be deliverable after 1 ms.
        for _ in range(10):
            scheduler.enqueue(Packet(flow_id=3, size_bytes=1500), now_ns=0)
        early = scheduler.dequeue_all_due(now_ns=1_000_000)
        late = scheduler.dequeue_all_due(now_ns=100_000_000)
        assert len(early) < 10
        assert len(early) + len(late) == 10

    def test_unshaped_policy_has_no_shaper(self):
        spec = PolicySpec(
            name="plain",
            nodes=[
                PolicyNodeSpec(name="root", discipline=Discipline.STRICT),
                PolicyNodeSpec(name="gold", parent="root", priority=0),
                PolicyNodeSpec(name="best_effort", parent="root", priority=1),
            ],
            flow_to_leaf={1: "gold", 2: "best_effort"},
        )
        scheduler = compile_policy(spec)
        assert scheduler.shaper is None
        scheduler.enqueue(Packet(flow_id=2), now_ns=0)
        scheduler.enqueue(Packet(flow_id=1), now_ns=0)
        assert scheduler.dequeue(0).flow_id == 1
        assert scheduler.dequeue(0).flow_id == 2

    def test_describe_policy(self):
        description = describe_policy(figure7_policy())
        assert "figure7" in description
        assert "right_b" in description
        assert "pacing" in description

    def test_leaf_annotation_overrides_mapping(self):
        scheduler = compile_policy(figure7_policy())
        packet = Packet(flow_id=1).annotate(leaf="right_a")
        scheduler.enqueue(packet, now_ns=0)
        assert scheduler.stats.per_leaf.get("right_a") == 1


class TestSchedulerTimerSupport:
    def test_next_event_reports_shaper_deadline(self):
        scheduler = compile_policy(figure7_policy())
        assert scheduler.next_event_ns() is None
        scheduler.enqueue(Packet(flow_id=3, size_bytes=1500), now_ns=0)
        event = scheduler.next_event_ns()
        assert event is not None

    def test_next_event_zero_when_tree_ready(self):
        spec = PolicySpec(
            name="plain",
            nodes=[PolicyNodeSpec(name="root"), PolicyNodeSpec(name="leaf", parent="root")],
        )
        scheduler = compile_policy(spec)
        scheduler.enqueue(Packet(flow_id=1), now_ns=0)
        assert scheduler.next_event_ns() == 0
