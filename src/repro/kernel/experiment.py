"""Use Case 1 experiment driver: shaping in the kernel (Figures 9 and 10).

The paper's setup: two EC2 hosts, 20k ``neper`` TCP flows each rate-limited
with ``SO_MAX_PACING_RATE`` so the aggregate reaches 24 Gbps, 100 one-second
CPU samples taken with ``dstat``, comparing the FQ/pacing qdisc, a
Carousel-style qdisc, and the Eiffel qdisc (20k buckets over a 2-second
horizon).  Figure 9 plots the CDF of cores used for networking; Figure 10
splits Carousel vs Eiffel into "system" and "softirq" components.

This driver reproduces that structure on the simulated kernel substrate.  The
default parameters are scaled down (fewer flows, lower aggregate rate,
shorter samples) so the experiment completes quickly in CI; the paper-scale
parameters are a constructor call away and the *relative* results — Eiffel
cheapest, Carousel a few times more expensive (timer polling), FQ an order of
magnitude more expensive (RB-tree + GC) — hold at either scale because every
cost is charged per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from .carousel import CarouselQdisc
from .eiffel_qdisc import EiffelQdisc
from .fq_pacing import FQPacingQdisc
from .qdisc import IntervalSample, KernelSimulation, Qdisc
from ..analysis import Cdf
from ..cpu import CpuMeter
from ..traffic import NeperLikeGenerator


@dataclass
class ShapingExperimentConfig:
    """Parameters of the Use Case 1 experiment.

    The defaults are a scaled-down configuration; ``paper_scale`` returns the
    configuration the paper used.
    """

    num_flows: int = 500
    aggregate_rate_bps: float = 2.4e9
    packet_bytes: int = 1500
    num_samples: int = 10
    sample_duration_ns: int = 10_000_000
    #: Intervals run (but not recorded) before sampling starts, letting the
    #: per-flow pacing deadlines desynchronise as they would in a real system.
    warmup_samples: int = 3
    #: Per-flow pacing-rate jitter (fraction); keeps flows from phase-locking.
    rate_jitter: float = 0.2
    #: Carousel polls every timing-wheel slot; a slot of a few packet-times
    #: (10 us at the default 200 kpps) mirrors the configuration ratio of the
    #: paper's testbed (~1 us slots at 2 Mpps).
    carousel_slot_ns: int = 5_000
    eiffel_buckets: int = 20_000
    horizon_ns: int = 2_000_000_000
    seed: int = 1
    cycles_per_second: float = 3.0e9

    @classmethod
    def paper_scale(cls) -> "ShapingExperimentConfig":
        """The configuration used in the paper (slow to simulate in Python)."""
        return cls(
            num_flows=20_000,
            aggregate_rate_bps=24e9,
            num_samples=100,
            sample_duration_ns=1_000_000_000,
            carousel_slot_ns=1_000,
        )


@dataclass
class ShapingExperimentResult:
    """Per-qdisc CPU samples and derived CDFs."""

    config: ShapingExperimentConfig
    samples: Dict[str, List[IntervalSample]] = field(default_factory=dict)

    def meter(self) -> CpuMeter:
        """CPU meter configured for this experiment."""
        return CpuMeter(self.config.cycles_per_second)

    def cores_cdf(self, qdisc_name: str) -> Cdf:
        """Figure 9: CDF of total cores used for one qdisc."""
        meter = self.meter()
        return Cdf([sample.cores_used(meter) for sample in self.samples[qdisc_name]])

    def system_cores_cdf(self, qdisc_name: str) -> Cdf:
        """Figure 10 (left): CDF of system-context cores."""
        meter = self.meter()
        return Cdf([sample.system_cores(meter) for sample in self.samples[qdisc_name]])

    def softirq_cores_cdf(self, qdisc_name: str) -> Cdf:
        """Figure 10 (right): CDF of softirq-context cores."""
        meter = self.meter()
        return Cdf([sample.softirq_cores(meter) for sample in self.samples[qdisc_name]])

    def median_cores(self) -> Dict[str, float]:
        """Median cores used per qdisc (the paper's headline comparison)."""
        return {name: self.cores_cdf(name).median() for name in self.samples}

    def speedup_over(self, baseline: str, improved: str = "eiffel") -> float:
        """How many times fewer cores ``improved`` uses than ``baseline``."""
        medians = self.median_cores()
        if medians[improved] == 0:
            return float("inf")
        return medians[baseline] / medians[improved]


def build_qdiscs(
    config: ShapingExperimentConfig, flow_rates: Dict[int, float]
) -> Dict[str, Qdisc]:
    """The three qdiscs under test, configured identically."""
    return {
        "fq": FQPacingQdisc(flow_rates=dict(flow_rates)),
        "carousel": CarouselQdisc(
            flow_rates=dict(flow_rates),
            horizon_ns=config.horizon_ns,
            slot_ns=config.carousel_slot_ns,
        ),
        "eiffel": EiffelQdisc(
            flow_rates=dict(flow_rates),
            horizon_ns=config.horizon_ns,
            num_buckets=config.eiffel_buckets,
        ),
    }


def build_multiqueue_eiffel(
    config: ShapingExperimentConfig,
    flow_rates: Dict[int, float],
    num_shards: int,
):
    """An ``mq``-rooted Eiffel qdisc: the multi-core variant of Figure 9.

    One Eiffel child per virtual CPU behind the
    :class:`~repro.runtime.adapters.MultiQueueQdisc` root, flows hashed to
    children RSS-style — the deployment shape the paper's kernel use case
    runs in on a multi-queue NIC.  Every child receives the full flow-rate
    map (it only ever sees its own hash bucket's flows) and charges its own
    cost accounts, so :meth:`MultiQueueQdisc.max_child_cycles` exposes the
    bottleneck-core view the multi-core reproduction reports next to the
    single-core total.
    """
    # Imported here: repro.runtime.adapters itself imports the kernel qdisc
    # base, so a module-level import would cycle during package init.
    from ..runtime.adapters import MultiQueueQdisc

    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return MultiQueueQdisc(
        num_shards,
        lambda shard: EiffelQdisc(
            flow_rates=dict(flow_rates),
            horizon_ns=config.horizon_ns,
            num_buckets=config.eiffel_buckets,
        ),
    )


def run_shaping_experiment(
    config: ShapingExperimentConfig = ShapingExperimentConfig(),
    qdisc_filter: Callable[[str], bool] = lambda name: True,
) -> ShapingExperimentResult:
    """Run the Use Case 1 experiment and return per-qdisc CPU samples.

    Senders are closed-loop (saturated ``neper`` flows behind TSQ): each flow
    always has packets waiting in the qdisc and the achieved aggregate rate
    equals the sum of the per-flow pacing rates, as in the paper's testbed.
    """
    generator = NeperLikeGenerator(
        num_flows=config.num_flows,
        aggregate_rate_bps=config.aggregate_rate_bps,
        packet_bytes=config.packet_bytes,
        seed=config.seed,
        rate_jitter=config.rate_jitter,
    )
    flow_rates = generator.flow_rates()
    flow_ids = list(flow_rates)
    result = ShapingExperimentResult(config=config)
    for name, qdisc in build_qdiscs(config, flow_rates).items():
        if not qdisc_filter(name):
            continue
        simulation = KernelSimulation(qdisc)
        samples: List[IntervalSample] = []
        total_intervals = config.warmup_samples + config.num_samples
        for index in range(total_intervals):
            start = index * config.sample_duration_ns
            sample = simulation.run_closed_loop_interval(
                flow_ids,
                start,
                config.sample_duration_ns,
                packet_bytes=config.packet_bytes,
            )
            if index >= config.warmup_samples:
                samples.append(sample)
        result.samples[name] = samples
    return result


__all__ = [
    "ShapingExperimentConfig",
    "ShapingExperimentResult",
    "build_multiqueue_eiffel",
    "build_qdiscs",
    "run_shaping_experiment",
]
