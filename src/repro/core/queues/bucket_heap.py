"""Bucketed priority queue indexed by a binary heap — the paper's "BH" baseline.

Section 5.2's microbenchmarks compare cFFS and the approximate gradient queue
against "a basic bucketed priority queue implementation [that keeps] track of
non-empty buckets in a binary heap".  Buckets still give O(1) enqueue and
grouping of equal ranks; only the search for the minimum non-empty bucket
costs O(log B) heap operations, where B is the number of *non-empty* buckets.

The heap holds bucket indices; a lazy-deletion scheme avoids O(n) removals:
a bucket index may appear in the heap while the bucket is already empty, and
such stale entries are popped and discarded during extraction.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Iterable, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    PriorityOutOfRangeError,
    validate_priority,
)


class BucketedHeapQueue(IntegerPriorityQueue):
    """Bucketed integer priority queue whose occupancy index is a binary heap."""

    __slots__ = ("_buckets", "_heap", "_in_heap")

    def __init__(self, spec: BucketSpec) -> None:
        super().__init__(spec)
        self._buckets: list[Deque[tuple[int, Any]]] = [
            deque() for _ in range(spec.num_buckets)
        ]
        self._heap: list[int] = []
        self._in_heap = [False] * spec.num_buckets

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        if not self.spec.contains(priority):
            raise PriorityOutOfRangeError(
                f"priority {priority} outside fixed range of BucketedHeapQueue"
            )
        bucket = self.spec.bucket_for(priority)
        self.stats.enqueues += 1
        self.stats.bucket_lookups += 1
        self._buckets[bucket].append((priority, item))
        if not self._in_heap[bucket]:
            heapq.heappush(self._heap, bucket)
            self._in_heap[bucket] = True
            # Rough accounting: a push costs log2(len(heap)) sift steps.
            self.stats.heap_operations += max(1, len(self._heap).bit_length())
        self._size += 1

    def _min_bucket(self) -> int:
        while self._heap:
            bucket = self._heap[0]
            if self._buckets[bucket]:
                return bucket
            # Stale entry: the bucket drained since it was pushed.
            heapq.heappop(self._heap)
            self._in_heap[bucket] = False
            self.stats.heap_operations += max(1, len(self._heap).bit_length())
        raise EmptyQueueError("no non-empty bucket")

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty BucketedHeapQueue")
        bucket = self._min_bucket()
        entry = self._buckets[bucket].popleft()
        if not self._buckets[bucket]:
            heapq.heappop(self._heap)
            self._in_heap[bucket] = False
            self.stats.heap_operations += max(1, len(self._heap).bit_length())
        self.stats.dequeues += 1
        self._size -= 1
        return entry

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty BucketedHeapQueue")
        bucket = self._min_bucket()
        return self._buckets[bucket][0]

    # -- batch operations -----------------------------------------------------

    def _drop_min_bucket(self, bucket: int) -> None:
        heapq.heappop(self._heap)
        self._in_heap[bucket] = False
        self.stats.heap_operations += max(1, len(self._heap).bit_length())

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: at most one heap push per distinct bucket.

        Direct-append shape: a key set tracks distinct buckets for the
        amortised ``bucket_lookups`` charge, counters settle once, and a
        mid-batch validation error leaves the inserted prefix enqueued and
        counted (the base class's per-element behaviour).
        """
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        hi = base + spec.horizon
        stats = self.stats
        buckets = self._buckets
        in_heap = self._in_heap
        heap = self._heap
        heappush = heapq.heappush
        seen: set[int] = set()
        seen_add = seen.add
        count = 0
        heap_ops = 0
        try:
            for pair in pairs:
                priority = pair[0]
                if type(priority) is not int:
                    priority = validate_priority(priority)
                    pair = (priority, pair[1])
                if priority < base or priority >= hi:
                    raise PriorityOutOfRangeError(
                        f"priority {priority} outside fixed range of BucketedHeapQueue"
                    )
                bucket = (priority - base) // granularity
                seen_add(bucket)
                if not in_heap[bucket]:
                    heappush(heap, bucket)
                    in_heap[bucket] = True
                    heap_ops += max(1, len(heap).bit_length())
                buckets[bucket].append(pair)
                count += 1
        finally:
            stats.enqueues += count
            stats.bucket_lookups += len(seen)
            stats.heap_operations += heap_ops
            self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min: one heap pop per bucket drained."""
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        buckets = self._buckets
        taken = 0
        while taken < n and self._size:
            bucket = self._min_bucket()
            entries = buckets[bucket]
            space = n - taken
            if space >= len(entries):
                take = len(entries)
                batch.extend(entries)
                entries.clear()
                self._drop_min_bucket(bucket)
            else:
                take = space
                popleft = entries.popleft
                for _ in range(take):
                    batch.append(popleft())
            taken += take
            self._size -= take
        self.stats.dequeues += taken
        return batch

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        released: list[tuple[int, Any]] = []
        buckets = self._buckets
        spec = self.spec
        base = spec.base_priority
        granularity = spec.granularity
        size = self._size
        taken = 0
        while size and (limit is None or taken < limit):
            bucket = self._min_bucket()
            entries = buckets[bucket]
            # Whole-bucket fast path: bucket ceiling passed means every entry
            # is due, so one extend replaces the per-element head checks.
            if (
                base + (bucket + 1) * granularity - 1 <= now
                and (limit is None or limit - taken >= len(entries))
            ):
                count = len(entries)
                taken += count
                size -= count
                released.extend(entries)
                entries.clear()
                self._drop_min_bucket(bucket)
                continue
            while entries and entries[0][0] <= now:
                if limit is not None and taken >= limit:
                    break
                released.append(entries.popleft())
                taken += 1
                size -= 1
            if not entries:
                self._drop_min_bucket(bucket)
                continue
            break
        self.stats.dequeues += taken
        self._size = size
        return released


__all__ = ["BucketedHeapQueue"]
