#!/usr/bin/env python3
"""Use Case 2 in miniature: hClock on a busy-polling core, heap vs Eiffel.

Builds the two hClock implementations (binary min-heaps vs Eiffel's bucketed
queues), gives three traffic classes a reservation / a limit / a plain share,
verifies both enforce the same policy, and then compares the maximum rate a
single simulated core can sustain as the number of classes grows.

Run:  python examples/hclock_userspace.py
"""

from repro.bess import BessExperimentConfig, HClockEiffelModule, HClockHeapModule, measure_max_rate
from repro.core.model import Packet
from repro.core.policies import EiffelHClockScheduler, HClockClass, HeapHClockScheduler

NS_PER_MS = 1_000_000


def policy_demo() -> None:
    print("=== Policy behaviour (identical for both implementations) ===")
    for name, cls in (("eiffel", EiffelHClockScheduler), ("heap", HeapHClockScheduler)):
        scheduler = cls()
        scheduler.configure_class(1, HClockClass(reservation_bps=20e6, share=1.0))
        scheduler.configure_class(2, HClockClass(limit_bps=10e6, share=4.0))
        scheduler.configure_class(3, HClockClass(share=2.0))
        served = {1: 0, 2: 0, 3: 0}
        # Keep all three classes backlogged and serve at 100 Mbps for 50 ms.
        for flow in served:
            for _ in range(4):
                scheduler.enqueue(Packet(flow_id=flow, size_bytes=1500), now_ns=0)
        now = 0
        packet_ns = int(1500 * 8 / 100e6 * 1e9)
        while now < 50 * NS_PER_MS:
            packet = scheduler.dequeue(now_ns=now)
            if packet is not None:
                served[packet.flow_id] += packet.size_bytes
                scheduler.enqueue(Packet(flow_id=packet.flow_id, size_bytes=1500), now_ns=now)
            now += packet_ns
        rates = {flow: round(bits * 8 / 0.05 / 1e6, 1) for flow, bits in served.items()}
        print(f"  {name:6s} achieved rates (Mbps): "
              f"class1(res 20M)={rates[1]}, class2(lim 10M)={rates[2]}, class3={rates[3]}")


def scaling_demo() -> None:
    print("\n=== Single-core capacity vs number of traffic classes ===")
    config = BessExperimentConfig()
    print(f"{'classes':>8s} {'eiffel (Mbps)':>14s} {'heap (Mbps)':>12s}")
    for flows in (10, 100, 1000, 4000):
        eiffel = measure_max_rate(
            HClockEiffelModule(flows, {}), flows, config, measure_packets=128
        )
        heap = measure_max_rate(
            HClockHeapModule(flows, {}), flows, config, measure_packets=128
        )
        print(f"{flows:8d} {eiffel / 1e6:14.0f} {heap / 1e6:12.0f}")
    print("\nEiffel keeps the line rate as classes grow; the heap baseline")
    print("collapses once per-packet heap maintenance exceeds the cycle budget.")


if __name__ == "__main__":
    policy_demo()
    scaling_demo()
