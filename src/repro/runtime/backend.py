"""Execution backends: who drives the shard tick loops, and on what clock.

Everything the sharded runtime models — per-shard tick loops, batched
mailbox drains, deadline sleeps — was designed as one worker loop per CPU
core, then multiplexed onto a single :class:`~repro.netsim.simulator.Simulator`
because a simulation only has one thread.  This module extracts that choice
into an object.  :class:`~repro.runtime.runtime.ShardedRuntime` now drives
its workers through an :class:`ExecutionBackend`:

* :class:`SimulatedBackend` (the default) reproduces the historical
  behaviour bit-for-bit: every shard's tick events interleave on the shared
  simulated clock, and the differential suite pins the equivalence.
* :class:`ProcessBackend` runs **one OS process per shard**.  The ingress
  handoff that the simulated path models with the in-process SPSC
  :class:`~repro.runtime.mailbox.Mailbox` crosses the address-space boundary
  over a :class:`~repro.runtime.shm.ShmRing` (a shared-memory SPSC byte
  ring); each child replays its shard's arrival schedule against a *private*
  virtual clock using :class:`ShardClockDriver`, so the modelled results are
  identical to the simulated run while the interpreter work — stamping,
  bitmap scans, batch drains — executes in parallel on real cores.
* :class:`ThreadBackend` runs one thread per shard with a plain in-process
  handoff.  Under the GIL it demonstrates the seam without speedup; on a
  free-threaded CPython build (:func:`free_threaded` true) the same code
  scales like the process backend without pickling or fork overhead.

Why per-shard replay is exact
-----------------------------

With work stealing, rebalancing, ingress cores, flow-state GC and transmit
callbacks disabled (the runtime enforces this for parallel backends), a
shard's entire evolution is a deterministic function of its own arrival
schedule: routing is the static RSS hash, every tick reads only shard-local
state, and the tick-timer policy (:meth:`ShardWorker.next_wake_ns
<repro.runtime.worker.ShardWorker.next_wake_ns>`) is pure.  The driver
below re-creates the exact event sequence the shared simulator would have
produced for that shard — including the "arrival beats the tick at equal
timestamps" tie rule that pre-scheduled submissions enjoy on the shared
heap — so per-flow packet sequences, departure times, queue counters and
cycle accounts all match the simulated backend exactly.  The differential
suite (``tests/runtime/test_backend_differential.py``) asserts this.

Cross-shard *wall-clock* interleaving is of course not deterministic — that
is the point of running on real cores — so the only backend-defined order
is the tie order of same-nanosecond departures across different shards.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from .faults import FaultPlan
from .mailbox import MailboxStats
from .observability import LogHistogram
from .shm import RING_EMPTY, ShmFrameCorrupt, ShmRing
from .worker import ShardWorker, ShardWorkerStats
from ..core.model.packet import Packet
from ..core.queues import QueueStats
from ..netsim.simulator import EventHandle, Simulator

#: One timed submission: every packet of the burst arrives at ``when_ns``.
Burst = Tuple[int, List[Packet]]


def free_threaded() -> bool:
    """True on a CPython build running with the GIL disabled.

    :class:`ThreadBackend` is correct either way; this is the gate for
    expecting *speedup* from it (``sys._is_gil_enabled()`` exists on 3.13+
    free-threading builds and returns False when threads truly run in
    parallel).
    """
    import sys

    probe = getattr(sys, "_is_gil_enabled", None)
    return probe is not None and not probe()


@dataclass
class WorkerSpec:
    """Everything needed to rebuild one shard's scheduling loop elsewhere.

    ``worker_kwargs`` are the :class:`~repro.runtime.worker.ShardWorker`
    constructor arguments; the remaining fields are the runtime's driving
    knobs, mirrored so a child process reproduces the exact per-tick budget
    arithmetic of :meth:`ShardedRuntime._tick`.
    """

    shard_id: int
    worker_kwargs: Dict[str, Any]
    quantum_ns: int
    batch_per_quantum: int
    ingest_per_quantum: Optional[int]
    shard_backlog_limit: Optional[int]
    record_transmits: bool = True


@dataclass
class ShardResult:
    """Picklable end-of-run snapshot one shard driver hands back on join.

    Every field is either a plain value or a counter dataclass whose
    :class:`~repro.core.queues.base.CounterStatsMixin` makes it pickle
    cleanly despite ``__slots__`` — this is the "telemetry crosses the
    process boundary" half of the backend refactor.
    """

    shard_id: int
    stats: ShardWorkerStats
    queue_stats: QueueStats
    mailbox: MailboxStats
    cycles: float
    cost_breakdown: Dict[str, float]
    transmits: List[Tuple[int, Packet]]
    drops: int
    end_ns: int
    events_processed: int
    #: End-of-run gauges of the shard's array-backed pacing table (see
    #: :mod:`repro.runtime.flowstate`): flows still holding pacing state and
    #: the measured bytes of the columns — the per-shard halves of the
    #: runtime's ``flow_state`` telemetry block on parallel backends.
    pacing_live_flows: int = 0
    pacing_memory_bytes: int = 0
    #: Per-seam latency histograms (``None`` unless the runtime armed
    #: ``latency_histograms``) — merged across shards on join exactly like
    #: the counter snapshots above (the histogram is picklable through the
    #: same ``__getstate__`` wire-format discipline).
    mailbox_wait: Optional[LogHistogram] = None
    queue_wait: Optional[LogHistogram] = None
    e2e_latency: Optional[LogHistogram] = None


@dataclass
class _ChildError:
    """A child's formatted traceback, shipped in place of its result."""

    shard_id: int
    message: str


class ShardClockDriver:
    """Replays one shard's arrival schedule on a private virtual clock.

    This is :meth:`ShardedRuntime._wake_shard` / ``_tick`` /
    ``_schedule_next_tick`` for exactly one shard, against a simulator no
    other shard shares.  Arrivals must be fed in nondecreasing ``when_ns``
    order (the backend sorts submissions before partitioning).

    The equal-timestamp tie rule deserves a note: on the shared simulator,
    submissions are scheduled *before* the run starts, so at equal times
    they carry lower sequence numbers than any runtime-armed tick and fire
    first.  The driver preserves that by replaying events strictly *before*
    each arrival instant (``run(until_ns=when - 1)``), applying the arrival
    by direct call, and only then letting a tick armed at that same instant
    fire — arrivals always precede same-time ticks, as on the shared heap.
    """

    __slots__ = (
        "worker",
        "spec",
        "simulator",
        "transmits",
        "drops",
        "_handle",
        "_e2e",
    )

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.worker = ShardWorker(spec.shard_id, **spec.worker_kwargs)
        self.simulator = Simulator()
        self.transmits: List[Tuple[int, Packet]] = []
        self.drops = 0
        self._handle: Optional[EventHandle] = None
        # The driver plays ShardedRuntime's role for the e2e seam too: one
        # submit→transmit histogram per shard, merged on join.
        self._e2e: Optional[LogHistogram] = (
            LogHistogram() if spec.worker_kwargs.get("latency_histograms") else None
        )

    # -- the arrival side --------------------------------------------------

    def on_arrival(self, when_ns: int, packets: List[Packet]) -> None:
        """Apply one burst at ``when_ns``, replaying the clock up to it."""
        if when_ns > 0:
            self.simulator.run(until_ns=when_ns - 1)
        mailbox = self.worker.mailbox
        before = len(mailbox)
        if self._e2e is not None:
            # Same stamps ShardedRuntime.submit_batch writes on the shared
            # clock: arrival instant for both the e2e and the mailbox seam.
            for packet in packets:
                packet.metadata["e2e_ns"] = when_ns
                packet.metadata["mbox_ns"] = when_ns
        taken = mailbox.push_batch(packets)
        self.drops += len(packets) - taken
        if taken or before:
            self._wake(when_ns)

    def _wake(self, now_ns: int) -> None:
        # Mirrors ShardedRuntime._wake_shard: an armed tick within one
        # quantum is soon enough; a far-off deadline sleep is pulled forward.
        handle = self._handle
        if handle is not None and handle.active:
            if handle.time_ns <= now_ns + self.spec.quantum_ns:
                return
            handle.cancel()
        self._handle = self.simulator.schedule_at(now_ns, self._tick)

    # -- the tick side -----------------------------------------------------

    def _tick(self) -> None:
        self._handle = None
        now = self.simulator.now_ns
        worker = self.worker
        spec = self.spec
        ingest_limit = spec.ingest_per_quantum
        if spec.shard_backlog_limit is not None:
            room = max(0, spec.shard_backlog_limit - worker.backlog)
            ingest_limit = room if ingest_limit is None else min(ingest_limit, room)
        released = worker.tick(
            now, ingest_limit=ingest_limit, drain_limit=spec.batch_per_quantum
        )
        if released:
            record = self.transmits.append if spec.record_transmits else None
            e2e = self._e2e
            for packet in released:
                packet.departure_ns = now
                if e2e is not None:
                    submitted_ns = packet.metadata.pop("e2e_ns", None)
                    if submitted_ns is not None:
                        e2e.record(now - submitted_ns)
                if record is not None:
                    record((now, packet))
        next_ns = worker.next_wake_ns(now, spec.quantum_ns)
        if next_ns is not None:
            self._handle = self.simulator.schedule_at(next_ns, self._tick)

    # -- completion --------------------------------------------------------

    def finish(self) -> ShardResult:
        """Drain the shard to quiescence and snapshot its accounting."""
        self.simulator.run()
        worker = self.worker
        return ShardResult(
            shard_id=worker.shard_id,
            stats=worker.stats.snapshot(),
            queue_stats=worker.queue_stats_snapshot(),
            mailbox=worker.mailbox.stats.snapshot(),
            cycles=worker.cost.total_cycles,
            cost_breakdown=worker.cost.breakdown(),
            transmits=self.transmits,
            drops=self.drops,
            end_ns=self.simulator.now_ns,
            events_processed=self.simulator.processed_events,
            pacing_live_flows=len(worker.pacing),
            pacing_memory_bytes=worker.pacing.memory_bytes(),
            mailbox_wait=(
                worker.mailbox_wait.snapshot()
                if worker.mailbox_wait is not None
                else None
            ),
            queue_wait=(
                worker.queue_wait.snapshot() if worker.queue_wait is not None else None
            ),
            e2e_latency=self._e2e.snapshot() if self._e2e is not None else None,
        )


class ExecutionBackend(abc.ABC):
    """The seam between :class:`ShardedRuntime` and whatever runs its loops.

    A backend receives timed submissions (:meth:`submit_at`) and, on
    :meth:`run`, executes the whole workload.  ``parallel`` distinguishes
    the two families: the simulated backend shares one clock with the
    runtime's own event wiring, parallel backends buffer the schedule and
    fan it out to real cores at run time.
    """

    #: True for backends that execute shards on real OS cores/threads.
    parallel: bool = False

    def bind(self, runtime) -> None:
        """Attach the owning runtime (called once from its constructor)."""
        self._runtime = runtime

    @abc.abstractmethod
    def submit_at(self, when_ns: int, packets: Sequence[Packet]) -> None:
        """Arrange for ``packets`` to arrive at absolute time ``when_ns``."""

    @abc.abstractmethod
    def run(
        self, until_ns: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Execute the workload; returns events processed across all clocks."""


class SimulatedBackend(ExecutionBackend):
    """The historical single-clock execution: all shards on one simulator.

    Thin by design — the runtime keeps talking to ``self.simulator``
    directly for its event wiring, so this backend's existence changes
    nothing about the simulated schedule (the golden-equivalence guarantee:
    committed ``BENCH_hotpath.json`` / ``BENCH_sharding.json`` modelled
    numbers are reproduced exactly).
    """

    parallel = False

    def __init__(self, simulator: Optional[Simulator] = None) -> None:
        self.simulator = simulator or Simulator()

    def submit_at(self, when_ns: int, packets: Sequence[Packet]) -> None:
        """Schedule the burst as a simulator event (pre-run ties beat ticks)."""
        batch = list(packets)
        self.simulator.schedule_at(
            when_ns, lambda: self._runtime.submit_batch(batch)
        )

    def run(
        self, until_ns: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        return self.simulator.run(until_ns=until_ns, max_events=max_events)


class ParallelBackend(ExecutionBackend):
    """Shared machinery of the real-core backends: buffer, partition, fan out.

    Submissions are buffered until :meth:`run`, then stable-sorted by time
    (preserving submission order at equal instants, the shared simulator's
    tie rule) and partitioned per shard with the runtime's static hash.
    Concrete backends implement :meth:`_execute` over the per-shard
    schedules and return one :class:`ShardResult` per shard.
    """

    parallel = True

    def __init__(self) -> None:
        self._bursts: List[Burst] = []
        #: Per-shard end-of-run snapshots, populated by :meth:`run`.
        self.results: Optional[List[ShardResult]] = None

    @property
    def pending_submitted(self) -> int:
        """Packets buffered for a run that has not started yet."""
        return sum(len(packets) for _when, packets in self._bursts)

    def submit_at(self, when_ns: int, packets: Sequence[Packet]) -> None:
        if when_ns < 0:
            raise ValueError("when_ns must be non-negative")
        if self.results is not None:
            raise RuntimeError(
                "parallel backends execute one buffered schedule per run(); "
                "create a fresh runtime for another workload"
            )
        batch = list(packets)
        if batch:
            self._bursts.append((when_ns, batch))

    def run(
        self, until_ns: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        if until_ns is not None or max_events is not None:
            raise ValueError(
                "parallel backends run the buffered schedule to completion; "
                "until_ns/max_events apply only to the simulated backend"
            )
        if self.results is not None:
            return 0  # idempotent: the schedule already ran
        runtime = self._runtime
        bursts = sorted(self._bursts, key=lambda burst: burst[0])  # stable
        self._bursts = []
        schedules: List[List[Burst]] = [[] for _ in range(runtime.num_shards)]
        shard_for = runtime.sharder.shard_for
        for when_ns, packets in bursts:
            groups: Dict[int, List[Packet]] = {}
            for packet in packets:
                groups.setdefault(shard_for(packet.flow_id), []).append(packet)
            for shard, group in groups.items():
                schedules[shard].append((when_ns, group))
        specs = [runtime._worker_spec(shard) for shard in range(runtime.num_shards)]
        self.results = self._execute(specs, schedules)
        return sum(result.events_processed for result in self.results)

    @abc.abstractmethod
    def _execute(
        self, specs: List[WorkerSpec], schedules: List[List[Burst]]
    ) -> List[ShardResult]:
        """Run every shard's schedule to completion; one result per shard."""


#: Exit code of a child that popped a corrupt shared-memory frame.
EXIT_FRAME_CORRUPT = 70
#: Exit code of a child killed by an armed ``child_crash`` fault.
EXIT_FAULT_CRASH = 71


def _shard_worker_main(
    spec: WorkerSpec,
    ring_name: str,
    conn,
    ack_every: int = 1,
    fault: Optional[Tuple[str, int]] = None,
) -> None:
    """Child-process entry point: drain the shm ring into a clock driver.

    Records are ``(when_ns, [packets])`` bursts in nondecreasing time order;
    the ``None`` sentinel is end-of-schedule.  After every ``ack_every``
    consumed bursts the child sends ``("ack", bursts_done)`` over ``conn`` —
    the progress watermark the parent's supervision uses for hang detection
    and restart telemetry.  The result (or a formatted traceback) returns
    over the same pipe; the ring mapping is always detached.

    Failure semantics: a corrupt shared-memory frame means the transport
    itself is compromised, so the child dies abruptly with
    :data:`EXIT_FRAME_CORRUPT` rather than report over a channel it can no
    longer trust — the parent restarts it on a fresh ring.  An armed
    ``child_crash``/``child_hang`` fault (deterministic injection, keyed to
    the burst ordinal) likewise bypasses the clean ``_ChildError`` path:
    those faults exist to exercise the parent's death/hang supervision.
    """
    ring = ShmRing(name=ring_name)
    fault_kind, fault_at = fault if fault is not None else (None, 0)
    try:
        try:
            driver = ShardClockDriver(spec)
            bursts_done = 0
            empty_polls = 0
            while True:
                try:
                    record = ring.pop()
                except ShmFrameCorrupt:
                    os._exit(EXIT_FRAME_CORRUPT)
                if record is RING_EMPTY:
                    # The producer is still feeding: spin briefly (the ring
                    # is usually refilled within microseconds), then back off
                    # so a slow feeder does not see a core burned on polling.
                    empty_polls += 1
                    time.sleep(0 if empty_polls < 200 else 0.0005)
                    continue
                empty_polls = 0
                if record is None:
                    break
                bursts_done += 1
                if fault_at == bursts_done:
                    if fault_kind == "child_crash":
                        os._exit(EXIT_FAULT_CRASH)
                    if fault_kind == "child_hang":
                        while True:  # wedged forever; parent escalates
                            time.sleep(3600)
                when_ns, packets = record
                driver.on_arrival(when_ns, packets)
                if bursts_done % ack_every == 0:
                    conn.send(("ack", bursts_done))
            conn.send(driver.finish())
        except BaseException:
            conn.send(_ChildError(spec.shard_id, traceback.format_exc()))
        finally:
            conn.close()
    finally:
        ring.close()


@dataclass
class _ChildState:
    """Supervision record for one shard's child process (one incarnation)."""

    spec: WorkerSpec
    schedule: List[Burst]
    proc: Any = None
    ring: Optional[ShmRing] = None
    conn: Any = None
    #: Remaining records to feed this incarnation (bursts + ``None`` EOF).
    queue: Deque[Optional[Burst]] = field(default_factory=deque)
    #: Bursts made visible in the ring this incarnation.
    bursts_pushed: int = 0
    #: The child's acknowledged-consumption watermark (this incarnation).
    acked: int = 0
    #: Incarnations started so far (1 = the original child).
    attempts: int = 1
    result: Optional[ShardResult] = None
    #: ``monotonic()`` of the last feed/ack progress, for hang detection.
    last_progress: float = 0.0
    #: One-shot armed process fault ``(kind, at_burst)`` — first child only.
    fault: Optional[Tuple[str, int]] = None
    #: Burst ordinal after which the parent corrupts the ring frame (one-shot).
    corrupt_at: Optional[int] = None


class ProcessBackend(ParallelBackend):
    """One OS process per shard, fed over shared-memory SPSC rings.

    The parent plays the ingress core: it streams each shard's timed bursts
    into that shard's :class:`~repro.runtime.shm.ShmRing` (single producer —
    the parent; single consumer — the child), interleaving across rings so
    no child starves while another's ring is full.  Children replay their
    schedules on private virtual clocks (:class:`ShardClockDriver`) and
    return picklable :class:`ShardResult` snapshots over a pipe.

    **Supervision and restart.**  Each child acknowledges consumed bursts
    over its pipe; the parent drains those acks on every pump pass (keeping
    the pipe from filling and deadlocking the child) and maintains a
    per-shard progress watermark.  A child that dies without delivering a
    result — or stops advancing its watermark for ``hang_timeout_s`` — is
    killed and restarted on a **fresh ring and pipe** with bounded
    exponential backoff, up to ``max_restarts`` times.  Because a shard
    child is a pure function of its arrival schedule (the invariant the
    whole parallel seam rests on), the restart simply re-feeds the buffered
    schedule from burst zero and the replay is exact; the dead incarnation's
    acked watermark is recorded in :attr:`restart_log`.  A child that
    *reports* a failure (a pickled traceback over the pipe) is a
    deterministic application error and is raised immediately — restarting
    it would fail identically.

    Teardown is unconditional: whatever interrupts the pump —
    ``KeyboardInterrupt`` included — live children are terminated (with
    ``terminate()`` → ``kill()`` escalation) and every shared-memory segment
    ever created is unlinked before the exception propagates.

    Args:
        ring_capacity: byte capacity of each per-shard ring (must hold at
            least one full pickled burst; 1 MiB comfortably fits the
            benchmark's 128-packet bursts).
        result_timeout_s: how long to wait for one child's result after its
            last observed progress, before declaring the run wedged.
        max_restarts: restarts allowed per shard before giving up (0 turns
            the supervisor into detect-and-raise).
        restart_backoff_s: sleep before the first restart of a shard;
            doubles on each further attempt of the same shard.
        hang_timeout_s: declare a live child hung (and restart it) when its
            watermark stalls this long; ``None`` disables hang restarts and
            leaves only the ``result_timeout_s`` backstop.
        ack_every: child acks every N consumed bursts (1 = tightest
            watermark; larger values trade supervision lag for pipe traffic).
        faults: armed process faults — a :class:`~repro.runtime.faults.FaultPlan`
            (its ``child_crash``/``child_hang``/``shm_corrupt`` events) or a
            mapping ``{shard: (kind, at_burst)}``.  Faults are one-shot: a
            restarted child runs clean.
    """

    def __init__(
        self,
        ring_capacity: int = 1 << 20,
        result_timeout_s: float = 300.0,
        *,
        max_restarts: int = 2,
        restart_backoff_s: float = 0.05,
        hang_timeout_s: Optional[float] = None,
        ack_every: int = 1,
        faults: "Optional[FaultPlan | Mapping[int, Tuple[str, int]]]" = None,
    ) -> None:
        super().__init__()
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if restart_backoff_s < 0:
            raise ValueError("restart_backoff_s must be non-negative")
        if hang_timeout_s is not None and hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive (or None)")
        if ack_every <= 0:
            raise ValueError("ack_every must be positive")
        self.ring_capacity = ring_capacity
        self.result_timeout_s = result_timeout_s
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        self.hang_timeout_s = hang_timeout_s
        self.ack_every = ack_every
        self._faults = faults
        #: One dict per restart: shard, attempt, reason, exit code, the dead
        #: incarnation's acked watermark, and the backoff slept before it.
        self.restart_log: List[dict] = []

    def _fault_for(self, shard: int) -> Optional[Tuple[str, int]]:
        if self._faults is None:
            return None
        if isinstance(self._faults, FaultPlan):
            return self._faults.process_fault(shard)
        return self._faults.get(shard)

    def _feed_hook(self) -> None:
        """Called once per pump-loop pass (test seam for interrupt injection)."""

    # -- child lifecycle ---------------------------------------------------

    def _spawn(self, ctx, state: _ChildState, all_rings: List[ShmRing]) -> None:
        """Start a fresh incarnation: new ring, new pipe, full re-feed."""
        state.ring = ShmRing(capacity=self.ring_capacity)
        all_rings.append(state.ring)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        state.conn = parent_conn
        state.queue = deque(state.schedule)
        state.queue.append(None)
        state.bursts_pushed = 0
        state.acked = 0
        fault = state.fault
        if fault is not None and fault[0] == "shm_corrupt":
            state.corrupt_at = fault[1]
            fault = None
        state.fault = None  # one-shot: a restarted child runs clean
        state.proc = ctx.Process(
            target=_shard_worker_main,
            args=(state.spec, state.ring.name, child_conn, self.ack_every, fault),
            daemon=True,
            name=f"repro-shard-{state.spec.shard_id}",
        )
        state.proc.start()
        child_conn.close()  # parent's copy; the child holds the write end
        state.last_progress = time.monotonic()

    def _reap(self, proc, shard: int) -> None:
        """Join a child, escalating terminate() → kill() if it lingers."""
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10.0)
                if proc.is_alive():
                    raise RuntimeError(
                        f"shard {shard} worker (pid {proc.pid}) survived both "
                        f"terminate() and kill(); exit code {proc.exitcode}"
                    )
        else:
            proc.join(timeout=10.0)

    def _restart(self, ctx, state: _ChildState, all_rings: List[ShmRing], reason: str) -> None:
        """Replace a dead/hung child, or raise when the retry budget is spent."""
        shard = state.spec.shard_id
        self._reap(state.proc, shard)
        exit_code = state.proc.exitcode
        state.conn.close()
        state.ring.close()
        state.ring.unlink()
        if state.attempts > self.max_restarts:
            if reason == "died" and state.queue:
                raise RuntimeError(
                    f"shard {shard} worker died before consuming its schedule "
                    f"(exit code {exit_code}, attempt {state.attempts})"
                )
            if reason == "died":
                raise RuntimeError(
                    f"shard {shard} worker exited without a result "
                    f"(exit code {exit_code}, attempt {state.attempts})"
                )
            raise RuntimeError(
                f"shard {shard} worker hung (no progress past burst "
                f"{state.acked} for {self.hang_timeout_s}s, exit code "
                f"{exit_code}, attempt {state.attempts})"
            )
        backoff = self.restart_backoff_s * (2 ** (state.attempts - 1))
        if backoff:
            time.sleep(backoff)
        self.restart_log.append(
            {
                "shard": shard,
                "attempt": state.attempts,
                "reason": reason,
                "exit_code": exit_code,
                "acked_bursts": state.acked,
                "backoff_s": backoff,
            }
        )
        state.attempts += 1
        self._spawn(ctx, state, all_rings)

    # -- the supervised pump ----------------------------------------------

    def _execute(
        self, specs: List[WorkerSpec], schedules: List[List[Burst]]
    ) -> List[ShardResult]:
        # fork start method: WorkerSpec (with its possibly-closure
        # queue_factory) is inherited by the child, not pickled; only the
        # packet stream crosses via the shm rings.
        ctx = multiprocessing.get_context("fork")
        states = [
            _ChildState(
                spec=specs[shard],
                schedule=schedules[shard],
                fault=self._fault_for(shard),
            )
            for shard in range(len(specs))
        ]
        all_rings: List[ShmRing] = []
        try:
            for state in states:
                self._spawn(ctx, state, all_rings)
            self._pump(ctx, states, all_rings)
            return [state.result for state in states]  # type: ignore[misc]
        finally:
            for state in states:
                if state.conn is not None:
                    state.conn.close()
            for state in states:
                self._reap(state.proc, state.spec.shard_id)
            for ring in all_rings:
                ring.close()
                ring.unlink()

    def _drain_pipe(self, state: _ChildState) -> bool:
        """Consume acks/result/error waiting on a child's pipe; True on any."""
        shard = state.spec.shard_id
        progressed = False
        while state.result is None and state.conn.poll(0):
            try:
                message = state.conn.recv()
            except EOFError:
                break  # child closed its end; death handling decides next
            progressed = True
            state.last_progress = time.monotonic()
            if isinstance(message, tuple) and message and message[0] == "ack":
                state.acked = message[1]
            elif isinstance(message, _ChildError):
                raise RuntimeError(f"shard {shard} worker failed:\n{message.message}")
            else:
                state.result = message
        return progressed

    def _pump(self, ctx, states: List[_ChildState], all_rings: List[ShmRing]) -> None:
        """Feed, supervise, and collect every shard until all results land.

        One loop does all three jobs so no pipe goes undrained while a ring
        is being fed (a full pipe blocks the child's ack ``send``, a blocked
        child stops popping its ring, and the feed would deadlock).
        """
        while any(state.result is None for state in states):
            progressed = False
            for state in states:
                if state.result is not None:
                    continue
                shard = state.spec.shard_id
                if self._drain_pipe(state):
                    progressed = True
                if state.result is not None:
                    continue
                ring = state.ring
                while state.queue:
                    record = state.queue[0]
                    corrupt = (
                        record is not None
                        and state.corrupt_at == state.bursts_pushed + 1
                    )
                    pushed = (
                        ring.push_corrupted(record) if corrupt else ring.push(record)
                    )
                    if not pushed:
                        break
                    state.queue.popleft()
                    if record is not None:
                        state.bursts_pushed += 1
                        if corrupt:
                            state.corrupt_at = None  # one-shot
                    state.last_progress = time.monotonic()
                    progressed = True
                if not state.proc.is_alive():
                    # Drain any message that raced the death: a clean result
                    # or a reported failure beats the restart path.
                    if self._drain_pipe(state):
                        progressed = True
                    if state.result is not None:
                        continue
                    self._restart(ctx, state, all_rings, reason="died")
                    progressed = True
                    continue
                stalled_s = time.monotonic() - state.last_progress
                if (
                    self.hang_timeout_s is not None
                    and stalled_s > self.hang_timeout_s
                ):
                    self._restart(ctx, state, all_rings, reason="hung")
                    progressed = True
                elif stalled_s > self.result_timeout_s:
                    raise RuntimeError(
                        f"shard {shard} produced no result within "
                        f"{self.result_timeout_s:.0f}s (exit code "
                        f"{state.proc.exitcode})"
                    )
            self._feed_hook()
            if not progressed:
                time.sleep(0.0002)


class ThreadBackend(ParallelBackend):
    """One thread per shard; the in-process variant of the parallel seam.

    No rings and no pickling — each thread owns its schedule outright.
    Under the GIL the threads time-slice (correctness demonstrated, no
    speedup); on a free-threaded build (:func:`free_threaded`) the same
    code parallelises.  ``gil_enabled`` records which world a run saw.
    """

    def __init__(self) -> None:
        super().__init__()
        self.gil_enabled = not free_threaded()

    def _execute(
        self, specs: List[WorkerSpec], schedules: List[List[Burst]]
    ) -> List[ShardResult]:
        results: List[Optional[ShardResult]] = [None] * len(specs)
        failures: List[BaseException] = []

        def run_shard(shard: int) -> None:
            try:
                driver = ShardClockDriver(specs[shard])
                for when_ns, packets in schedules[shard]:
                    driver.on_arrival(when_ns, packets)
                results[shard] = driver.finish()
            except BaseException as exc:  # re-raised on join
                failures.append(exc)

        threads = [
            threading.Thread(
                target=run_shard, args=(shard,), name=f"repro-shard-{shard}"
            )
            for shard in range(len(specs))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return results  # type: ignore[return-value]


def resolve_backend(
    backend: "str | ExecutionBackend", simulator: Optional[Simulator]
) -> ExecutionBackend:
    """Normalise a runtime's ``backend=`` argument into a backend instance.

    Accepts ``"simulated"`` / ``"process"`` / ``"thread"`` or a ready
    instance.  ``simulator`` only composes with the simulated backend — a
    shared clock has no meaning for shards running on their own cores.
    """
    if isinstance(backend, str):
        if backend == "simulated":
            return SimulatedBackend(simulator)
        if backend == "process":
            resolved: ExecutionBackend = ProcessBackend()
        elif backend == "thread":
            resolved = ThreadBackend()
        else:
            raise ValueError(
                f"unknown backend {backend!r}; "
                "choose from 'simulated', 'process', 'thread'"
            )
    elif isinstance(backend, ExecutionBackend):
        resolved = backend
    else:
        raise TypeError(f"backend must be a name or ExecutionBackend, got {backend!r}")
    if simulator is not None and not isinstance(resolved, SimulatedBackend):
        raise ValueError("simulator= applies only to the simulated backend")
    return resolved


__all__ = [
    "Burst",
    "ExecutionBackend",
    "ParallelBackend",
    "ProcessBackend",
    "ShardClockDriver",
    "ShardResult",
    "SimulatedBackend",
    "ThreadBackend",
    "WorkerSpec",
    "free_threaded",
    "resolve_backend",
]
