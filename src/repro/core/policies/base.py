"""Common interface for the ready-made scheduling policies.

Every policy exposes the same minimal surface so substrates (kernel qdisc,
BESS module, network simulator) and benchmarks can drive any of them
interchangeably:

* ``enqueue(packet, now_ns)`` — admit a packet;
* ``dequeue(now_ns)`` — return the next packet to transmit, or ``None`` when
  nothing is eligible (either empty or gated by shaping);
* ``next_event_ns()`` — earliest time at which a currently gated packet
  becomes eligible (``None`` when nothing is pending), used to program
  timers;
* ``pending`` / ``empty`` — backlog introspection.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

from ..model.packet import Packet


class PacketScheduler(abc.ABC):
    """Abstract base class for packet scheduling policies."""

    name: str = "scheduler"

    @abc.abstractmethod
    def enqueue(self, packet: Packet, now_ns: int = 0) -> None:
        """Admit ``packet`` at time ``now_ns``."""

    @abc.abstractmethod
    def dequeue(self, now_ns: int = 0) -> Optional[Packet]:
        """Return the next eligible packet, or ``None``."""

    @property
    @abc.abstractmethod
    def pending(self) -> int:
        """Number of packets currently held."""

    @property
    def empty(self) -> bool:
        """True when no packets are held."""
        return self.pending == 0

    def next_event_ns(self) -> Optional[int]:
        """Earliest future time at which a gated packet becomes eligible.

        Work-conserving policies return ``None``: whatever is queued is
        already eligible.
        """
        return None

    def enqueue_batch(self, packets: Iterable[Packet], now_ns: int = 0) -> int:
        """Admit a batch of packets; returns the number admitted.

        The default is N single enqueues; policies whose backing structures
        support amortised batch inserts override this so a NIC burst costs
        one index update per touched bucket/flow instead of one per packet.
        """
        count = 0
        for packet in packets:
            self.enqueue(packet, now_ns)
            count += 1
        return count

    def dequeue_due(self, now_ns: int = 0, limit: Optional[int] = None) -> List[Packet]:
        """Drain every currently eligible packet (up to ``limit``)."""
        drained: List[Packet] = []
        while limit is None or len(drained) < limit:
            packet = self.dequeue(now_ns)
            if packet is None:
                break
            drained.append(packet)
        return drained


__all__ = ["PacketScheduler"]
