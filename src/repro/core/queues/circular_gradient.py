"""Moving-range (circular) wrappers for fixed-range integer queues.

Section 3.1.2 notes that "for cases of a moving range, a circular approximate
queue can be implemented as with cFFS".  Rather than re-implementing the
primary/secondary rotation for every queue type, this module provides a
generic :class:`CircularQueueAdapter` that wraps *any* fixed-range
:class:`~repro.core.queues.base.IntegerPriorityQueue` factory, plus the
concrete :class:`CircularApproximateGradientQueue` and
:class:`CircularGradientQueue` built on top of it.

The rotation protocol is identical to the cFFS (Figure 4):

* the primary window covers ``[h_index, h_index + span)``,
* the secondary window covers the next ``span`` priorities,
* ranks beyond both land (unsorted) in the last bucket of the secondary
  window,
* when the primary window drains, the windows swap and ``h_index`` advances.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from .base import (
    BucketSpec,
    EmptyQueueError,
    IntegerPriorityQueue,
    validate_priority,
)
from .gradient import ApproximateGradientQueue, GradientQueue

QueueFactory = Callable[[BucketSpec], IntegerPriorityQueue]


class CircularQueueAdapter(IntegerPriorityQueue):
    """Turn a fixed-range queue implementation into a moving-range queue.

    Args:
        spec: bucket layout of *one* window; the adapter covers twice that
            range at any instant (primary + secondary).
        factory: callable building a fixed-range queue for a window.  It is
            called with a window-local :class:`BucketSpec` whose
            ``base_priority`` is zero; the adapter translates absolute
            priorities into window-local offsets before delegating.
        allow_stale: clamp priorities that precede the current window into
            the head of the primary window instead of raising.
    """

    __slots__ = ("allow_stale", "h_index", "_window_spec", "_primary", "_secondary", "_factory")

    def __init__(
        self,
        spec: BucketSpec,
        factory: QueueFactory,
        allow_stale: bool = True,
    ) -> None:
        super().__init__(spec)
        self.allow_stale = allow_stale
        self.h_index = spec.base_priority
        window_spec = BucketSpec(
            num_buckets=spec.num_buckets,
            granularity=spec.granularity,
            base_priority=0,
        )
        self._window_spec = window_spec
        self._primary = factory(window_spec)
        self._secondary = factory(window_spec)
        self._factory = factory

    # -- range bookkeeping ----------------------------------------------------

    @property
    def window_span(self) -> int:
        """Priority units covered by one window."""
        return self.spec.num_buckets * self.spec.granularity

    @property
    def primary_range(self) -> tuple[int, int]:
        """Absolute half-open range covered by the primary window."""
        return self.h_index, self.h_index + self.window_span

    @property
    def secondary_range(self) -> tuple[int, int]:
        """Absolute half-open range covered by the secondary window."""
        lo = self.h_index + self.window_span
        return lo, lo + self.window_span

    # -- operations --------------------------------------------------------------

    def enqueue(self, priority: int, item: Any) -> None:
        priority = validate_priority(priority)
        self.stats.enqueues += 1
        lo, hi = self.primary_range
        slo, shi = self.secondary_range
        if priority < lo:
            if not self.allow_stale:
                raise ValueError(
                    f"priority {priority} precedes queue head index {lo}"
                )
            self._primary.enqueue(0, (priority, item))
        elif priority < hi:
            self._primary.enqueue(priority - lo, (priority, item))
        elif priority < shi:
            self._secondary.enqueue(priority - slo, (priority, item))
        else:
            self.stats.overflow_enqueues += 1
            overflow_offset = (self.spec.num_buckets - 1) * self.spec.granularity
            self._secondary.enqueue(overflow_offset, (priority, item))
        self._size += 1

    def _rotate(self) -> None:
        self._primary, self._secondary = self._secondary, self._primary
        self.h_index += self.window_span
        self.stats.rotations += 1

    def _advance(self) -> IntegerPriorityQueue:
        while self._primary.empty and not self._secondary.empty:
            self._rotate()
        if self._primary.empty:
            raise EmptyQueueError("circular queue is empty")
        return self._primary

    def _settle(self) -> IntegerPriorityQueue:
        """Advance to the window holding the minimum, re-dispatching overflow.

        Entries that overflowed past both windows sit (unsorted) at the
        overflow offset of what later rotates into the primary window; their
        stored absolute priority may belong to a later window.  The generic
        adapter cannot re-bucket on rotation (the window queues expose no
        bucket access), so misplaced entries are re-dispatched lazily the
        moment they surface as the window minimum — before anything is
        returned with a far-future rank, keeping the ordering approximation
        bounded to one window exactly as the cFFS does.
        """
        while True:
            window = self._advance()
            _local, payload = window.peek_min()
            priority = payload[0]
            _lo, hi = self.primary_range
            if priority < hi:
                return window
            window.extract_min()
            slo, shi = self.secondary_range
            self.stats.linear_scans += 1
            if priority < shi:
                self._secondary.enqueue(priority - slo, payload)
            else:
                overflow_offset = (self.spec.num_buckets - 1) * self.spec.granularity
                self._secondary.enqueue(overflow_offset, payload)

    def extract_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("extract_min from empty circular queue")
        window = self._settle()
        _local, payload = window.extract_min()
        self.stats.dequeues += 1
        self._size -= 1
        return payload

    def peek_min(self) -> tuple[int, Any]:
        if self.empty:
            raise EmptyQueueError("peek_min from empty circular queue")
        window = self._settle()
        _local, payload = window.peek_min()
        return payload

    def extract_due(
        self, now: int, limit: Optional[int] = None
    ) -> list[tuple[int, Any]]:
        """Drain every element whose (absolute) priority is ``<= now``.

        The due check must use the *absolute* priority stored in the payload
        (overflow entries sit at a window-local offset unrelated to their
        rank), so this stays a per-element peek/extract loop; the amortised
        batch paths are :meth:`enqueue_batch` and :meth:`extract_min_batch`.
        """
        released: list[tuple[int, Any]] = []
        while not self.empty and (limit is None or len(released) < limit):
            priority, _item = self.peek_min()
            if priority > now:
                break
            released.append(self.extract_min())
        return released

    # -- batch operations --------------------------------------------------------

    def enqueue_batch(self, pairs: Iterable[tuple[int, Any]]) -> int:
        """Batched insert: one delegated ``enqueue_batch`` per window."""
        primary_entries: list[tuple[int, Any]] = []
        secondary_entries: list[tuple[int, Any]] = []
        count = 0
        lo, hi = self.primary_range
        slo, shi = self.secondary_range
        overflow_offset = (self.spec.num_buckets - 1) * self.spec.granularity
        for priority, item in pairs:
            priority = validate_priority(priority)
            if priority < lo:
                if not self.allow_stale:
                    raise ValueError(
                        f"priority {priority} precedes queue head index {lo}"
                    )
                primary_entries.append((0, (priority, item)))
            elif priority < hi:
                primary_entries.append((priority - lo, (priority, item)))
            elif priority < shi:
                secondary_entries.append((priority - slo, (priority, item)))
            else:
                self.stats.overflow_enqueues += 1
                secondary_entries.append((overflow_offset, (priority, item)))
            count += 1
        if primary_entries:
            self._primary.enqueue_batch(primary_entries)
        if secondary_entries:
            self._secondary.enqueue_batch(secondary_entries)
        self.stats.enqueues += count
        self._size += count
        return count

    def extract_min_batch(self, n: int) -> list[tuple[int, Any]]:
        """Batched extract-min delegating to the window queues' batch paths.

        Misplaced overflow entries surfacing in the drained batch are
        re-dispatched into the secondary window (see :meth:`_settle`) rather
        than returned with far-future ranks; the stable filter preserves the
        FIFO order the per-element path yields.
        """
        if n < 0:
            raise ValueError("batch size must be non-negative")
        batch: list[tuple[int, Any]] = []
        while len(batch) < n and self._size:
            window = self._settle()
            _lo, hi = self.primary_range
            slo, shi = self.secondary_range
            overflow_offset = (self.spec.num_buckets - 1) * self.spec.granularity
            for _local, payload in window.extract_min_batch(n - len(batch)):
                priority = payload[0]
                if priority < hi:
                    batch.append(payload)
                    self.stats.dequeues += 1
                    self._size -= 1
                    continue
                self.stats.linear_scans += 1
                if priority < shi:
                    self._secondary.enqueue(priority - slo, payload)
                else:
                    self._secondary.enqueue(overflow_offset, payload)
        return batch

    def merged_stats(self) -> dict[str, int]:
        """Adapter counters plus both windows' counters, for cost accounting."""
        merged = self.stats.snapshot()
        merged.merge(self._primary.stats)
        merged.merge(self._secondary.stats)
        return merged.as_dict()


class CircularGradientQueue(CircularQueueAdapter):
    """Exact gradient queue over a moving priority range."""

    __slots__ = ()

    def __init__(self, spec: BucketSpec, allow_stale: bool = True) -> None:
        super().__init__(spec, GradientQueue, allow_stale=allow_stale)


class CircularApproximateGradientQueue(CircularQueueAdapter):
    """Approximate gradient queue over a moving priority range.

    The per-window approximate queues share the same ``alpha`` and word
    configuration; see :class:`~repro.core.queues.gradient.ApproximateGradientQueue`.
    """

    __slots__ = ("alpha", "word_bits")

    def __init__(
        self,
        spec: BucketSpec,
        alpha: int = 16,
        word_bits: int = 64,
        allow_stale: bool = True,
    ) -> None:
        def factory(window_spec: BucketSpec) -> ApproximateGradientQueue:
            return ApproximateGradientQueue(
                window_spec, alpha=alpha, word_bits=word_bits
            )

        super().__init__(spec, factory, allow_stale=allow_stale)
        self.alpha = alpha
        self.word_bits = word_bits


__all__ = [
    "CircularApproximateGradientQueue",
    "CircularGradientQueue",
    "CircularQueueAdapter",
]
