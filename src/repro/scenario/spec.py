"""Declarative scenario specs: the experiment matrix as data.

A :class:`ScenarioSpec` is a frozen dataclass tree describing one complete
experiment — topology, policy tree, traffic, ingress/admission, runtime
knobs and declarative assertion blocks — that the compiler
(:mod:`repro.scenario.compiler`) binds onto the existing building blocks
(netsim fabrics, BESS pipelines, the sharded runtime, traffic sources).

Everything here is *eagerly validated*: :func:`validate` walks a spec and
rejects unknown names, dangling cross-references, oversubscribed admission
configurations and parallel-backend-incompatible knobs **before** anything
is built, each with a typed error naming the offending field.  A spec that
passes :func:`validate` compiles and runs; there is no "half-valid" state
discovered mid-experiment.

Determinism contract: one ``seed`` at the top of the spec pins *every*
random stream of the compiled experiment — traffic samplers, workload
sub-streams, the shard placement hash and the ingress RSS lane hash — via
:func:`derive_seed`, so two runs of the same spec are identical and two
specs differing only in ``seed`` draw decorrelated streams everywhere.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Experiment kinds a topology can select.
KINDS = ("runtime", "fabric", "bess")

#: Queue names a runtime-kind scenario may bind a shard worker to, and a
#: bess-kind scenario may sweep.  Resolved by the compiler against
#: :mod:`repro.core.queues` (the factories live there, not here, so the spec
#: layer stays import-light).
QUEUE_NAMES = ("circular_ffs", "hierarchical_ffs", "gradient", "approx_gradient")

#: Admission policy names understood by the ingress layer ("none" = pure
#: backpressure, loss-free by construction).
ADMISSION_NAMES = ("none", "tail_drop", "fair_drop", "codel")

#: Execution backends of the sharded runtime.
BACKEND_NAMES = ("simulated", "process", "thread")

#: Flow placement policies of the sharder.
SHARDING_NAMES = ("hash", "round_robin")

#: Fabric schemes of the Figure 19 experiment.
SCHEME_NAMES = ("dctcp", "pfabric", "pfabric_approx")

#: Empirical flow-size workloads.
WORKLOAD_NAMES = ("websearch", "datamining")

#: Flow-sampling patterns of the open-loop runtime traffic source.
PATTERN_NAMES = ("round_robin", "zipf")

#: Fault kinds a scenario may arm (the simulated runtime's seams; mirrors
#: :data:`repro.runtime.faults.RUNTIME_FAULT_KINDS` — kept local so the spec
#: layer stays import-light).
FAULT_KIND_NAMES = ("shard_crash", "shard_stall", "handoff_drop", "ingress_wedge")


# -- typed rejection ---------------------------------------------------------


class ScenarioSpecError(ValueError):
    """Base of every spec rejection; ``field`` names the offending field."""

    def __init__(self, field: str, message: str) -> None:
        self.field = field
        super().__init__(f"{field}: {message}")


class UnknownNameError(ScenarioSpecError):
    """An enum-like field holds a name the compiler cannot resolve, or a
    cross-reference points at an entity the spec never defines."""


class OversubscribedError(ScenarioSpecError):
    """The admission/load configuration oversubscribes what it feeds."""


class BackendIncompatibleError(ScenarioSpecError):
    """A knob that requires cross-shard coordination under a parallel backend."""


class MalformedSpecError(ScenarioSpecError):
    """Unparseable TOML, a wrong-typed field, or an out-of-range value."""


def derive_seed(seed: int, label: str, bits: int = 64) -> int:
    """A decorrelated sub-seed for one named random stream of a scenario.

    Stable across runs, platforms and Python versions (BLAKE2 of
    ``"seed:label"``), so a spec's single ``seed`` deterministically pins
    every stream — traffic sampler, workload sub-streams, shard hash,
    ingress lane hash — without any two streams sharing state.
    """
    digest = hashlib.blake2b(f"{seed}:{label}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") & ((1 << bits) - 1)


# -- the spec tree -----------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """Where the experiment runs.

    ``kind`` selects the substrate: ``"runtime"`` (the sharded multi-core
    runtime; the fuzzable kind), ``"fabric"`` (the leaf-spine packet-level
    simulator of Figure 19), or ``"bess"`` (the single-core userspace
    pipeline of Figures 12/13/15).  The remaining fields describe the
    hardware of whichever substrate is selected; irrelevant ones are ignored.
    """

    kind: str = "runtime"
    # fabric dimensions / speeds
    num_leaves: int = 3
    num_spines: int = 3
    hosts_per_leaf: int = 3
    edge_rate_bps: float = 10e9
    core_rate_bps: float = 40e9
    link_propagation_ns: int = 200
    # single-core "hardware" (bess kind; also converts runtime-kind modelled
    # cycles into ops/sec for throughput-floor assertions)
    line_rate_bps: float = 10e9
    cycles_per_second: float = 3.0e9


@dataclass(frozen=True)
class PolicyTreeSpec:
    """The scheduling policy the packets traverse.

    Runtime kind: the per-shard timestamp queue (``queue``/``num_buckets``/
    ``horizon_ns``) plus the pacing layer (``default_rate_bps`` and per-flow
    ``flow_rates`` overrides, hClock-leaf style).  Fabric kind: the switch
    ``schemes`` under comparison.  Bess kind: the ``sweep_queues`` of the
    batching sweep.
    """

    queue: str = "circular_ffs"
    num_buckets: int = 20_000
    horizon_ns: int = 2_000_000_000
    default_rate_bps: Optional[float] = None
    #: Per-flow pacing overrides as ``(flow_id, rate_bps)`` pairs; flow ids
    #: must exist in the traffic spec's flow universe (validated).
    flow_rates: Tuple[Tuple[int, float], ...] = ()
    #: Fabric kind: schemes to run (each becomes one FCT curve).
    schemes: Tuple[str, ...] = SCHEME_NAMES
    #: Bess kind: integer queues swept by the batching harness.
    sweep_queues: Tuple[str, ...] = QUEUE_NAMES


@dataclass(frozen=True)
class TrafficSpec:
    """What the experiment is fed.

    Runtime kind: an open-loop NIC-burst source (``offered_pps`` /
    ``burst_size`` / ``total_packets``) over ``num_flows`` flows sampled
    ``round_robin`` or ``zipf``.  Fabric kind: ``num_flows`` Poisson flow
    arrivals from the ``workload`` size distribution at each load in
    ``loads``.  Bess kind: the packet-size points of Figure 13 plus the
    batching sweep's batch sizes and packet count.
    """

    pattern: str = "round_robin"
    num_flows: int = 16
    total_packets: int = 2_048
    offered_pps: float = 1e6
    burst_size: int = 32
    packet_bytes: int = 1500
    zipf_skew: float = 1.1
    # fabric kind
    workload: str = "websearch"
    loads: Tuple[float, ...] = (0.2, 0.5, 0.8)
    # bess kind
    packet_sizes: Tuple[int, ...] = (60, 1500)
    batch_sizes: Tuple[int, ...] = (1, 8, 32, 64)
    sweep_packets: int = 4_096


@dataclass(frozen=True)
class IngressSpec:
    """The RX stage in front of the shards (runtime kind only).

    ``cores=0`` keeps the historical synchronous ingress.  With cores, the
    admission policy decides what sustained overload does: ``"none"`` is pure
    watermark backpressure (loss-free), the drop policies bound the ring.
    """

    cores: int = 0
    admission: str = "none"
    rx_ring_capacity: int = 512
    rx_burst: int = 64
    backpressure: bool = True
    mailbox_capacity: Optional[int] = None
    shard_backlog_limit: Optional[int] = None


@dataclass(frozen=True)
class RuntimeSpec:
    """The sharded runtime's own knobs (runtime kind only)."""

    shards: int = 1
    quantum_ns: int = 50_000
    batch_per_quantum: int = 64
    sharding: str = "hash"
    stealing: bool = False
    steal_batch: int = 64
    steal_min_backlog: int = 8
    rebalance_interval_ns: Optional[int] = None
    gc_interval_packets: Optional[int] = 4_096
    gc_sweep_limit: Optional[int] = None
    backend: str = "simulated"


@dataclass(frozen=True)
class FaultsSpec:
    """Deterministic fault injection (runtime kind, simulated backend only).

    ``kinds`` empty (the default) leaves the scenario fault-free — the
    runtime's injection hooks stay disarmed and cost nothing.  With kinds,
    the compiler draws ``events`` random faults from
    ``derive_seed(seed, "faults")`` via
    :meth:`~repro.runtime.faults.FaultPlan.from_seed`, so the scenario seed
    pins the fault schedule exactly as it pins the workload.  The optional
    watchdog knobs tune the recovery side: ``lease_deadline_ns`` bounds how
    long a stolen :class:`~repro.runtime.stealing.FlowLease` may stay out
    before the supervisor escalates, ``supervise_interval_ns`` the sweep
    period (default: twice the runtime quantum).
    """

    kinds: Tuple[str, ...] = ()
    events: int = 1
    max_tick: int = 32
    max_handoff_drops: int = 4
    lease_deadline_ns: Optional[int] = None
    supervise_interval_ns: Optional[int] = None


@dataclass(frozen=True)
class ObservabilitySpec:
    """The observability plane (runtime kind only).

    All three instruments default off — the compiled runtime is then
    byte-identical to one built from a spec with no ``[observability]``
    block at all (the fault plane's gating contract).  ``latency_histograms``
    arms the per-seam :class:`~repro.runtime.observability.LogHistogram`
    recording (allowed on every backend: per-shard histograms merge across
    process children like counter snapshots); ``tracer`` arms a
    :class:`~repro.runtime.observability.FlightRecorder` of ``trace_capacity``
    events and ``timeline`` a
    :class:`~repro.runtime.observability.MetricsTimeline` sampling every
    ``timeline_interval_ns`` (default: the runtime quantum) — both need the
    shared simulated clock.
    """

    latency_histograms: bool = False
    tracer: bool = False
    trace_capacity: int = 65_536
    timeline: bool = False
    timeline_interval_ns: Optional[int] = None


@dataclass(frozen=True)
class AssertionSpec:
    """Declarative assertion blocks evaluated against the finished run.

    The three booleans are the runtime-wide invariant net (packet
    conservation, per-flow FIFO, no stranded flow-table slots or leases
    after drain); the optional bounds are per-scenario quality gates.
    Fields that do not apply to a scenario's kind are simply not evaluated.
    """

    conservation: bool = True
    per_flow_fifo: bool = True
    no_stranded_state: bool = True
    #: Floor on packets transmitted (runtime kind).
    min_transmitted: int = 0
    #: Ceiling on (drops / offered) at the RX stage (runtime kind).
    max_drop_fraction: Optional[float] = None
    #: Floor on modelled aggregate throughput in Mops/s, converted from the
    #: bottleneck core's cycle account at ``topology.cycles_per_second``.
    min_mops: Optional[float] = None
    #: Ceiling on the fraction of ingress ticks cut short by backpressure.
    max_stall_fraction: Optional[float] = None
    #: Fabric kind: floor on the fraction of flows that complete.
    min_completion_rate: Optional[float] = None
    #: Fabric kind: pFabric must beat DCTCP on small-flow average FCT.
    fct_small_flow_advantage: bool = False
    #: Fabric kind: |approx - exact| small-flow FCT tolerance (absolute, or
    #: relative to exact — whichever is larger; the Figure 19 gate).
    fct_approx_tolerance: Optional[float] = None
    #: Bess kind: batched drains must be strictly cheaper than the
    #: per-packet path from this batch size on.
    batch_amortises_at: Optional[int] = None
    #: Ceiling on the end-to-end submit→transmit p99 (runtime kind; needs
    #: ``observability.latency_histograms`` — there is no histogram to ask
    #: otherwise, and the spec is rejected rather than silently passed).
    p99_latency_ns: Optional[int] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete declarative experiment."""

    name: str = "scenario"
    seed: int = 0
    topology: TopologySpec = field(default_factory=TopologySpec)
    policy: PolicyTreeSpec = field(default_factory=PolicyTreeSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    ingress: IngressSpec = field(default_factory=IngressSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    faults: FaultsSpec = field(default_factory=FaultsSpec)
    observability: ObservabilitySpec = field(default_factory=ObservabilitySpec)
    assertions: AssertionSpec = field(default_factory=AssertionSpec)


# -- eager validation --------------------------------------------------------


def _require_name(value: str, choices: tuple, field_name: str) -> None:
    if value not in choices:
        raise UnknownNameError(
            field_name, f"unknown name {value!r}; choose from {sorted(choices)}"
        )


def _require_positive(value, field_name: str, *, allow_zero: bool = False) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MalformedSpecError(field_name, f"expected a number, got {value!r}")
    if value != value or value in (float("inf"), float("-inf")):
        raise MalformedSpecError(field_name, "must be finite")
    if value < 0 or (value == 0 and not allow_zero):
        bound = "non-negative" if allow_zero else "positive"
        raise MalformedSpecError(field_name, f"must be {bound}, got {value!r}")


def _paced_capacity_bps(spec: ScenarioSpec) -> Optional[float]:
    """Aggregate drain capacity implied by the pacing config, if bounded."""
    if spec.policy.default_rate_bps is None:
        return None
    overrides = dict(spec.policy.flow_rates)
    total = 0.0
    for flow_id in range(spec.traffic.num_flows):
        total += overrides.get(flow_id, spec.policy.default_rate_bps)
    return total


def _validate_runtime(spec: ScenarioSpec) -> None:
    _require_name(spec.policy.queue, QUEUE_NAMES, "policy.queue")
    _require_name(spec.runtime.sharding, SHARDING_NAMES, "runtime.sharding")
    _require_name(spec.runtime.backend, BACKEND_NAMES, "runtime.backend")
    _require_name(spec.ingress.admission, ADMISSION_NAMES, "ingress.admission")
    _require_name(spec.traffic.pattern, PATTERN_NAMES, "traffic.pattern")

    _require_positive(spec.runtime.shards, "runtime.shards")
    _require_positive(spec.runtime.quantum_ns, "runtime.quantum_ns")
    _require_positive(spec.runtime.batch_per_quantum, "runtime.batch_per_quantum")
    _require_positive(spec.runtime.steal_batch, "runtime.steal_batch")
    _require_positive(spec.runtime.steal_min_backlog, "runtime.steal_min_backlog")
    _require_positive(spec.runtime.rebalance_interval_ns, "runtime.rebalance_interval_ns")
    _require_positive(spec.runtime.gc_interval_packets, "runtime.gc_interval_packets")
    _require_positive(spec.runtime.gc_sweep_limit, "runtime.gc_sweep_limit")
    _require_positive(spec.policy.num_buckets, "policy.num_buckets")
    _require_positive(spec.policy.horizon_ns, "policy.horizon_ns")
    _require_positive(spec.policy.default_rate_bps, "policy.default_rate_bps")
    _require_positive(spec.traffic.num_flows, "traffic.num_flows")
    _require_positive(spec.traffic.total_packets, "traffic.total_packets", allow_zero=True)
    _require_positive(spec.traffic.offered_pps, "traffic.offered_pps")
    _require_positive(spec.traffic.burst_size, "traffic.burst_size")
    _require_positive(spec.traffic.packet_bytes, "traffic.packet_bytes")
    _require_positive(spec.traffic.zipf_skew, "traffic.zipf_skew", allow_zero=True)
    _require_positive(spec.ingress.cores, "ingress.cores", allow_zero=True)
    _require_positive(spec.ingress.rx_ring_capacity, "ingress.rx_ring_capacity")
    _require_positive(spec.ingress.rx_burst, "ingress.rx_burst")
    _require_positive(spec.ingress.mailbox_capacity, "ingress.mailbox_capacity")
    _require_positive(spec.ingress.shard_backlog_limit, "ingress.shard_backlog_limit")

    # Cross-references: every pacing override must name a flow the traffic
    # spec can actually generate.
    seen = set()
    for flow_id, rate_bps in spec.policy.flow_rates:
        if not 0 <= flow_id < spec.traffic.num_flows:
            raise UnknownNameError(
                "policy.flow_rates",
                f"flow {flow_id} is not in the traffic universe "
                f"[0, {spec.traffic.num_flows}) of traffic.num_flows",
            )
        if flow_id in seen:
            raise MalformedSpecError(
                "policy.flow_rates", f"flow {flow_id} configured twice"
            )
        seen.add(flow_id)
        _require_positive(rate_bps, f"policy.flow_rates[{flow_id}]")

    # Admission shape: a drop policy with no RX core to run it is dead
    # config, and a pull budget larger than the ring can never be satisfied.
    if spec.ingress.admission != "none" and spec.ingress.cores == 0:
        raise UnknownNameError(
            "ingress.admission",
            f"admission {spec.ingress.admission!r} needs ingress.cores >= 1 "
            "(with no RX cores there is no ring to police)",
        )
    if spec.ingress.cores > 0 and spec.ingress.rx_burst > spec.ingress.rx_ring_capacity:
        raise OversubscribedError(
            "ingress.rx_burst",
            f"per-tick pull budget {spec.ingress.rx_burst} oversubscribes the "
            f"RX ring (rx_ring_capacity={spec.ingress.rx_ring_capacity})",
        )

    # Oversubscribed admission: sustained overload with neither backpressure
    # nor an admission policy would silently tail-drop at the bare ring —
    # reject at compile time rather than let a "loss-free" spec lose packets.
    if (
        spec.ingress.cores > 0
        and spec.ingress.admission == "none"
        and not spec.ingress.backpressure
    ):
        capacity = _paced_capacity_bps(spec)
        offered = spec.traffic.offered_pps * spec.traffic.packet_bytes * 8
        if capacity is not None and offered > capacity:
            raise OversubscribedError(
                "ingress.admission",
                f"offered load {offered:.3g} bps oversubscribes the paced "
                f"drain capacity {capacity:.3g} bps with backpressure off and "
                "no admission policy armed — the bare ring would tail-drop "
                "silently; arm an admission policy or enable "
                "ingress.backpressure",
            )

    # Fault injection: kinds must resolve, trigger bounds must be sane, and
    # a wedge fault needs an ingress lane to wedge.
    seen_kinds = set()
    for kind in spec.faults.kinds:
        _require_name(kind, FAULT_KIND_NAMES, "faults.kinds")
        if kind in seen_kinds:
            raise MalformedSpecError("faults.kinds", f"kind {kind!r} listed twice")
        seen_kinds.add(kind)
    _require_positive(spec.faults.events, "faults.events")
    _require_positive(spec.faults.max_tick, "faults.max_tick")
    _require_positive(spec.faults.max_handoff_drops, "faults.max_handoff_drops")
    _require_positive(spec.faults.lease_deadline_ns, "faults.lease_deadline_ns")
    _require_positive(spec.faults.supervise_interval_ns, "faults.supervise_interval_ns")
    if "ingress_wedge" in spec.faults.kinds and spec.ingress.cores == 0:
        raise UnknownNameError(
            "faults.kinds",
            "'ingress_wedge' needs ingress.cores >= 1 "
            "(with no RX cores there is no ring pull to wedge)",
        )

    # Observability plane: bounds must be sane, and a quantile assertion
    # with no histogram armed can never be evaluated.
    _require_positive(spec.observability.trace_capacity, "observability.trace_capacity")
    _require_positive(
        spec.observability.timeline_interval_ns, "observability.timeline_interval_ns"
    )
    if (
        spec.assertions.p99_latency_ns is not None
        and not spec.observability.latency_histograms
    ):
        raise UnknownNameError(
            "assertions.p99_latency_ns",
            "needs observability.latency_histograms = true (there is no "
            "end-to-end histogram to evaluate the bound against otherwise)",
        )

    # Parallel backends need statically decomposable shards: every knob that
    # coordinates across shards at runtime is rejected with its own field.
    if spec.runtime.backend in ("process", "thread"):
        backend = spec.runtime.backend
        if spec.runtime.stealing:
            raise BackendIncompatibleError(
                "runtime.stealing",
                f"work stealing needs cross-shard leases, which the "
                f"{backend!r} backend cannot coordinate; disable stealing or "
                "use backend='simulated'",
            )
        if spec.runtime.rebalance_interval_ns is not None:
            raise BackendIncompatibleError(
                "runtime.rebalance_interval_ns",
                f"rebalancing migrates flows between shards at runtime, which "
                f"the {backend!r} backend cannot coordinate; unset it or use "
                "backend='simulated'",
            )
        if spec.ingress.cores > 0:
            raise BackendIncompatibleError(
                "ingress.cores",
                f"ingress cores hand off to shard mailboxes on a shared "
                f"clock, which the {backend!r} backend does not have; set "
                "ingress.cores = 0 or use backend='simulated'",
            )
        if (
            spec.faults.kinds
            or spec.faults.lease_deadline_ns is not None
            or spec.faults.supervise_interval_ns is not None
        ):
            raise BackendIncompatibleError(
                "faults.kinds",
                f"fault injection and supervision run on the shared simulated "
                f"clock, which the {backend!r} backend does not have; clear "
                "the [faults] block or use backend='simulated'",
            )
        # Histograms decompose per shard; the tracer and timeline observe
        # runtime-global seams only the shared clock has.
        if spec.observability.tracer:
            raise BackendIncompatibleError(
                "observability.tracer",
                f"the flight recorder traces runtime-global seams on the "
                f"shared simulated clock, which the {backend!r} backend does "
                "not have; disable it or use backend='simulated'",
            )
        if spec.observability.timeline:
            raise BackendIncompatibleError(
                "observability.timeline",
                f"the metrics timeline samples runtime-global gauges on the "
                f"shared simulated clock, which the {backend!r} backend does "
                "not have; disable it or use backend='simulated'",
            )


def _validate_fabric(spec: ScenarioSpec) -> None:
    _require_name(spec.traffic.workload, WORKLOAD_NAMES, "traffic.workload")
    if not spec.policy.schemes:
        raise MalformedSpecError("policy.schemes", "needs at least one scheme")
    for scheme in spec.policy.schemes:
        _require_name(scheme, SCHEME_NAMES, "policy.schemes")
    _require_positive(spec.topology.num_leaves, "topology.num_leaves")
    _require_positive(spec.topology.num_spines, "topology.num_spines")
    _require_positive(spec.topology.hosts_per_leaf, "topology.hosts_per_leaf")
    _require_positive(spec.topology.edge_rate_bps, "topology.edge_rate_bps")
    _require_positive(spec.topology.core_rate_bps, "topology.core_rate_bps")
    _require_positive(spec.traffic.num_flows, "traffic.num_flows")
    if spec.topology.num_leaves * spec.topology.hosts_per_leaf < 2:
        raise MalformedSpecError(
            "topology.hosts_per_leaf", "a fabric workload needs at least two hosts"
        )
    if not spec.traffic.loads:
        raise MalformedSpecError("traffic.loads", "needs at least one load point")
    for load in spec.traffic.loads:
        if not 0 < load <= 1.0:
            raise OversubscribedError(
                "traffic.loads",
                f"load {load!r} oversubscribes the edge links; loads must be "
                "in (0, 1]",
            )
    # FCT assertion blocks cross-reference schemes by name; a spec asserting
    # on a scheme it never runs would fail mid-evaluation instead.
    if spec.assertions.fct_small_flow_advantage:
        for needed in ("pfabric", "dctcp"):
            if needed not in spec.policy.schemes:
                raise UnknownNameError(
                    "assertions.fct_small_flow_advantage",
                    f"needs scheme {needed!r} in policy.schemes "
                    f"(got {sorted(spec.policy.schemes)})",
                )
    if spec.assertions.fct_approx_tolerance is not None:
        for needed in ("pfabric", "pfabric_approx"):
            if needed not in spec.policy.schemes:
                raise UnknownNameError(
                    "assertions.fct_approx_tolerance",
                    f"needs scheme {needed!r} in policy.schemes "
                    f"(got {sorted(spec.policy.schemes)})",
                )


def _validate_bess(spec: ScenarioSpec) -> None:
    if not spec.policy.sweep_queues:
        raise MalformedSpecError("policy.sweep_queues", "needs at least one queue")
    for name in spec.policy.sweep_queues:
        _require_name(name, QUEUE_NAMES, "policy.sweep_queues")
    _require_positive(spec.traffic.num_flows, "traffic.num_flows")
    _require_positive(spec.traffic.sweep_packets, "traffic.sweep_packets")
    _require_positive(spec.topology.line_rate_bps, "topology.line_rate_bps")
    _require_positive(spec.topology.cycles_per_second, "topology.cycles_per_second")
    if not spec.traffic.packet_sizes:
        raise MalformedSpecError("traffic.packet_sizes", "needs at least one size")
    for size in spec.traffic.packet_sizes:
        _require_positive(size, "traffic.packet_sizes")
    if not spec.traffic.batch_sizes:
        raise MalformedSpecError("traffic.batch_sizes", "needs at least one size")
    for size in spec.traffic.batch_sizes:
        _require_positive(size, "traffic.batch_sizes")


def validate(spec: ScenarioSpec) -> ScenarioSpec:
    """Eagerly validate a spec; returns it unchanged or raises a typed error.

    Every rejection is a :class:`ScenarioSpecError` subclass whose ``field``
    attribute names the offending field in ``section.field`` form — no
    silent fallbacks, no partial builds.
    """
    if not isinstance(spec.name, str) or not spec.name:
        raise MalformedSpecError("name", "must be a non-empty string")
    if isinstance(spec.seed, bool) or not isinstance(spec.seed, int):
        raise MalformedSpecError("seed", f"must be an integer, got {spec.seed!r}")
    _require_name(spec.topology.kind, KINDS, "topology.kind")
    if spec.topology.kind != "runtime" and spec.faults != FaultsSpec():
        raise MalformedSpecError(
            "faults",
            f"fault injection applies only to runtime-kind scenarios "
            f"(topology.kind = {spec.topology.kind!r})",
        )
    if spec.topology.kind != "runtime" and spec.observability != ObservabilitySpec():
        raise MalformedSpecError(
            "observability",
            f"the observability plane applies only to runtime-kind scenarios "
            f"(topology.kind = {spec.topology.kind!r})",
        )
    if spec.topology.kind == "runtime":
        _validate_runtime(spec)
    elif spec.topology.kind == "fabric":
        _validate_fabric(spec)
    else:
        _validate_bess(spec)
    # Assertion bounds are plain ranges whatever the kind.
    _require_positive(spec.assertions.min_transmitted, "assertions.min_transmitted",
                      allow_zero=True)
    _require_positive(spec.assertions.min_mops, "assertions.min_mops")
    _require_positive(spec.assertions.batch_amortises_at, "assertions.batch_amortises_at")
    for bound_name in ("max_drop_fraction", "max_stall_fraction", "min_completion_rate"):
        bound = getattr(spec.assertions, bound_name)
        if bound is not None and not 0.0 <= bound <= 1.0:
            raise MalformedSpecError(
                f"assertions.{bound_name}", f"must be a fraction in [0, 1], got {bound!r}"
            )
    if spec.assertions.fct_approx_tolerance is not None:
        _require_positive(spec.assertions.fct_approx_tolerance,
                          "assertions.fct_approx_tolerance")
    _require_positive(spec.assertions.p99_latency_ns, "assertions.p99_latency_ns")
    return spec


__all__ = [
    "ADMISSION_NAMES",
    "AssertionSpec",
    "BACKEND_NAMES",
    "BackendIncompatibleError",
    "FAULT_KIND_NAMES",
    "FaultsSpec",
    "IngressSpec",
    "KINDS",
    "MalformedSpecError",
    "ObservabilitySpec",
    "OversubscribedError",
    "PATTERN_NAMES",
    "PolicyTreeSpec",
    "QUEUE_NAMES",
    "RuntimeSpec",
    "SCHEME_NAMES",
    "ScenarioSpec",
    "ScenarioSpecError",
    "SHARDING_NAMES",
    "TopologySpec",
    "TrafficSpec",
    "UnknownNameError",
    "WORKLOAD_NAMES",
    "derive_seed",
    "validate",
]
